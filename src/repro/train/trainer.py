"""Supervised training loop.

Observability (:mod:`repro.obs`, off by default): ``fit()`` opens a
``train.fit`` span with one ``train.epoch`` child per epoch,
``train_step`` opens a ``train.step`` span and bumps the ``train.step``
counter, and the per-epoch diagnostics land as gauges —
``train.loss``, ``train.accuracy``, ``train.val_accuracy`` — while
:meth:`Trainer.evaluate` records an ``eval.score`` span and the
``eval.accuracy`` gauge, so ``repro trace`` splits training from
evaluation time.  None of it draws from an RNG: trajectories are
bit-identical with observability on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.loaders import batches
from repro.errors import TrainingError
from repro.nn.module import Module
from repro.obs import OBS, TRACER
from repro.train.early_stopping import EarlyStopping
from repro.train.losses import cross_entropy
from repro.train.optim import Optimizer
from repro.utils.logging import get_logger

_logger = get_logger("train")


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of one fit() call."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    validation_accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise TrainingError("no training steps were run")
        return self.losses[-1]

    @property
    def best_validation_accuracy(self) -> float:
        if not self.validation_accuracies:
            raise TrainingError("fit() was not given a validation set")
        return max(self.validation_accuracies)


class Trainer:
    """Minibatch trainer for any module mapping images to logits."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
        schedule: Callable[[int], float] | None = None,
        grad_clip: float | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.schedule = schedule
        self.grad_clip = grad_clip
        self._step = 0

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One optimization step; returns the batch loss."""
        with TRACER.span("train.step", step=self._step):
            if self.schedule is not None:
                self.optimizer.set_lr(self.schedule(self._step))
            self.model.train()
            self.optimizer.zero_grad()
            logits = self.model(Tensor(images))
            loss = self.loss_fn(logits, labels)
            if not np.isfinite(loss.data).all():
                raise TrainingError(
                    f"non-finite loss at step {self._step}; "
                    "lower the learning rate or enable grad_clip"
                )
            loss.backward()
            if self.grad_clip is not None:
                self._clip_gradients()
            self.optimizer.step()
            self._step += 1
            OBS.enabled and OBS.inc("train.step")
            return float(loss.data)

    def _clip_gradients(self) -> None:
        total = 0.0
        grads = [p.grad for p in self.optimizer.parameters if p.grad is not None]
        for grad in grads:
            total += float((grad**2).sum())
        norm = np.sqrt(total)
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for grad in grads:
                grad *= scale

    #: Training-set subsample size used by ``train_eval="subsampled"``.
    TRAIN_EVAL_CAP = 256

    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        early_stopping: "EarlyStopping | None" = None,
        log_every: int | None = None,
        train_eval: str = "subsampled",
    ) -> TrainResult:
        """Train for ``epochs`` passes; records per-epoch mean loss/accuracy.

        ``validation``, if given, is a held-out ``(images, labels)`` pair
        evaluated after every epoch (recorded in
        ``result.validation_accuracies``).  ``early_stopping`` monitors the
        validation accuracy and ends training early when it stalls;
        requires ``validation``.

        ``train_eval`` controls the per-epoch re-score of the *training*
        set — a diagnostic that can cost more than the epoch itself on
        large sets: ``"full"`` scores every sample (the original
        behaviour), ``"subsampled"`` (default) scores a deterministic,
        evenly spaced subset of at most :data:`TRAIN_EVAL_CAP` samples
        (exact whenever the set is smaller), ``"off"`` skips it and leaves
        ``result.accuracies`` empty.  The subsample indices are computed
        without drawing from ``rng``, so the training trajectory is
        bit-identical across all three settings.
        """
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")
        if early_stopping is not None and validation is None:
            raise TrainingError("early_stopping requires a validation set")
        if train_eval not in ("off", "subsampled", "full"):
            raise TrainingError(
                f"train_eval must be 'off', 'subsampled' or 'full', got {train_eval!r}"
            )
        eval_images, eval_labels = images, labels
        if train_eval == "subsampled" and images.shape[0] > self.TRAIN_EVAL_CAP:
            subsample = np.linspace(
                0, images.shape[0] - 1, self.TRAIN_EVAL_CAP
            ).astype(np.int64)
            eval_images, eval_labels = images[subsample], labels[subsample]
        result = TrainResult()
        with TRACER.span("train.fit", epochs=epochs, batch_size=batch_size):
            for epoch in range(epochs):
                with TRACER.span("train.epoch", epoch=epoch):
                    epoch_losses = []
                    for x_batch, y_batch in batches(images, labels, batch_size, rng):
                        epoch_losses.append(self.train_step(x_batch, y_batch))
                    mean_loss = float(np.mean(epoch_losses))
                    result.losses.append(mean_loss)
                    OBS.enabled and OBS.gauge("train.loss", mean_loss)
                    accuracy = None
                    if train_eval != "off":
                        accuracy = self.evaluate(eval_images, eval_labels, batch_size)
                        result.accuracies.append(accuracy)
                        OBS.enabled and OBS.gauge("train.accuracy", accuracy)
                    stop = False
                    if validation is not None:
                        val_accuracy = self.evaluate(
                            validation[0], validation[1], batch_size
                        )
                        result.validation_accuracies.append(val_accuracy)
                        OBS.enabled and OBS.gauge("train.val_accuracy", val_accuracy)
                        if early_stopping is not None and early_stopping.update(
                            val_accuracy
                        ):
                            _logger.info(
                                "early stop at epoch %d/%d (best val acc %.3f)",
                                epoch + 1,
                                epochs,
                                early_stopping.best,
                            )
                            stop = True
                    if log_every and (epoch + 1) % log_every == 0:
                        _logger.info(
                            "epoch %d/%d  loss=%.4f  acc=%s",
                            epoch + 1,
                            epochs,
                            mean_loss,
                            "n/a" if accuracy is None else f"{accuracy:.3f}",
                        )
                if stop:
                    break
        return result

    def evaluate(
        self, images: np.ndarray, labels: np.ndarray, batch_size: int = 64
    ) -> float:
        """Classification accuracy with the model in eval mode.

        The model's prior train/eval mode is restored afterwards, so
        evaluating an already-``eval()``-ed model does not silently flip
        it back into training mode.
        """
        was_training = getattr(self.model, "training", True)
        self.model.eval()
        correct = 0
        with TRACER.span("eval.score", samples=int(images.shape[0])), no_grad():
            for x_batch, y_batch in batches(images, labels, batch_size):
                logits = self.model(Tensor(x_batch))
                predictions = logits.data.argmax(axis=1)
                correct += int((predictions == y_batch).sum())
        self.model.train(was_training)
        accuracy = correct / images.shape[0]
        OBS.enabled and OBS.gauge("eval.accuracy", accuracy)
        return accuracy
