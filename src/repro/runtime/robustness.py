"""The robustness-under-shift grid: the second :class:`GridSpec` client.

Mounts the robustness protocol (:mod:`repro.eval.robustness`) onto the
generic grid runner (:mod:`repro.runtime.grid`), inheriting run-directory
checkpointing, ``--resume``, retry/backoff, per-cell timeouts, and the
obs span tree (``robustness.grid`` → ``robustness.contexts`` /
``robustness.cells``) without any bespoke plumbing — the refactor the
grid API exists for.

Shape of the grid:

- **contexts**, keyed ``(seed, method)`` — pretrain + episodically adapt
  exactly as the Table I cell does; workers ship back the trained
  adapter weights with the frozen evaluation splits.
- **cells**, keyed ``(seed, method, corruption, severity)`` — rebuild
  the trained model and score it on corrupted query splits.  Evaluation
  only; no backward pass, so no autograd perf overrides.  Cell RNG is
  :func:`repro.data.corruptions.corruption_rng` of the key alone, so the
  grid is bit-identical at any worker count and across resumes, and
  severity-0 cells are bit-identical to the clean Table I evaluation.

Fault-injection keys render as ``seed/method/corruption/severity``
(e.g. ``crash:0/lora/contrast/3``) — see :mod:`repro.perf`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError, ConfigError
from repro.eval.robustness import (
    RobustnessCell,
    RobustnessConfig,
    RobustnessSeedContext,
    prepare_robustness_context,
    run_robustness_cell,
)
from repro.runtime.grid import GridSpec, run_grid
from repro.runtime.pool import CellResult

#: Artifact ``kind`` of a persisted robustness grid cell.
ROBUSTNESS_CELL_KIND = "robustness_cell"

#: Cell key: ``(seed, method, corruption, severity)``.
CellKey = "tuple[int, str, str, int]"


@dataclass
class RobustnessGridResult:
    """All cells of a robustness grid, plus per-cell diagnostics.

    ``cells`` maps every completed ``(seed, method, corruption,
    severity)`` key to its :class:`RobustnessCell`; ``restored`` lists
    the keys loaded from the run directory rather than recomputed.
    """

    config: RobustnessConfig
    seeds: tuple[int, ...]
    cells: dict
    cell_results: list[CellResult] = field(default_factory=list)
    restored: list = field(default_factory=list)
    run_dir: str | None = None

    @property
    def failures(self) -> list:
        return [r.failure for r in self.cell_results if not r.ok]


def _prepare_context(
    cell: tuple[RobustnessConfig, int, str]
) -> RobustnessSeedContext:
    config, seed, method = cell
    return prepare_robustness_context(config, seed, method)


def _run_cell(
    cell: tuple[RobustnessConfig, RobustnessSeedContext, str, int]
) -> RobustnessCell:
    config, context, corruption, severity = cell
    return run_robustness_cell(config, context, corruption, severity)


def _encode_cell(key: tuple, value: RobustnessCell) -> tuple[dict, dict]:
    ks = sorted(value.accuracy_by_k)
    arrays = {
        "ks": np.asarray(ks, dtype=np.int64),
        "accuracy": np.asarray(
            [value.accuracy_by_k[k] for k in ks], dtype=np.float64
        ),
    }
    seed, method, corruption, severity = key
    meta = {
        "seed": int(seed),
        "method": method,
        "corruption": corruption,
        "severity": int(severity),
    }
    return arrays, meta


def _decode_cell(
    key: tuple, arrays: dict, meta: dict, path: str
) -> RobustnessCell:
    seed, method, corruption, severity = key
    indexed = {
        "seed": int(seed),
        "method": method,
        "corruption": corruption,
        "severity": int(severity),
    }
    claimed = {k: meta.get(k) for k in indexed}
    if claimed != indexed:
        raise CheckpointError(
            f"cell artifact {path!r} claims {claimed} "
            f"but was indexed as {indexed}"
        )
    return RobustnessCell(
        method=method,
        corruption=corruption,
        severity=int(severity),
        accuracy_by_k={
            int(k): float(a) for k, a in zip(arrays["ks"], arrays["accuracy"])
        },
    )


def _cell_filename(key: tuple) -> str:
    seed, method, corruption, severity = key
    return f"s{int(seed)}__{method}__{corruption}__{int(severity)}.npz"


def _robustness_spec(
    config: RobustnessConfig, seeds: tuple[int, ...]
) -> GridSpec:
    # Built at call time so monkeypatched module globals (`_run_cell`,
    # `_prepare_context` in tests) are honored.
    return GridSpec(
        name="robustness",
        config=config,
        axes={
            "seeds": seeds,
            "methods": tuple(config.table1.methods),
            "corruptions": tuple(config.corruptions),
            "severities": tuple(int(s) for s in config.severities),
        },
        cell_fn=_run_cell,
        cell_payload=lambda cfg, context, key: (cfg, context, key[2], key[3]),
        artifact_kind=ROBUSTNESS_CELL_KIND,
        cell_filename=_cell_filename,
        encode_cell=_encode_cell,
        decode_cell=_decode_cell,
        context_fn=_prepare_context,
        context_payload=lambda cfg, ck: (cfg, ck[0], ck[1]),
        context_key=lambda key: (key[0], key[1]),
        manifest_extra={"backbone": config.table1.backbone},
    )


def run_robustness_grid(
    config: RobustnessConfig,
    seeds: tuple[int, ...] | list[int],
    jobs: int = 1,
    strict: bool = True,
    *,
    out_dir: str | os.PathLike | None = None,
    resume: str | os.PathLike | None = None,
    max_retries: int = 0,
    retry_backoff: float = 0.05,
    cell_timeout: float | None = None,
    obs: bool | None = None,
) -> RobustnessGridResult:
    """Shard the ``seeds × methods × corruptions × severities`` grid.

    Semantics are :func:`repro.runtime.grid.run_grid`'s: bit-identical at
    any ``jobs``, durable under ``out_dir``/``resume``, strict failure
    drain, retry/backoff and per-cell soft timeouts, obs spans exported
    to the run directory.  Contexts (one full Table I training per
    ``(seed, method)``) are rebuilt only for groups that still have
    missing cells on resume.
    """
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ConfigError("run_robustness_grid needs at least one seed")

    result = run_grid(
        _robustness_spec(config, seeds),
        jobs=jobs,
        strict=strict,
        out_dir=out_dir,
        resume=resume,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        cell_timeout=cell_timeout,
        obs=obs,
    )
    return RobustnessGridResult(
        config=config,
        seeds=seeds,
        cells=dict(result.values),
        cell_results=result.cell_results,
        restored=result.restored,
        run_dir=result.run_dir,
    )
