"""Training: optimizers, LR schedules, losses and the trainer loops."""

from repro.train.early_stopping import EarlyStopping
from repro.train.optim import SGD, Adam, AdamW, Optimizer
from repro.train.schedules import ConstantSchedule, CosineSchedule, StepSchedule
from repro.train.losses import cross_entropy, mse_loss
from repro.train.trainer import Trainer, TrainResult
from repro.train.meta_trainer import MetaTrainer

__all__ = [
    "Adam",
    "AdamW",
    "ConstantSchedule",
    "CosineSchedule",
    "EarlyStopping",
    "MetaTrainer",
    "Optimizer",
    "SGD",
    "StepSchedule",
    "TrainResult",
    "Trainer",
    "cross_entropy",
    "mse_loss",
]
