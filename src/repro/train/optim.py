"""First-order optimizers.

Parameters whose gradient is ``None`` are skipped (e.g. the static seeds
of meta adapters when per-sample seeds are active) — the optimizer only
touches what the loss actually reached.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.module import Parameter


class Optimizer:
    """Base: holds the parameter list and the shared step/zero_grad API."""

    def __init__(self, parameters, lr: float) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer received no parameters")
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        self.lr = float(lr)


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def _apply_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        # Classic Adam: L2 folded into the gradient.
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = self._apply_decay(param, param.grad)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with *decoupled* weight decay (Loshchilov & Hutter)."""

    def _apply_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        return grad
