"""Task specifications for the multi-task distribution.

Every task renders the *same* class-defining spatial patterns but through
its own rendering style:

- a **color direction** the grayscale class signal is projected onto
  (classes live in a different chromatic subspace per task);
- an **orientation offset** added to every class grating (classes sit at
  shifted orientations the pre-trained features never saw);
- a background **tint**, a spatial **shift**, and a noise level.

The class signal therefore degrades under a frozen backbone, and the
correction needed differs per task — the regime the paper targets, where a
fixed adapter must compromise across tasks while a task-aware adapter can
specialize per input.  Crucially, the tint (and color statistics) identify
the task from the input alone, so MetaLoRA's feature extractor can recover
the task and the mapping net can emit the right seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class TaskSpec:
    """Rendering style of one task."""

    task_id: int
    color_direction: tuple[float, float, float]
    tint: tuple[float, float, float]
    shift: tuple[int, int]
    orientation_offset: float
    noise_level: float

    def color_vector(self) -> np.ndarray:
        return np.asarray(self.color_direction, dtype=np.float32)

    def tint_vector(self) -> np.ndarray:
        return np.asarray(self.tint, dtype=np.float32)


@dataclass
class TaskDistribution:
    """A reproducible family of ``num_tasks`` task specs.

    Task 0 is the *base* task (canonical style: red-dominant color
    direction, zero tint/shift/offset) — the task the backbone is
    pre-trained on, playing the role of the upstream pre-training
    distribution.
    """

    num_tasks: int
    image_size: int = 16
    seed: int = 0
    max_shift: int = 4
    noise_level: float = 0.5
    max_orientation_offset: float = float(np.pi) / 8.0
    max_alignment: float = 0.35
    _specs: list[TaskSpec] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise DataError(f"num_tasks must be positive, got {self.num_tasks}")
        if self.max_shift >= self.image_size:
            raise DataError(
                f"max_shift {self.max_shift} must be below image size {self.image_size}"
            )
        rng = new_rng(self.seed)
        specs = [
            TaskSpec(
                task_id=0,
                color_direction=(1.0, 0.15, 0.15),
                tint=(0.0, 0.0, 0.0),
                shift=(0, 0),
                orientation_offset=0.0,
                noise_level=self.noise_level,
            )
        ]
        base_direction = np.asarray(specs[0].color_direction)
        base_direction = base_direction / np.linalg.norm(base_direction)
        for task_id in range(1, self.num_tasks):
            # Shifted tasks live mostly *orthogonal* to the base color
            # direction: the component along the base is what the frozen
            # backbone can still read, so a small random alignment keeps
            # the tasks hard but not impossible (and makes per-task
            # correction — the adapters' job — genuinely valuable).
            alignment = rng.uniform(-self.max_alignment, self.max_alignment)
            ortho = rng.normal(size=3)
            ortho -= (ortho @ base_direction) * base_direction
            ortho /= np.linalg.norm(ortho)
            direction = alignment * base_direction + np.sqrt(
                max(0.0, 1.0 - alignment**2)
            ) * ortho
            tint = rng.uniform(-1.0, 1.0, size=3)
            shift = (
                int(rng.integers(-self.max_shift, self.max_shift + 1)),
                int(rng.integers(-self.max_shift, self.max_shift + 1)),
            )
            offset = float(
                rng.uniform(-self.max_orientation_offset, self.max_orientation_offset)
            )
            specs.append(
                TaskSpec(
                    task_id=task_id,
                    color_direction=tuple(float(v) for v in direction),
                    tint=tuple(float(v) for v in tint),
                    shift=shift,
                    orientation_offset=offset,
                    noise_level=self.noise_level,
                )
            )
        self._specs = specs

    def __len__(self) -> int:
        return self.num_tasks

    def __getitem__(self, task_id: int) -> TaskSpec:
        return self._specs[task_id]

    def __iter__(self):
        return iter(self._specs)

    @property
    def base_task(self) -> TaskSpec:
        return self._specs[0]

    def shifted_tasks(self) -> list[TaskSpec]:
        """All tasks except the base one (the fine-tuning targets)."""
        return self._specs[1:]
