"""Finite-difference gradient checks through whole layers.

The op-level checks in tests/autograd validate each primitive; these
validate the *compositions* each layer actually uses (including parameter
gradients through the Module plumbing), in float64.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients
from repro.nn import BatchNorm2d, Conv2d, LayerNorm, Linear
from repro.nn.module import Parameter


def _to64(module):
    """Cast a layer's parameters to float64 in place (for FD stability)."""
    for param in module.parameters():
        param.data = param.data.astype(np.float64)
    return module


def _param_inputs(module):
    return [p for p in module.parameters()]


class TestLayerGradients:
    def test_linear_parameter_gradients(self, rng):
        layer = _to64(Linear(4, 3, rng=rng))
        x = Tensor(rng.normal(size=(5, 4)))

        check_gradients(lambda w, b: x @ w + b, [layer.weight, layer.bias])

    def test_linear_full_layer_gradient_wrt_input(self, rng):
        layer = _to64(Linear(4, 3, rng=rng))
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])

    def test_conv_layer_gradients(self, rng):
        layer = _to64(Conv2d(2, 3, 3, padding=1, rng=rng))
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])
        check_gradients(
            lambda w, b: __import__("repro.autograd", fromlist=["conv2d"]).conv2d(
                x, w, b, stride=1, padding=1
            ),
            [layer.weight, layer.bias],
        )

    def test_layernorm_gradients(self, rng):
        layer = _to64(LayerNorm(6))
        x = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])
        check_gradients(
            lambda g, b: ((x - x.mean(axis=-1, keepdims=True))
                          / (x.var(axis=-1, keepdims=True) + 1e-5) ** 0.5) * g + b,
            [layer.gamma, layer.beta],
        )

    def test_batchnorm_train_mode_input_gradient(self, rng):
        layer = _to64(BatchNorm2d(2))
        x = Tensor(rng.normal(size=(3, 2, 4, 4)), requires_grad=True)

        def run(x):
            # Reset running stats so repeated FD calls see identical state.
            layer._buffers["running_mean"][...] = 0.0
            layer._buffers["running_var"][...] = 1.0
            return layer(x)

        check_gradients(run, [x], atol=1e-3, rtol=1e-2)

    def test_lora_adapter_end_to_end_gradient(self, rng):
        from repro.peft import LoRALinear

        base = _to64(Linear(4, 3, rng=rng))
        adapter = LoRALinear(base, rank=2, rng=rng)
        _to64(adapter)
        adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        check_gradients(lambda x: adapter(x), [x])
        check_gradients(
            lambda a, b: x @ base.weight + base.bias + (x @ a @ b) * adapter.scaling,
            [adapter.lora_a, adapter.lora_b],
        )

    def test_meta_cp_adapter_gradient_through_seed(self, rng):
        from repro.peft import MetaLoRACPLinear

        base = _to64(Linear(4, 3, rng=rng))
        adapter = MetaLoRACPLinear(base, rank=2, rng=rng)
        _to64(adapter)
        adapter.factor_b.data[...] = rng.normal(size=adapter.factor_b.shape)
        x = Tensor(rng.normal(size=(5, 4)))
        seed = Tensor(rng.normal(size=(5, 2)), requires_grad=True)

        def run(seed):
            adapter.set_seed(seed)
            try:
                return adapter(x)
            finally:
                adapter.set_seed(None)

        check_gradients(run, [seed])
