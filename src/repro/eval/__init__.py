"""Evaluation: embedding extraction, KNN protocol, metrics, significance."""

from repro.eval.cluster_quality import (
    class_centroid_separation,
    intra_inter_ratio,
    silhouette_score,
)
from repro.eval.embeddings import extract_embeddings
from repro.eval.retrieval import mean_average_precision, recall_at_k
from repro.eval.knn import KNNClassifier
from repro.eval.metrics import accuracy, confusion_matrix
from repro.eval.significance import SignificanceResult, two_sided_t_test
from repro.eval.protocol import (
    Table1Config,
    Table1Row,
    build_adapted_model,
    pretrain_backbone,
    run_table1,
    train_table1_model,
)
from repro.eval.robustness import (
    RobustnessCell,
    RobustnessConfig,
    degradation_slope,
    run_robustness_cell,
    run_robustness_stream,
)

__all__ = [
    "KNNClassifier",
    "RobustnessCell",
    "RobustnessConfig",
    "SignificanceResult",
    "Table1Config",
    "Table1Row",
    "accuracy",
    "build_adapted_model",
    "class_centroid_separation",
    "confusion_matrix",
    "degradation_slope",
    "extract_embeddings",
    "intra_inter_ratio",
    "mean_average_precision",
    "recall_at_k",
    "silhouette_score",
    "pretrain_backbone",
    "run_robustness_cell",
    "run_robustness_stream",
    "run_table1",
    "train_table1_model",
    "two_sided_t_test",
]
