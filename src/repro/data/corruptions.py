"""Deterministic, seeded input corruptions for the robustness grid.

Every corruption is a *pure function of its inputs*: the image batch, an
integer ``severity`` in ``0..5``, and an explicit
:class:`numpy.random.Generator`.  The contract the robustness benchmark
rests on:

- **severity 0 is a bit-identical no-op** — ``apply`` returns the input
  array unchanged (the very same object), so severity-0 grid rows are
  structurally guaranteed to match the clean Table I evaluation;
- **determinism** — the same ``(images, severity, rng state)`` always
  produces the same pixels, so corrupted evaluations are bit-identical
  across processes, resumes, and execution orders;
- **RNG hygiene** — corruptions draw *only* from the generator they are
  handed and never touch numpy's global RNG state, so interleaving
  corrupted evaluations with training leaves every training trajectory
  bit-identical (pinned by ``tests/data/test_corruptions.py``);
- **shape/dtype preservation** — the output has the input's
  ``(N, 3, H, W)`` shape and ``float32`` dtype;
- **monotone distortion** — mean ``|corrupted - clean|`` grows with
  severity, so degradation slopes are measured against a real axis.

Use :func:`corruption_rng` to derive the per-cell child generator from
``(seed, corruption, severity)``; the derivation is hash-based, so cells
are independent of each other and of every protocol RNG stream
(:func:`repro.eval.protocol.method_rng` spawns from a different root).

The catalog (see ``docs/robustness.md``) covers blur, two noise models,
occlusion, photometric shifts, and a foveated retina-warp-style
transform (RBlur-inspired): acuity falls off with distance from a
fixation point, implemented as a radial blend between a mildly and a
heavily blurred rendering.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigError, DataError

#: The valid severity ladder; 0 is the bit-identical no-op rung.
SEVERITIES = (0, 1, 2, 3, 4, 5)


def corruption_rng(
    seed: int, corruption: str, severity: int
) -> np.random.Generator:
    """The per-cell child generator for ``(seed, corruption, severity)``.

    Derived by hashing the key into a :class:`numpy.random.SeedSequence`
    entropy, so every grid cell gets an independent stream that never
    collides with the protocol's :func:`~repro.utils.rng.spawn_rngs`
    fan-out and never reads or writes numpy's global RNG state.
    """
    payload = f"repro.corruption:{int(seed)}:{corruption}:{int(severity)}"
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    entropy = int.from_bytes(digest[:16], "little")
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))


def _check_images(images: np.ndarray) -> None:
    if images.ndim != 4 or images.shape[1] != 3:
        raise DataError(
            f"corruptions expect (N, 3, H, W) images, got shape {images.shape}"
        )


def _gaussian_kernel(sigma: float) -> np.ndarray:
    radius = max(1, int(np.ceil(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    return (kernel / kernel.sum()).astype(np.float64)


def _blur_batch(images: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur over H and W with reflect padding."""
    kernel = _gaussian_kernel(sigma)
    radius = (len(kernel) - 1) // 2
    work = images.astype(np.float64)
    for axis in (2, 3):
        padded = np.pad(
            work,
            [(0, 0), (0, 0)] + [(radius, radius) if a == axis else (0, 0) for a in (2, 3)],
            mode="reflect",
        )
        out = np.zeros_like(work)
        for offset, weight in enumerate(kernel):
            sl = [slice(None)] * 4
            sl[axis] = slice(offset, offset + work.shape[axis])
            out += weight * padded[tuple(sl)]
        work = out
    return work.astype(np.float32)


class Corruption:
    """One corruption family pinned at one severity.

    Subclasses set :attr:`name` and implement :meth:`_apply`, which only
    sees severities ``1..5`` — :meth:`apply` short-circuits severity 0 to
    the untouched input array.
    """

    #: registry key; subclasses override.
    name: str = ""

    def __init__(self, severity: int) -> None:
        if severity not in SEVERITIES:
            raise ConfigError(
                f"severity must be one of {SEVERITIES}, got {severity!r}"
            )
        self.severity = int(severity)

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Corrupted copy of ``images``; severity 0 returns them untouched."""
        _check_images(images)
        if self.severity == 0:
            return images
        out = self._apply(images, rng)
        return np.ascontiguousarray(out, dtype=np.float32)

    def _apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(severity={self.severity})"


class GaussianBlur(Corruption):
    """Isotropic Gaussian blur; sigma grows with severity."""

    name = "gaussian_blur"
    _SIGMAS = (0.4, 0.7, 1.0, 1.5, 2.2)

    def _apply(self, images, rng):
        return _blur_batch(images, self._SIGMAS[self.severity - 1])


class AdditiveNoise(Corruption):
    """Zero-mean Gaussian pixel noise; sigma grows with severity."""

    name = "additive_noise"
    _SIGMAS = (0.08, 0.16, 0.28, 0.45, 0.7)

    def _apply(self, images, rng):
        sigma = self._SIGMAS[self.severity - 1]
        noise = rng.normal(0.0, sigma, size=images.shape).astype(np.float32)
        return images + noise


class ShotNoise(Corruption):
    """Poisson (photon-count) noise; fewer counts at higher severity.

    Images are signed, so each image is mapped to ``[0, 1]`` over its own
    range, resampled as Poisson counts at ``lam`` photons per unit, and
    mapped back — the standard shot-noise model lifted to signed data.
    """

    name = "shot_noise"
    _LAMBDAS = (80.0, 35.0, 16.0, 8.0, 4.0)

    def _apply(self, images, rng):
        lam = self._LAMBDAS[self.severity - 1]
        out = np.empty_like(images, dtype=np.float32)
        for index in range(images.shape[0]):
            image = images[index].astype(np.float64)
            low, high = float(image.min()), float(image.max())
            span = max(high - low, 1e-8)
            unit = (image - low) / span
            counts = rng.poisson(unit * lam).astype(np.float64) / lam
            out[index] = (counts * span + low).astype(np.float32)
        return out


class Occlusion(Corruption):
    """Square patches filled with the image mean; count and size grow."""

    name = "occlusion"
    _FRACTIONS = (0.2, 0.28, 0.36, 0.45, 0.55)

    def _apply(self, images, rng):
        out = images.copy()
        side_fraction = self._FRACTIONS[self.severity - 1]
        patches = self.severity
        height, width = images.shape[2], images.shape[3]
        side = max(1, int(round(side_fraction * min(height, width))))
        for index in range(images.shape[0]):
            fill = float(images[index].mean())
            for __ in range(patches):
                top = int(rng.integers(0, max(height - side, 0) + 1))
                left = int(rng.integers(0, max(width - side, 0) + 1))
                out[index, :, top : top + side, left : left + side] = fill
        return out


class Contrast(Corruption):
    """Contrast collapse toward the per-image mean."""

    name = "contrast"
    _FACTORS = (0.75, 0.55, 0.4, 0.28, 0.18)

    def _apply(self, images, rng):
        factor = self._FACTORS[self.severity - 1]
        means = images.mean(axis=(1, 2, 3), keepdims=True)
        return (means + factor * (images - means)).astype(np.float32)


class Brightness(Corruption):
    """Global additive brightness shift, scaled by the image's own spread."""

    name = "brightness"
    _SHIFTS = (0.35, 0.7, 1.1, 1.6, 2.2)

    def _apply(self, images, rng):
        shift = self._SHIFTS[self.severity - 1]
        spread = images.std(axis=(1, 2, 3), keepdims=True).astype(np.float32)
        return images + shift * spread


class RetinaWarp(Corruption):
    """Foveated retina-warp-style transform (RBlur-inspired).

    Visual acuity falls off with eccentricity: pixels near a fixation
    point keep a mild blur while the periphery gets a heavy one, blended
    by a radial mask.  Severity raises the peripheral sigma and shrinks
    the fovea; the fixation point jitters around the center per image
    (drawn from the cell's child generator), modelling saccade scatter.
    """

    name = "retina_warp"
    _PERIPHERY_SIGMAS = (0.8, 1.3, 1.9, 2.7, 3.6)
    _FOVEA_RADII = (0.45, 0.38, 0.31, 0.25, 0.2)
    _FOVEA_SIGMA = 0.3

    def _apply(self, images, rng):
        sigma = self._PERIPHERY_SIGMAS[self.severity - 1]
        fovea = self._FOVEA_RADII[self.severity - 1]
        height, width = images.shape[2], images.shape[3]
        mild = _blur_batch(images, self._FOVEA_SIGMA)
        heavy = _blur_batch(images, sigma)
        ys = (np.arange(height, dtype=np.float64) + 0.5) / height
        xs = (np.arange(width, dtype=np.float64) + 0.5) / width
        out = np.empty_like(images, dtype=np.float32)
        for index in range(images.shape[0]):
            jitter = rng.uniform(-0.1, 0.1, size=2)
            cy, cx = 0.5 + jitter[0], 0.5 + jitter[1]
            radius = np.sqrt(
                (ys[:, None] - cy) ** 2 + (xs[None, :] - cx) ** 2
            )
            # 0 inside the fovea, ramping to 1 at ~2x the fovea radius.
            weight = np.clip((radius - fovea) / max(fovea, 1e-6), 0.0, 1.0)
            weight = weight.astype(np.float32)[None]
            out[index] = (1.0 - weight) * mild[index] + weight * heavy[index]
        return out


#: Registry of corruption families, in catalog order.
CORRUPTIONS: dict[str, type[Corruption]] = {
    cls.name: cls
    for cls in (
        GaussianBlur,
        AdditiveNoise,
        ShotNoise,
        Occlusion,
        Contrast,
        Brightness,
        RetinaWarp,
    )
}

#: The default shift-type axis of the robustness grid.
DEFAULT_CORRUPTIONS = tuple(CORRUPTIONS)


def get_corruption(name: str, severity: int) -> Corruption:
    """Instantiate a registered corruption at ``severity``."""
    if name not in CORRUPTIONS:
        raise ConfigError(
            f"unknown corruption {name!r}; known: {sorted(CORRUPTIONS)}"
        )
    return CORRUPTIONS[name](severity)
