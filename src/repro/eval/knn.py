"""K-nearest-neighbour classifier over embeddings (Table I's evaluator).

The paper scores each method by fitting a KNN on adapted embeddings and
reporting query accuracy at K=5 and K=10 — a linear-probe-free measure of
how well the embedding space clusters by class.

Implementation notes: euclidean distances use the
``||q||² − 2·q·sᵀ + ||s||²`` expansion, so the distance matrix is the
only ``(Q, S)`` allocation (the naive broadcasted difference materializes
a ``(Q, S, D)`` tensor, which dominates memory for realistic support
sizes); the cosine path normalizes the support matrix once at ``fit()``
time instead of on every query batch.  Prediction is fully vectorized:
top-k via ``np.argpartition`` and a bincount-based majority vote, with
the same deterministic distance-sum tie-break as the original per-query
loop (ties on the vote go to the candidate class with the smallest total
neighbour distance, then to the smallest class value).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


class KNNClassifier:
    """Majority-vote KNN with cosine or euclidean distance."""

    def __init__(self, metric: str = "cosine") -> None:
        if metric not in ("cosine", "euclidean"):
            raise EvaluationError(f"unknown metric {metric!r}")
        self.metric = metric
        self._embeddings: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._normalized: np.ndarray | None = None  # cosine support, unit rows
        self._sq_norms: np.ndarray | None = None  # euclidean ||s||² per row
        self._classes: np.ndarray | None = None  # sorted unique labels
        self._class_index: np.ndarray | None = None  # label -> class position

    def fit(self, embeddings: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        embeddings = np.asarray(embeddings, dtype=np.float64)
        labels = np.asarray(labels)
        if embeddings.ndim != 2:
            raise EvaluationError(f"embeddings must be 2-d, got {embeddings.shape}")
        if labels.shape != (embeddings.shape[0],):
            raise EvaluationError(
                f"labels shape {labels.shape} does not match "
                f"{embeddings.shape[0]} embeddings"
            )
        self._embeddings = embeddings
        self._labels = labels
        if self.metric == "cosine":
            self._normalized = embeddings / (
                np.linalg.norm(embeddings, axis=1, keepdims=True) + 1e-12
            )
        else:
            self._sq_norms = np.einsum("ij,ij->i", embeddings, embeddings)
        self._classes, self._class_index = np.unique(labels, return_inverse=True)
        return self

    def _distances(self, queries: np.ndarray) -> np.ndarray:
        assert self._embeddings is not None
        if self.metric == "cosine":
            q = queries / (np.linalg.norm(queries, axis=1, keepdims=True) + 1e-12)
            return 1.0 - q @ self._normalized.T
        squared = (
            np.einsum("ij,ij->i", queries, queries)[:, None]
            - 2.0 * (queries @ self._embeddings.T)
            + self._sq_norms[None, :]
        )
        # The expansion can go slightly negative under cancellation.
        np.maximum(squared, 0.0, out=squared)
        return np.sqrt(squared, out=squared)

    def predict(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Labels of the majority among the ``k`` nearest supports.

        Ties are broken toward the class whose members are nearest in
        total distance, which keeps predictions deterministic.
        """
        if self._embeddings is None or self._labels is None:
            raise EvaluationError("predict() called before fit()")
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float64)
        k = min(k, self._embeddings.shape[0])
        distances = self._distances(queries)
        nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
        rows = np.arange(queries.shape[0])[:, None]
        neighbour_classes = self._class_index[nearest]  # (Q, k) in [0, C)
        neighbour_distances = distances[rows, nearest]

        num_classes = self._classes.shape[0]
        flat = (rows * num_classes + neighbour_classes).ravel()
        votes = np.bincount(flat, minlength=queries.shape[0] * num_classes)
        votes = votes.reshape(queries.shape[0], num_classes)
        totals = np.bincount(
            flat,
            weights=neighbour_distances.ravel(),
            minlength=queries.shape[0] * num_classes,
        ).reshape(queries.shape[0], num_classes)
        # Majority vote; among tied classes the smallest distance total wins
        # (argmin then prefers the smallest class value on exact total ties).
        candidate_totals = np.where(votes == votes.max(axis=1, keepdims=True), totals, np.inf)
        return self._classes[np.argmin(candidate_totals, axis=1)]

    def score(self, queries: np.ndarray, labels: np.ndarray, k: int) -> float:
        """Accuracy of :meth:`predict` against ``labels``."""
        predictions = self.predict(queries, k)
        return float((predictions == np.asarray(labels)).mean())
