"""Module containers."""

from __future__ import annotations

from typing import Iterator

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Sequential(Module):
    """Applies child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._items)), module)
        self._items.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
