"""Experiment configuration presets.

``QUICK`` runs in seconds (integration tests); ``PAPER`` is the scale the
benchmark harness uses to regenerate Table I.  Both are plain dataclass
instances — copy with :func:`dataclasses.replace` to customize.
"""

from __future__ import annotations

from dataclasses import replace

from repro.eval.protocol import Table1Config

#: Full-scale (for this CPU reproduction) Table I configuration.
PAPER = Table1Config()

#: Paper config on the MLP-Mixer backbone.
PAPER_MIXER = replace(PAPER, backbone="mixer")

#: Seconds-scale configuration for tests and smoke runs.
QUICK = PAPER.quick()

#: Seeds used for the significance test in the Table I bench.
TABLE1_SEEDS = (0, 1, 2)
