"""Tests for the ``peft.attach`` API and the AttachResult lifecycle."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import ops
from repro.errors import AdapterError
from repro.nn import Linear, Module, ModuleList
from repro.peft import PEFT_METHODS, attach
from repro.peft.base import Adapter, set_module
from repro.peft.lora import LoRALinear

#: methods whose ΔW is static, so AttachResult.merge() can fold it.
MERGEABLE = ("lora", "multi_lora", "tt_lora", "dora")
#: non-meta methods whose forward is not a weight delta (merge must refuse).
UNMERGEABLE = ("moe_lora", "bottleneck")
META = ("meta_cp", "meta_lora_cp", "meta_tr", "meta_lora_tr")


class Block(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc = Linear(12, 12, rng=rng)

    def forward(self, x):
        return ops.relu(self.fc(x))


class TinyMLP(Module):
    """Two blocks held in a ModuleList plus a head — exercises nesting."""

    def __init__(self, rng):
        super().__init__()
        self.blocks = ModuleList([Block(rng), Block(rng)])
        self.head = Linear(12, 4, rng=rng)

    def forward(self, x):
        for block in self.blocks:
            x = block(x)
        return self.head(x)


def snapshot(model):
    weights = {n: p.data.copy() for n, p in model.named_parameters()}
    trainable = {n: p.requires_grad for n, p in model.named_parameters()}
    return weights, trainable


class TestAttach:
    def test_registry_covers_all_methods(self):
        assert set(MERGEABLE) | set(UNMERGEABLE) | set(META) == set(
            PEFT_METHODS.names()
        )

    def test_unknown_method_lists_registered(self, rng):
        with pytest.raises(AdapterError, match="lora"):
            attach(TinyMLP(rng), "no_such_method", rank=2, rng=rng)

    def test_attach_wraps_all_targets(self, rng):
        result = attach(TinyMLP(rng), "lora", rank=2, rng=rng)
        assert sorted(result.adapters) == ["blocks.0.fc", "blocks.1.fc", "head"]
        assert result.state == "attached"
        assert result.method == "lora"

    def test_skip_leaves_layers_alone(self, rng):
        model = TinyMLP(rng)
        result = attach(model, "lora", rank=2, skip=("head",), rng=rng)
        assert "head" not in result.adapters
        assert isinstance(model.head, Linear)

    def test_base_weights_frozen_after_attach(self, rng):
        model = TinyMLP(rng)
        attach(model, "lora", rank=2, rng=rng)
        for name, param in model.named_parameters():
            if "base" in name:
                assert not param.requires_grad, name

    def test_double_attach_refused(self, rng):
        model = TinyMLP(rng)
        attach(model, "lora", rank=2, rng=rng)
        with pytest.raises(AdapterError, match="already"):
            attach(model, "lora", rank=2, rng=rng)

    def test_callable_method(self, rng):
        model = TinyMLP(rng)
        result = attach(
            model,
            lambda layer: LoRALinear(layer, rank=2, rng=rng),
            targets=(Linear,),
        )
        assert len(result) == 3
        assert all(isinstance(a, LoRALinear) for __, a in result)

    @pytest.mark.parametrize("method", sorted(PEFT_METHODS.names()))
    def test_attach_detach_roundtrip(self, method, rng):
        """Detach must restore weights, types, trainability, and outputs."""
        model = TinyMLP(rng)
        x = Tensor(rng.normal(size=(3, 12)).astype(np.float32))
        before = model(x).data.copy()
        weights, trainable = snapshot(model)

        result = attach(model, method, rank=2, targets=(Linear,), rng=rng)
        assert len(result) == 3
        restored = result.detach()

        assert restored is model
        assert result.state == "detached"
        assert not any(isinstance(m, Adapter) for __, m in model.named_modules())
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, weights[name], err_msg=name)
            assert param.requires_grad == trainable[name], name
        np.testing.assert_array_equal(model(x).data, before)

    @pytest.mark.parametrize("method", MERGEABLE)
    def test_merge_roundtrip(self, method, rng):
        model = TinyMLP(rng)
        x = Tensor(rng.normal(size=(3, 12)).astype(np.float32))
        result = attach(model, method, rank=2, targets=(Linear,), rng=rng)
        # Push the adapters off their zero-init so the merge moves weights.
        for __, adapter in result:
            for param in adapter.parameters():
                if param.requires_grad:
                    param.data[...] += 0.01 * rng.normal(size=param.shape)
        adapted = model(x).data.copy()

        merged = result.merge()

        assert merged is model
        assert result.state == "merged"
        assert not any(isinstance(m, Adapter) for __, m in model.named_modules())
        np.testing.assert_allclose(model(x).data, adapted, atol=1e-4)
        assert model.head.weight.requires_grad  # folded layers become trainable

    @pytest.mark.parametrize("method", META)
    def test_meta_methods_refuse_merge(self, method, rng):
        result = attach(TinyMLP(rng), method, rank=2, targets=(Linear,), rng=rng)
        with pytest.raises(AdapterError, match="[Mm]eta"):
            result.merge()
        assert result.state == "attached"  # refusal leaves everything in place

    @pytest.mark.parametrize("method", UNMERGEABLE)
    def test_nonlinear_adapters_refuse_merge(self, method, rng):
        result = attach(TinyMLP(rng), method, rank=2, targets=(Linear,), rng=rng)
        with pytest.raises(AdapterError):
            result.merge()

    def test_detach_after_merge_refused(self, rng):
        result = attach(TinyMLP(rng), "lora", rank=2, rng=rng)
        result.merge()
        with pytest.raises(AdapterError, match="merged"):
            result.detach()

    def test_double_merge_refused(self, rng):
        result = attach(TinyMLP(rng), "lora", rank=2, rng=rng)
        result.merge()
        with pytest.raises(AdapterError):
            result.merge()

    def test_trainable_parameters_are_adapter_params(self, rng):
        model = TinyMLP(rng)
        result = attach(model, "lora", rank=2, rng=rng)
        from_result = {id(p) for p in result.trainable_parameters()}
        from_model = {id(p) for p in model.parameters() if p.requires_grad}
        assert from_result == from_model


class NamedStack(Module):
    """A container that keeps children in ``_items`` under non-digit names.

    Mimics user code that mirrors ModuleList's list-backing but registers
    children under descriptive attribute names — set_module must fix the
    list by identity, not by positional name.
    """

    def __init__(self, rng):
        super().__init__()
        self._items = [Linear(12, 12, rng=rng), Linear(12, 12, rng=rng)]
        self.register_module("first", self._items[0])
        self.register_module("second", self._items[1])

    def forward(self, x):
        for item in self._items:
            x = item(x)
        return x


class TestSetModuleListConsistency:
    def test_modulelist_items_swapped_by_identity(self, rng):
        model = TinyMLP(rng)
        result = attach(model, "lora", rank=2, rng=rng)
        # The list the forward pass iterates must see the adapters too.
        for index, block in enumerate(model.blocks):
            assert block.fc is result.adapters[f"blocks.{index}.fc"]

    def test_forward_uses_adapted_layers_inside_modulelist(self, rng):
        model = TinyMLP(rng)
        x = Tensor(rng.normal(size=(2, 12)).astype(np.float32))
        result = attach(model, "lora", rank=2, rng=rng)
        for __, adapter in result:
            adapter.lora_b.data[...] = 1.0
        adapted = model(x).data
        result.detach()
        assert not np.allclose(adapted, model(x).data)

    def test_custom_items_container(self, rng):
        model = NamedStack(rng)
        x = Tensor(rng.normal(size=(2, 12)).astype(np.float32))
        replacement = LoRALinear(model._items[1], rank=2, rng=rng)
        set_module(model, "second", replacement)
        assert model._items[1] is replacement
        replacement.lora_b.data[...] = 1.0
        baseline = model._items[0](x)
        np.testing.assert_allclose(
            model(x).data, replacement(baseline).data, atol=1e-6
        )
