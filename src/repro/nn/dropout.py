"""Dropout layer with an owned, reseedable random stream."""

from __future__ import annotations

import numpy as np

from repro.autograd.ops import dropout
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.utils.rng import new_rng


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or at rate 0."""

    def __init__(self, rate: float, seed: int | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng: np.random.Generator = new_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, self._rng, training=self.training)
