"""Automatic PEFT configuration under a parameter budget.

Given a pretrained model and a hard trainable-parameter budget, the
planner picks per-layer ranks from each weight's spectrum
(`repro.tensornet.rank_selection`) and shrinks the most expensive layers
until the projection fits.  The summary view shows the result per layer.

Run:  python examples/auto_budget.py
"""

import numpy as np

from repro.models import resnet_small
from repro.nn import summarize
from repro.peft import apply_plan, count_parameters, plan_adapters

rng = np.random.default_rng(0)


def main() -> None:
    for budget in (1_500, 4_000, 12_000):
        model = resnet_small(num_classes=8, rng=np.random.default_rng(0))
        plan = plan_adapters(model, budget=budget, family="meta_tr", max_rank=6)
        apply_plan(model, plan, rng=rng)
        counts = count_parameters(model)
        print(f"=== budget {budget:,} ===")
        print(plan.describe())
        print(
            f"actual trainable: {counts.trainable:,} "
            f"({100 * counts.trainable_fraction:.1f}% of the model)\n"
        )

    model = resnet_small(num_classes=8, rng=np.random.default_rng(0))
    plan = plan_adapters(model, budget=4_000, family="meta_tr", max_rank=6)
    apply_plan(model, plan, rng=rng)
    print("layer-by-layer view (4k budget):")
    print(summarize(model))


if __name__ == "__main__":
    main()
