"""K-nearest-neighbour classifier over embeddings (Table I's evaluator).

The paper scores each method by fitting a KNN on adapted embeddings and
reporting query accuracy at K=5 and K=10 — a linear-probe-free measure of
how well the embedding space clusters by class.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


class KNNClassifier:
    """Majority-vote KNN with cosine or euclidean distance."""

    def __init__(self, metric: str = "cosine") -> None:
        if metric not in ("cosine", "euclidean"):
            raise EvaluationError(f"unknown metric {metric!r}")
        self.metric = metric
        self._embeddings: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def fit(self, embeddings: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        embeddings = np.asarray(embeddings, dtype=np.float64)
        labels = np.asarray(labels)
        if embeddings.ndim != 2:
            raise EvaluationError(f"embeddings must be 2-d, got {embeddings.shape}")
        if labels.shape != (embeddings.shape[0],):
            raise EvaluationError(
                f"labels shape {labels.shape} does not match "
                f"{embeddings.shape[0]} embeddings"
            )
        self._embeddings = embeddings
        self._labels = labels
        return self

    def _distances(self, queries: np.ndarray) -> np.ndarray:
        assert self._embeddings is not None
        if self.metric == "cosine":
            support = self._embeddings / (
                np.linalg.norm(self._embeddings, axis=1, keepdims=True) + 1e-12
            )
            q = queries / (np.linalg.norm(queries, axis=1, keepdims=True) + 1e-12)
            return 1.0 - q @ support.T
        diff = queries[:, None, :] - self._embeddings[None, :, :]
        return np.sqrt((diff**2).sum(axis=2))

    def predict(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Labels of the majority among the ``k`` nearest supports.

        Ties are broken toward the class whose members are nearest in
        total distance, which keeps predictions deterministic.
        """
        if self._embeddings is None or self._labels is None:
            raise EvaluationError("predict() called before fit()")
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float64)
        k = min(k, self._embeddings.shape[0])
        distances = self._distances(queries)
        nearest = np.argsort(distances, axis=1)[:, :k]
        predictions = np.empty(queries.shape[0], dtype=self._labels.dtype)
        for i in range(queries.shape[0]):
            neighbour_labels = self._labels[nearest[i]]
            neighbour_distances = distances[i, nearest[i]]
            classes, votes = np.unique(neighbour_labels, return_counts=True)
            best = classes[votes == votes.max()]
            if best.shape[0] == 1:
                predictions[i] = best[0]
            else:
                totals = [
                    neighbour_distances[neighbour_labels == c].sum() for c in best
                ]
                predictions[i] = best[int(np.argmin(totals))]
        return predictions

    def score(self, queries: np.ndarray, labels: np.ndarray, k: int) -> float:
        """Accuracy of :meth:`predict` against ``labels``."""
        predictions = self.predict(queries, k)
        return float((predictions == np.asarray(labels)).mean())
