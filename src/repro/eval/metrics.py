"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise EvaluationError(
            f"predictions {predictions.shape} and labels {labels.shape} disagree"
        )
    if predictions.size == 0:
        raise EvaluationError("accuracy of an empty prediction set")
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``matrix[true, predicted]`` counts."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise EvaluationError(
            f"predictions {predictions.shape} and labels {labels.shape} disagree"
        )
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
