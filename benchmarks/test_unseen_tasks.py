"""Bench: generalization to **unseen task variations** (Sec. I's claim).

The introduction motivates MetaLoRA with static adapters' "limited
dynamic adaptability ... particularly when handling previously unseen
task variations".  This bench tests that claim directly:

- adapters train on one family of shifted tasks;
- evaluation uses a *disjoint* family drawn from the same distribution
  (new color directions, tints, shifts — styles never seen in training);
- KNN accuracy on the unseen tasks measures zero-shot task transfer.

A static adapter can only reuse its one learned compromise; MetaLoRA
infers each unseen task's style from the input and generates a fresh
ΔW — so the meta variants should degrade less from seen → unseen.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PAPER
from repro.data.synthetic import generate_task_data
from repro.data.tasks import TaskDistribution
from repro.eval.protocol import _adapt, _knn_accuracy, build_adapted_model, pretrain_backbone
from repro.utils.rng import spawn_rngs

METHODS = ("lora", "multi_lora", "meta_lora_tr")


@pytest.mark.benchmark(group="unseen")
def test_unseen_task_generalization(benchmark, scale):
    config = replace(
        PAPER,
        methods=METHODS,
        num_tasks=7 if scale == "quick" else PAPER.num_tasks,
        adapt_episodes=100 if scale == "quick" else PAPER.adapt_episodes,
        support_per_task=32 if scale == "quick" else PAPER.support_per_task,
        query_per_task=32 if scale == "quick" else PAPER.query_per_task,
        pretrain_epochs=4 if scale == "quick" else PAPER.pretrain_epochs,
    )

    def make_eval_sets(tasks, rng):
        sets = []
        for task in tasks.shifted_tasks():
            support = generate_task_data(
                task, config.support_per_task, config.num_classes, config.image_size, rng
            )
            query = generate_task_data(
                task, config.query_per_task, config.num_classes, config.image_size, rng
            )
            sets.append((support, query))
        return sets

    def run():
        rng_pre, rng_tasks, rng_eval, *method_rngs = spawn_rngs(0, 3 + len(METHODS))
        __, state = pretrain_backbone(config, rng_pre)

        seen = TaskDistribution(
            config.num_tasks, image_size=config.image_size,
            seed=11, noise_level=config.noise_level,
        )
        unseen = TaskDistribution(
            config.num_tasks, image_size=config.image_size,
            seed=99, noise_level=config.noise_level,
        )
        train_sets = [
            generate_task_data(
                t, config.adapt_samples_per_task, config.num_classes,
                config.image_size, rng_tasks,
            )
            for t in seen.shifted_tasks()
        ]
        seen_eval = make_eval_sets(seen, rng_eval)
        unseen_eval = make_eval_sets(unseen, rng_eval)

        results = {}
        for method, rng in zip(METHODS, method_rngs):
            model = build_adapted_model(method, config, state, rng)
            _adapt(model, train_sets, config, rng)
            seen_acc = _knn_accuracy(model, seen_eval, 5, config.knn_metric)
            unseen_acc = _knn_accuracy(model, unseen_eval, 5, config.knn_metric)
            results[method] = (seen_acc, unseen_acc)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'method':<14} {'seen':>7}  {'unseen':>7}  {'drop':>6}")
    for method, (seen_acc, unseen_acc) in results.items():
        print(
            f"{method:<14} {100 * seen_acc:>6.1f}%  {100 * unseen_acc:>6.1f}%  "
            f"{100 * (seen_acc - unseen_acc):>5.1f}"
        )
    for seen_acc, unseen_acc in results.values():
        assert 0.0 <= unseen_acc <= 1.0
        assert unseen_acc > 1.0 / config.num_classes  # above chance zero-shot
