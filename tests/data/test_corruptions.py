"""Property tests for the seeded corruption catalog.

Every registered family is held to the contract the robustness grid
rests on: determinism under a fixed ``(seed, corruption, severity)``
key, severity-0 bit-identity (the very same array object), monotone
mean distortion along the severity ladder, shape/dtype preservation,
and RNG hygiene — corruptions draw only from the generator they are
handed, so interleaving them with training leaves every trajectory
bit-identical.
"""

import numpy as np
import pytest

from repro.data import (
    CORRUPTIONS,
    DEFAULT_CORRUPTIONS,
    corruption_rng,
    get_corruption,
)
from repro.data.corruptions import SEVERITIES
from repro.errors import ConfigError, DataError

ALL_NAMES = sorted(CORRUPTIONS)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(42)
    return rng.normal(size=(4, 3, 16, 16)).astype(np.float32)


class TestCatalog:
    def test_default_axis_is_the_full_registry(self):
        assert DEFAULT_CORRUPTIONS == tuple(CORRUPTIONS)
        assert len(DEFAULT_CORRUPTIONS) == 7

    def test_unknown_name_refused(self):
        with pytest.raises(ConfigError, match="unknown corruption"):
            get_corruption("solarize", 1)

    @pytest.mark.parametrize("severity", [-1, 6, 2.5])
    def test_out_of_range_severity_refused(self, severity):
        with pytest.raises(ConfigError, match="severity"):
            get_corruption("contrast", severity)

    def test_bad_shape_refused(self, images):
        transform = get_corruption("contrast", 3)
        with pytest.raises(DataError, match=r"\(N, 3, H, W\)"):
            transform.apply(images[0], corruption_rng(0, "contrast", 3))


class TestPerFamilyContract:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_deterministic_under_cell_key(self, name, images):
        transform = get_corruption(name, 3)
        first = transform.apply(images, corruption_rng(7, name, 3))
        second = transform.apply(images, corruption_rng(7, name, 3))
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_severity_zero_is_the_same_object(self, name, images):
        transform = get_corruption(name, 0)
        assert transform.apply(images, corruption_rng(0, name, 0)) is images

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_shape_and_dtype_preserved(self, name, images):
        for severity in SEVERITIES[1:]:
            out = get_corruption(name, severity).apply(
                images, corruption_rng(0, name, severity)
            )
            assert out.shape == images.shape
            assert out.dtype == np.float32
            assert out is not images

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_mean_distortion_monotone_in_severity(self, name, images):
        distortions = []
        for severity in SEVERITIES[1:]:
            out = get_corruption(name, severity).apply(
                images, corruption_rng(0, name, severity)
            )
            distortions.append(float(np.mean(np.abs(out - images))))
        assert all(
            later > earlier
            for earlier, later in zip(distortions, distortions[1:])
        ), f"{name}: distortion not monotone: {distortions}"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_nonzero_severity_actually_corrupts(self, name, images):
        out = get_corruption(name, 1).apply(images, corruption_rng(0, name, 1))
        assert not np.array_equal(out, images)


class TestCellRng:
    def test_same_key_same_stream(self):
        a = corruption_rng(3, "occlusion", 2)
        b = corruption_rng(3, "occlusion", 2)
        assert np.array_equal(a.normal(size=8), b.normal(size=8))

    def test_distinct_keys_distinct_streams(self):
        draws = {
            key: corruption_rng(*key).normal(size=8).tobytes()
            for key in [
                (0, "occlusion", 2),
                (1, "occlusion", 2),
                (0, "contrast", 2),
                (0, "occlusion", 3),
            ]
        }
        assert len(set(draws.values())) == len(draws)


class TestRngHygiene:
    def test_global_numpy_state_untouched(self, images):
        before = np.random.get_state()
        for name in ALL_NAMES:
            get_corruption(name, 4).apply(images, corruption_rng(0, name, 4))
        after = np.random.get_state()
        assert before[0] == after[0]
        assert np.array_equal(before[1], after[1])
        assert before[2:] == after[2:]

    def test_interleaving_leaves_training_draws_bit_identical(self, images):
        """A global-RNG 'training trajectory' is bit-identical whether or
        not corrupted evaluations run in between its draws."""

        def trajectory(interleave: bool) -> list[bytes]:
            np.random.seed(1234)
            draws = []
            for step, name in enumerate(ALL_NAMES):
                draws.append(np.random.normal(size=16).tobytes())
                if interleave:
                    get_corruption(name, 3).apply(
                        images, corruption_rng(step, name, 3)
                    )
            draws.append(np.random.normal(size=16).tobytes())
            return draws

        assert trajectory(interleave=False) == trajectory(interleave=True)
