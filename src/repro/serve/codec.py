"""The serving wire codec (``repro.serve.codec``).

One frame format shared by every process boundary in the serving stack
— the asyncio TCP frontend, the blocking :class:`ServeClient`, and the
shard IPC links (:mod:`repro.serve.shard`)::

    frame   := u32_be header_len | header_json | u32_be payload_len | payload
    header  := JSON object (utf-8)
    payload := numpy ``.npy`` bytes (may be empty)

Both segments are bounded by :data:`MAX_SEGMENT` (64 MiB) in *both*
directions: a reader rejects an oversized length prefix before
allocating, and :func:`encode_frame` refuses to emit one — either way
the failure is a typed :class:`~repro.errors.ServeError`, never a
silent truncation.

``encode_payload`` takes the single-copy path for C-contiguous arrays:
the ``.npy`` header is rendered directly and the array's buffer is
joined in without the ``np.save``-into-``BytesIO`` round trip (which
copies the data twice — once into the stream, once out of it).
Non-contiguous or otherwise unusual arrays fall back to ``np.save``.

Control messages that carry *several* arrays (shard registry sync,
recorded-batch shipping) use :func:`encode_arrays` — a flat sequence of
length-prefixed ``name | npy`` records, so state-dict keys with dots
survive where ``np.savez``'s kwargs would not.
"""

from __future__ import annotations

import asyncio
import io
import json
import socket
import struct
from typing import Mapping

import numpy as np

from repro.errors import ServeError

__all__ = [
    "MAX_SEGMENT",
    "decode_arrays",
    "decode_payload",
    "encode_arrays",
    "encode_frame",
    "encode_payload",
    "read_frame",
    "read_frame_sync",
    "recv_exactly",
]

_LEN = struct.Struct(">I")

#: Largest accepted header or payload, a sanity bound against garbage
#: frames (64 MiB covers any realistic batch of image samples here).
MAX_SEGMENT = 64 * 1024 * 1024


def encode_payload(array: np.ndarray | None) -> bytes:
    """``.npy`` bytes for ``array`` (empty bytes for ``None``).

    C-contiguous arrays render the ``.npy`` header directly and join
    the array's own buffer — one copy, into the returned bytes —
    instead of round-tripping through ``np.save`` on a ``BytesIO``.
    """
    if array is None:
        return b""
    array = np.asarray(array)
    if array.flags.c_contiguous and not array.dtype.hasobject:
        try:
            head = io.BytesIO()
            np.lib.format.write_array_header_1_0(
                head, np.lib.format.header_data_from_array_1_0(array)
            )
            return b"".join((head.getvalue(), memoryview(array).cast("B")))
        except (TypeError, ValueError):
            pass  # 0-d and zero-size views cannot cast; np.save handles them
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def decode_payload(payload: bytes) -> np.ndarray | None:
    """Inverse of :func:`encode_payload` (lossless round trip)."""
    if not payload:
        return None
    return np.load(io.BytesIO(payload), allow_pickle=False)


def encode_arrays(arrays: "Mapping[str, np.ndarray]") -> bytes:
    """Pack named arrays into one payload (state dicts, batch shipments)."""
    parts: list[bytes] = []
    for name, array in arrays.items():
        label = name.encode("utf-8")
        blob = encode_payload(np.asarray(array))
        parts.extend((_LEN.pack(len(label)), label, _LEN.pack(len(blob)), blob))
    return b"".join(parts)


def decode_arrays(payload: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_arrays`, preserving insertion order."""
    view = memoryview(payload)
    offset = 0
    arrays: dict[str, np.ndarray] = {}
    while offset < len(view):
        if offset + _LEN.size > len(view):
            raise ServeError("array payload truncated mid-record")
        (length,) = _LEN.unpack_from(view, offset)
        offset += _LEN.size
        if offset + length > len(view):
            raise ServeError("array payload truncated mid-record")
        name = bytes(view[offset : offset + length]).decode("utf-8")
        offset += length
        if offset + _LEN.size > len(view):
            raise ServeError("array payload truncated mid-record")
        (length,) = _LEN.unpack_from(view, offset)
        offset += _LEN.size
        if offset + length > len(view):
            raise ServeError("array payload truncated mid-record")
        arrays[name] = decode_payload(bytes(view[offset : offset + length]))
        offset += length
    return arrays


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """One wire frame: length-prefixed JSON header + length-prefixed payload."""
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    for segment, what in ((head, "header"), (payload, "payload")):
        if len(segment) > MAX_SEGMENT:
            raise ServeError(
                f"frame {what} of {len(segment)} bytes exceeds {MAX_SEGMENT}"
            )
    return b"".join((_LEN.pack(len(head)), head, _LEN.pack(len(payload)), payload))


def _checked_length(raw: bytes, what: str) -> int:
    (length,) = _LEN.unpack(raw)
    if length > MAX_SEGMENT:
        raise ServeError(f"frame {what} of {length} bytes exceeds {MAX_SEGMENT}")
    return length


def _parse_header(head: bytes) -> dict:
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ServeError(f"frame header must be a JSON object, got {header!r}")
    return header


async def read_frame(reader: asyncio.StreamReader) -> tuple[dict, bytes] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        raw = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError("connection closed mid-frame") from exc
    try:
        head = await reader.readexactly(_checked_length(raw, "header"))
        header = _parse_header(head)
        raw = await reader.readexactly(_LEN.size)
        payload = await reader.readexactly(_checked_length(raw, "payload"))
    except asyncio.IncompleteReadError as exc:
        raise ServeError("connection closed mid-frame") from exc
    return header, payload


def recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ServeError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> tuple[dict, bytes]:
    head = recv_exactly(sock, _checked_length(recv_exactly(sock, _LEN.size), "header"))
    header = _parse_header(head)
    payload = recv_exactly(
        sock, _checked_length(recv_exactly(sock, _LEN.size), "payload")
    )
    return header, payload
