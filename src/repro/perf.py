"""Performance-path feature flags.

Every optimization added on top of the reference implementation (einsum
plan caching, optimal contraction ordering, im2col patch caching, batched
meta-seed generation) is guarded by a flag here so the two paths can be
A/B-tested: the reference path is the original, straight-line code; the
optimized path must match it numerically (see ``tests/autograd`` and
``tests/peft``) and is what ships by default.

Flags initialize from the environment:

- ``REPRO_PERF=off`` (or ``reference``) disables every optimization;
- ``REPRO_EINSUM_PLAN_CACHE=0``, ``REPRO_EINSUM_OPTIMIZE=0``,
  ``REPRO_CONV_PATCHES_CACHE=0``, ``REPRO_CONV_PAD_WORKSPACE=0``,
  ``REPRO_BATCHED_SEEDS=0``, ``REPRO_BACKWARD_INPLACE_ACCUM=0`` disable
  individual paths;
- ``REPRO_BACKWARD_RELEASE=1`` opts in to the backward memory diet
  (graph metadata is dropped as ``backward()`` consumes it; see
  :meth:`repro.autograd.tensor.Tensor.backward`).  Off by default because
  it trades the ability to re-run ``backward()`` on the same graph for a
  smaller peak footprint; the parallel experiment runtime enables it per
  worker, where graphs are never reused.
- ``REPRO_SERVE_EMBEDDINGS=1`` opts in to routing the evaluation
  protocol's embedding extraction through the compiled ``repro.serve``
  engine (bit-identical output; see docs/serving.md).  Off by default
  because the engine snapshots weights at compile time.

Programmatic control uses :func:`perf_overrides` (a context manager), which
the benchmark harness relies on to time reference vs. optimized runs in the
same process.

Deterministic fault injection
-----------------------------

``REPRO_FAULTS`` arms the runtime's fault-injection hook so the
retry/timeout/resume machinery in :mod:`repro.runtime` is testable
without real hardware failures.  The value is a ``;``-separated list of
fault specs::

    <kind>:<key>[:<times>[:<seconds>]]

- ``kind`` — ``crash`` (raise :class:`repro.errors.FaultInjected`) or
  ``stall`` (sleep ``seconds``, default 30, inside the cell's soft
  timeout window);
- ``key`` — the cell key to hit, with tuple keys rendered as
  ``part/part`` (so the Table I cell ``(0, 'lora')`` is ``0/lora``), or
  ``*`` for every cell;
- ``times`` — how many *attempts* the fault fires on (default ``-1``,
  every attempt → a permanent fault).  ``crash:0/lora:2`` crashes
  attempts 0 and 1 and lets attempt 2 succeed — a transient fault the
  retry path must absorb.

The attempt number is supplied by the pool (the parent counts retries),
so fault behavior is a pure function of ``(key, attempt)`` — fully
deterministic however cells land on workers.  Fired faults bump the
``faults.crash`` / ``faults.stall`` counters in :data:`repro.obs.OBS`
and attach a ``faults.*`` event to the open cell span, so injected
faults are visible in ``repro trace`` output.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, fields
from typing import Iterator

from repro.errors import ConfigError, FaultInjected


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


@dataclass
class PerfFlags:
    """Which optimized paths are active.

    ``einsum_plan_cache`` memoizes spec parsing and gradient-spec
    derivation — bit-identical to the reference path.
    ``einsum_optimize`` additionally contracts >=3-operand einsums in the
    optimal pairwise order — numerically equivalent but not bit-identical
    (floating-point summation order changes).
    ``backward_inplace_accum`` accumulates multi-consumer gradients into a
    sweep-owned buffer with ``np.add(..., out=...)`` — bit-identical (the
    in-place path only triggers once the buffer is private and dtypes
    match).
    ``backward_release`` frees graph metadata (parents + grad closures,
    and with them the captured activations) as the backward sweep consumes
    each node.  Bit-identical per sweep, but a released graph cannot be
    backpropagated again — hence opt-in.
    ``serve_embeddings`` routes ``extract_embeddings`` through the compiled
    ``repro.serve`` engine (bit-identical chunking; see docs/serving.md).
    Opt-in because the engine snapshots weights at compile time, which is
    wrong mid-training.
    """

    einsum_plan_cache: bool = True
    einsum_optimize: bool = True
    conv_patches_cache: bool = True
    conv_pad_workspace: bool = True
    batched_seeds: bool = True
    backward_inplace_accum: bool = True
    backward_release: bool = False
    serve_embeddings: bool = False


def _from_env() -> PerfFlags:
    if os.environ.get("REPRO_PERF", "").strip().lower() in ("off", "reference", "0"):
        return PerfFlags(**{f.name: False for f in fields(PerfFlags)})
    return PerfFlags(
        einsum_plan_cache=_env_bool("REPRO_EINSUM_PLAN_CACHE", True),
        einsum_optimize=_env_bool("REPRO_EINSUM_OPTIMIZE", True),
        conv_patches_cache=_env_bool("REPRO_CONV_PATCHES_CACHE", True),
        conv_pad_workspace=_env_bool("REPRO_CONV_PAD_WORKSPACE", True),
        batched_seeds=_env_bool("REPRO_BATCHED_SEEDS", True),
        backward_inplace_accum=_env_bool("REPRO_BACKWARD_INPLACE_ACCUM", True),
        backward_release=_env_bool("REPRO_BACKWARD_RELEASE", False),
        serve_embeddings=_env_bool("REPRO_SERVE_EMBEDDINGS", False),
    )


#: Process-wide flag singleton; mutate via :func:`perf_overrides`.
FLAGS = _from_env()


@contextlib.contextmanager
def perf_overrides(**overrides: bool) -> Iterator[PerfFlags]:
    """Temporarily override flags by name (restores previous values on exit).

    >>> from repro.perf import FLAGS, perf_overrides
    >>> with perf_overrides(einsum_plan_cache=False):
    ...     assert not FLAGS.einsum_plan_cache
    >>> FLAGS.einsum_plan_cache
    True
    """
    valid = {f.name for f in fields(PerfFlags)}
    unknown = set(overrides) - valid
    if unknown:
        raise ValueError(f"unknown perf flags: {sorted(unknown)}; valid: {sorted(valid)}")
    previous = {name: getattr(FLAGS, name) for name in overrides}
    for name, value in overrides.items():
        setattr(FLAGS, name, bool(value))
    try:
        yield FLAGS
    finally:
        for name, value in previous.items():
            setattr(FLAGS, name, value)


@contextlib.contextmanager
def reference_mode() -> Iterator[PerfFlags]:
    """Run the block with every optimization disabled (the reference path)."""
    with perf_overrides(**{f.name: False for f in fields(PerfFlags)}) as flags:
        yield flags


# -- deterministic fault injection (REPRO_FAULTS) ------------------------------

#: Environment variable holding the armed fault specs (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Default stall duration when a ``stall`` spec omits ``seconds`` — long
#: enough that any reasonable cell timeout fires first.
DEFAULT_STALL_SECONDS = 30.0


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: what to do, to which cell, on which attempts."""

    kind: str  # "crash" | "stall"
    key: str  # rendered cell key, or "*" for every cell
    times: int = -1  # attempts the fault fires on; -1 = every attempt
    seconds: float = DEFAULT_STALL_SECONDS  # stall duration

    def matches(self, key: str, attempt: int) -> bool:
        if self.key != "*" and self.key != key:
            return False
        return self.times < 0 or attempt < self.times


def render_fault_key(key: object) -> str:
    """Canonical spec rendering of a cell key: tuples join with ``/``."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def parse_faults(raw: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value; raises :class:`ConfigError` on junk."""
    specs = []
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2 or len(parts) > 4 or parts[0] not in ("crash", "stall"):
            raise ConfigError(
                f"bad fault spec {chunk!r}; expected "
                f"crash|stall:<key>[:<times>[:<seconds>]]"
            )
        kind, key = parts[0], parts[1]
        if not key:
            raise ConfigError(f"fault spec {chunk!r} has an empty key")
        try:
            times = int(parts[2]) if len(parts) > 2 and parts[2] else -1
            seconds = (
                float(parts[3])
                if len(parts) > 3 and parts[3]
                else DEFAULT_STALL_SECONDS
            )
        except ValueError as exc:
            raise ConfigError(f"bad fault spec {chunk!r}: {exc}") from exc
        if seconds < 0:
            raise ConfigError(f"fault spec {chunk!r}: seconds must be >= 0")
        specs.append(FaultSpec(kind=kind, key=key, times=times, seconds=seconds))
    return tuple(specs)


def active_faults() -> tuple[FaultSpec, ...]:
    """The faults currently armed via the environment (usually none)."""
    raw = os.environ.get(FAULTS_ENV, "")
    return parse_faults(raw) if raw.strip() else ()


def fire_faults(key: object, attempt: int = 0) -> None:
    """Fire any armed fault matching ``(key, attempt)``.

    Called by the cell runner at the top of every cell execution.  A
    matching ``crash`` raises :class:`FaultInjected`; a matching
    ``stall`` sleeps its duration (interruptible by the pool's soft
    timeout).  No-op — one env read — when nothing is armed.
    """
    faults = active_faults()
    if not faults:
        return
    from repro.obs import OBS, TRACER  # local: keep perf import-light

    rendered = render_fault_key(key)
    for spec in faults:
        if not spec.matches(rendered, attempt):
            continue
        TRACER.event(f"faults.{spec.kind}", key=rendered, attempt=attempt)
        if spec.kind == "stall":
            OBS.inc("faults.stall")
            time.sleep(spec.seconds)
        else:
            OBS.inc("faults.crash")
            raise FaultInjected(
                f"injected crash on cell {rendered!r} (attempt {attempt})"
            )
