#!/usr/bin/env sh
# CI smoke for the performance harness: run the bench_smoke-marked tests
# (schema round-trip), then produce real BENCH_*.json records at tiny scale,
# then exercise the durable-run loop: a fault-injected partial Table I run
# into a run directory, resumed to completion.
#
# Usage: scripts/bench_smoke.sh [out_dir]   (out_dir defaults to .)
set -eu

cd "$(dirname "$0")/.."
out_dir="${1:-.}"

PYTHONPATH=src python -m pytest tests/bench -m bench_smoke -q
# --jobs 2 also times the parallel Table I grid runtime and records the
# `parallel` section (serial-vs-parallel wall-clock + bit-identity check).
# All three suites run (autograd, table1, serve); the serve suite asserts
# compiled-vs-reference bit-exactness in-process, so BENCH_serve.json
# existing at all means the compiled engine matched exactly.
# --tenants 3 sizes the serve suite's multi_tenant section: one static
# merged-LoRA tenant plus two seed-slot tenants, with one hot swap.
PYTHONPATH=src python -m repro bench --out "$out_dir" --scale tiny --repeats 2 --jobs 2 --tenants 3
for record in BENCH_autograd.json BENCH_table1.json BENCH_serve.json; do
  test -f "$out_dir/$record" || { echo "bench_smoke: missing $record" >&2; exit 1; }
done

# The multi-tenant section must be present, validate against the schema,
# and pin the cross-tenant stacking identity (bit_identical is asserted
# in-process while the bench runs; the record carries the pin).
PYTHONPATH=src python - "$out_dir/BENCH_serve.json" <<'PYEOF'
import json, sys

from repro.bench import validate_bench_record

with open(sys.argv[1], encoding="utf-8") as handle:
    record = json.load(handle)
validate_bench_record(record)
multi = record.get("multi_tenant")
assert multi, "bench_smoke: BENCH_serve.json has no multi_tenant section"
assert multi["tenants"] == 3, multi["tenants"]
assert multi["seed_slot_tenants"] == 2
assert multi["swaps"] == 1
assert multi["bit_identical"] is True
print(
    "bench_smoke: multi_tenant ok "
    f"(speedup {multi['speedup']:.2f}x, "
    f"seed-slot {multi['seed_slot']['speedup']:.2f}x)"
)

# The precision matrix must be present and validated: every tier covered
# on both backbones, f64 rows bit-exact, KNN accuracy within budget
# (asserted in-process while the bench runs; the record carries the pin).
precision = record.get("precision")
assert precision, "bench_smoke: BENCH_serve.json has no precision section"
names = [backbone["name"] for backbone in precision["backbones"]]
assert names == ["resnet", "mixer"], names
for backbone in precision["backbones"]:
    assert backbone["f64_bit_identical"] is True
    tiers = {row["precision"] for row in backbone["rows"]}
    assert tiers == {"f64", "f32", "int8"}, tiers
print(
    "bench_smoke: precision matrix ok "
    f"(best f32+fusion speedup {precision['best_speedup_vs_f64']:.2f}x vs f64)"
)
PYEOF

# Load smoke: a real frontend + open-loop load generator run, two seconds
# per offered-load level.  The bench asserts server-vs-direct bit-identity
# per recorded micro-batch in-process, so BENCH_load.json existing at all
# means the wire path matched direct dispatch exactly; re-validate the
# record schema and the shape of the load curve here.  --shards 2 adds
# the horizontal scaling sweep: 1- and 2-shard fleets probed for
# capacity, loaded through the frontend, per-shard recorded batches
# replayed bit-identically against a single-process reference.
PYTHONPATH=src python -m repro bench --suite load --out "$out_dir" --scale tiny --load-duration 2 --shards 2
test -f "$out_dir/BENCH_load.json" || { echo "bench_smoke: missing BENCH_load.json" >&2; exit 1; }
PYTHONPATH=src python - "$out_dir/BENCH_load.json" <<'PYEOF'
import json, sys

from repro.bench import validate_bench_record

with open(sys.argv[1], encoding="utf-8") as handle:
    record = json.load(handle)
validate_bench_record(record)
levels = record["load"]["levels"]
assert len(levels) >= 3, len(levels)
assert record["bit_identical"] is True
assert record["replayed_batches"] >= 1
scaling = record.get("scaling")
assert scaling, "bench_smoke: BENCH_load.json has no scaling section"
assert scaling["shard_counts"] == [1, 2], scaling["shard_counts"]
for entry in scaling["entries"]:
    assert entry["bit_identical"] is True
    assert entry["replayed_batches"] >= 1
ratio = scaling["summary"]["capacity_ratio"]
assert ratio >= 1.3, ratio  # the 2-shard floor; 1.7 holds from 4 shards
print(
    "bench_smoke: load curve ok "
    f"({len(levels)} levels, capacity est. "
    f"{record['capacity_estimate_rps']:.0f} req/s, peak achieved "
    f"{record['summary']['peak_achieved_rate']:.0f} req/s, "
    f"{record['replayed_batches']} batch(es) replayed bit-identical; "
    f"scaling {ratio:.2f}x at {scaling['summary']['top_shards']} shards, "
    f"start method {scaling['start_method']})"
)
PYEOF

# Robustness smoke: the opt-in corruption-shift matrix at its smallest
# headline-capable size (2 methods x 1 corruption x 2 severities).  The
# bench asserts its three bit-identity pins in-process — severity-0 ==
# clean Table I, parallel == serial, resumed == serial — so the record
# existing at all means they held; re-validate the schema round-trip.
PYTHONPATH=src python - "$out_dir/BENCH_robustness.json" <<'PYEOF'
import json, sys

from repro.bench import run_robustness_bench, validate_bench_record

record = run_robustness_bench(
    scale="tiny",
    repeats=1,
    jobs=2,
    methods=("lora", "meta_lora_cp"),
    corruptions=("contrast",),
    severities=(0, 3),
)
with open(sys.argv[1], "w", encoding="utf-8") as handle:
    json.dump(record, handle, indent=2, sort_keys=True)
    handle.write("\n")
with open(sys.argv[1], encoding="utf-8") as handle:
    loaded = json.load(handle)
validate_bench_record(loaded)
assert loaded["severity0_bit_identical"] is True
assert loaded["parallel"]["cells_equal"] is True
assert loaded["resume"]["cells_equal"] is True
print(
    "bench_smoke: robustness ok "
    f"({len(loaded['cells'])} cells, headline delta "
    f"{loaded['headline']['corrupted_delta']:+.4f}, "
    f"{loaded['resume']['restored_cells']} cell(s) restored on resume)"
)
PYEOF
test -f "$out_dir/BENCH_robustness.json" || { echo "bench_smoke: missing BENCH_robustness.json" >&2; exit 1; }

# Durable-run smoke: inject a crash into one cell so the first run exits 1
# with a partial report and a checkpointed run dir, then resume it clean.
run_dir="$out_dir/table1_smoke_run"
rm -rf "$run_dir"
if REPRO_FAULTS="crash:0/meta_lora_tr" PYTHONPATH=src \
    python -m repro table1 --smoke --out-dir "$run_dir"; then
  echo "bench_smoke: expected the fault-injected run to exit nonzero" >&2
  exit 1
fi
# Resume re-runs only the crashed cell and must succeed.
PYTHONPATH=src python -m repro table1 --smoke --resume "$run_dir"

# Observability: both the crashed and the resumed grid export spans into
# the run directory's trace.jsonl (appended, one trace tag per export).
# Assert the file exists, parses, and renders cell spans.
test -f "$run_dir/trace.jsonl" || { echo "bench_smoke: missing trace.jsonl" >&2; exit 1; }
trace_report="$(PYTHONPATH=src python -m repro trace "$run_dir")"
case "$trace_report" in
  *table1.cell*) ;;
  *) echo "bench_smoke: trace report has no cell spans" >&2; exit 1 ;;
esac
rm -rf "$run_dir"
