"""Array checkpointing and the versioned artifact format.

Two layers:

- :func:`save_arrays` / :func:`load_arrays` — the raw layer: a flat
  mapping of names to numpy arrays persisted as a compressed ``.npz``
  archive, the simplest portable format that round-trips dtype and shape
  exactly.
- :func:`save_artifact` / :func:`load_artifact` — the **versioned
  artifact format** every durable thing in this repo uses (adapter
  checkpoints, run-dir cell results): the same ``.npz`` archive plus an
  embedded JSON *manifest* recording the format version, the artifact
  ``kind``, caller metadata, and every array's shape/dtype.  Loading
  validates the archive against its manifest and raises a clear
  :class:`repro.errors.CheckpointError` on any mismatch — a truncated
  file, a foreign ``.npz``, a version from the future, or an array whose
  shape silently changed — instead of failing deep inside numpy.

Writes are atomic (temp file + ``os.replace``), so a process killed
mid-write never leaves a half-written artifact that a later resume would
mistake for a completed one.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from typing import Mapping

import numpy as np

from repro.errors import CheckpointError

#: Version of the artifact manifest layout.  Bump on incompatible change;
#: loaders reject artifacts written by a different version.
ARTIFACT_VERSION = 1

#: Reserved archive entry holding the JSON manifest.
_MANIFEST_KEY = "__manifest__"


def save_arrays(path: str | os.PathLike, arrays: Mapping[str, np.ndarray]) -> None:
    """Write ``arrays`` to ``path`` as a compressed npz archive, atomically."""
    if not arrays:
        raise ValueError("refusing to save an empty state dict")
    _atomic_savez(path, {name: np.asarray(a) for name, a in arrays.items()})


def load_arrays(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load an archive written by :func:`save_arrays`."""
    with np.load(path) as archive:
        return {
            name: archive[name] for name in archive.files if name != _MANIFEST_KEY
        }


def _atomic_savez(path: str | os.PathLike, arrays: dict[str, np.ndarray]) -> None:
    """``np.savez_compressed`` into a temp file, then ``os.replace`` it in."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def build_manifest(
    arrays: Mapping[str, np.ndarray], *, kind: str, meta: Mapping | None = None
) -> dict:
    """The manifest :func:`save_artifact` embeds: version, kind, array index."""
    return {
        "format_version": ARTIFACT_VERSION,
        "kind": kind,
        "meta": dict(meta or {}),
        "arrays": {
            name: {
                "shape": list(np.asarray(array).shape),
                "dtype": str(np.asarray(array).dtype),
            }
            for name, array in arrays.items()
        },
    }


def save_artifact(
    path: str | os.PathLike,
    arrays: Mapping[str, np.ndarray],
    *,
    kind: str,
    meta: Mapping | None = None,
) -> dict:
    """Write a versioned artifact: arrays + embedded JSON manifest.

    ``kind`` names the artifact type (``"adapter"``, ``"table1_cell"``,
    ...) and is checked back on load; ``meta`` is arbitrary
    JSON-serializable caller metadata stored verbatim.  Returns the
    manifest that was written.
    """
    if not arrays:
        raise ValueError("refusing to save an empty artifact")
    if _MANIFEST_KEY in arrays:
        raise ValueError(f"array name {_MANIFEST_KEY!r} is reserved for the manifest")
    manifest = build_manifest(arrays, kind=kind, meta=meta)
    payload = {name: np.asarray(a) for name, a in arrays.items()}
    # A 0-d unicode array round-trips through npz without pickling.
    payload[_MANIFEST_KEY] = np.array(json.dumps(manifest, sort_keys=True))
    _atomic_savez(path, payload)
    return manifest


def read_manifest(path: str | os.PathLike) -> dict:
    """Read and structurally validate just the manifest of an artifact.

    Cheap relative to :func:`load_artifact` — npz members load lazily, so
    only the manifest entry is decompressed.
    """
    try:
        with np.load(path) as archive:
            if _MANIFEST_KEY not in archive.files:
                raise CheckpointError(
                    f"{os.fspath(path)!r} is not a versioned artifact "
                    f"(no embedded manifest); it may predate the manifest "
                    f"format or be a foreign .npz file"
                )
            raw = archive[_MANIFEST_KEY][()]
    except (OSError, zipfile.BadZipFile, ValueError, EOFError) as exc:
        raise CheckpointError(
            f"cannot read artifact {os.fspath(path)!r}: {exc}"
        ) from exc
    try:
        manifest = json.loads(str(raw))
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"artifact {os.fspath(path)!r} has a corrupt manifest: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or "format_version" not in manifest:
        raise CheckpointError(
            f"artifact {os.fspath(path)!r} has a malformed manifest "
            f"(expected a mapping with a format_version)"
        )
    version = manifest["format_version"]
    if version != ARTIFACT_VERSION:
        raise CheckpointError(
            f"artifact {os.fspath(path)!r} has format version {version!r}; "
            f"this build reads version {ARTIFACT_VERSION}"
        )
    if not isinstance(manifest.get("arrays"), dict):
        raise CheckpointError(
            f"artifact {os.fspath(path)!r} manifest lacks its array index"
        )
    return manifest


def load_artifact(
    path: str | os.PathLike, *, kind: str | None = None
) -> tuple[dict[str, np.ndarray], dict]:
    """Load and validate an artifact written by :func:`save_artifact`.

    Checks, in order: the manifest parses and its version matches; the
    ``kind`` matches (when requested); the stored arrays are exactly the
    manifest's index, shape- and dtype-exact.  Any violation raises
    :class:`CheckpointError`.  Returns ``(arrays, manifest)``.
    """
    manifest = read_manifest(path)
    if kind is not None and manifest.get("kind") != kind:
        raise CheckpointError(
            f"artifact {os.fspath(path)!r} is of kind "
            f"{manifest.get('kind')!r}, expected {kind!r}"
        )
    arrays = load_arrays(path)
    declared = manifest["arrays"]
    missing = set(declared) - set(arrays)
    unexpected = set(arrays) - set(declared)
    if missing or unexpected:
        raise CheckpointError(
            f"artifact {os.fspath(path)!r} does not match its manifest: "
            f"missing={sorted(missing)} unexpected={sorted(unexpected)}"
        )
    for name, spec in declared.items():
        array = arrays[name]
        if list(array.shape) != list(spec.get("shape", [])) or str(
            array.dtype
        ) != spec.get("dtype"):
            raise CheckpointError(
                f"artifact {os.fspath(path)!r} array {name!r}: stored "
                f"shape={list(array.shape)} dtype={array.dtype} but manifest "
                f"declares shape={spec.get('shape')} dtype={spec.get('dtype')}"
            )
    return arrays, manifest
