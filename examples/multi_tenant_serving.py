"""Multi-tenant adapter serving: one engine, many named adapters.

Three tenants share one ``MultiTenantEngine``: a merged static-LoRA
tenant and two MetaLoRA seed-slot tenants that share a backbone but
carry tenant-specific mapping networks.  The walkthrough covers the
full lifecycle — register, heterogeneous ``serve`` (seed-slot tenants
stack into shared extractor/body runs), the queued ``enqueue`` path,
hot-swapping a retrained tenant, checkpoint-based registration, and
the per-tenant metrics the engine exports.  Everything speaks the typed
``ServeRequest``/``ServeResult`` surface (see docs/serving.md).

Run:  python examples/multi_tenant_serving.py   (~30 s)
"""

import tempfile

import numpy as np

from repro.models import FeatureExtractor, resnet_small
from repro.peft import MetaLoRAModel, attach, save_adapter
from repro.serve import MultiTenantEngine, ServeRequest, build_engine
from repro.utils.rng import new_rng

NUM_CLASSES = 4


def randomize_zeros(model, rng):
    """B-side factors start at zero (identity adapters); give them life."""
    for param in model.parameters():
        if not np.any(param.data):
            param.data[...] = (rng.normal(size=param.data.shape) * 0.2).astype(
                param.data.dtype
            )


def static_tenant():
    """A merged-LoRA tenant: the adapter bakes into the base weights."""
    backbone = resnet_small(NUM_CLASSES, new_rng(0))
    result = attach(backbone, "lora", rank=2, rng=new_rng(1))
    randomize_zeros(backbone, np.random.default_rng(2))
    return result


def seed_slot_tenant(mapping_seed=None):
    """A MetaLoRA tenant.  Identical construction seeds mean identical
    backbone/extractor weights, so tenants built this way share compiled
    extractor and body programs; ``mapping_seed`` perturbs only the
    mapping net — what a tenant-specific fine-tune produces."""
    backbone = resnet_small(NUM_CLASSES, new_rng(10))
    result = attach(backbone, "meta_tr", rank=2, rng=new_rng(11))
    extractor = FeatureExtractor(resnet_small(NUM_CLASSES, new_rng(12)))
    model = MetaLoRAModel(backbone, extractor, rng=new_rng(13), adapters=result)
    randomize_zeros(model, np.random.default_rng(14))
    if mapping_seed is not None:
        rng = np.random.default_rng(mapping_seed)
        model.trunk.weight.data[...] += rng.normal(
            size=model.trunk.weight.data.shape
        ) * 0.05
        for head in model.heads:
            head.weight.data[...] += rng.normal(size=head.weight.data.shape) * 0.05
    return model


def main() -> None:
    static = static_tenant()
    meta_a = seed_slot_tenant()
    meta_b = seed_slot_tenant(mapping_seed=7)
    images = np.random.default_rng(3).normal(size=(4, 3, 16, 16)).astype(np.float32)

    # Per-tenant single engines: the bit-identity reference.  Chunked one
    # row at a time to match the one-row-per-tenant batches served below —
    # the meta mapping net is batch-composition sensitive, which is exactly
    # why the multi-tenant engine runs it per-tenant rather than stacked.
    reference = {}
    for name, source in (("acme", static), ("globex", meta_a), ("initech", meta_b)):
        with build_engine(source, cache_size=0) as single:
            reference[name] = np.stack(
                [
                    single.serve(ServeRequest(sample=sample)).require()
                    for sample in images
                ]
            )

    engine = MultiTenantEngine()
    engine.register("acme", static)  # static LoRA: merged, adapter-free program
    engine.register("globex", meta_a)  # seed-slot tenant
    engine.register("initech", meta_b)  # shares globex's extractor/body programs
    print(f"registered tenants: {engine.adapters()}")

    globex, initech = engine.registry.get("globex"), engine.registry.get("initech")
    print(f"seed-slot tenants share a body program: {globex.body is initech.body}")

    # Heterogeneous dispatch: one call, three tenants.  Seed-slot rows
    # stack into shared extractor/body runs; outputs stay bit-identical
    # to the per-tenant engines.
    tenants = ("acme", "globex", "initech")
    requests = [
        ServeRequest(sample=images[index], adapter=name)
        for index, name in enumerate(tenants)
    ]
    results = engine.serve(requests)
    for index, (name, result) in enumerate(zip(tenants, results)):
        assert result.ok and np.array_equal(result.require(), reference[name][index])
    print("serve: grouped rows bit-identical to per-tenant engines")

    # The queued path: enqueue() resolves each request to a future
    # ServeResult and coalesces requests across tenants into
    # heterogeneous micro-batches.
    futures = [
        engine.enqueue(ServeRequest(sample=images[index], adapter=name))
        for index, name in enumerate(tenants)
    ]
    for index, (name, future) in enumerate(zip(tenants, futures)):
        result = future.result(timeout=10.0)
        assert np.array_equal(result.require(), reference[name][index])
    print("enqueue: queued rows bit-identical too")

    # Hot swap: retrain globex (new mapping weights), swap it in live.
    probe = ServeRequest(sample=images[0], adapter="globex")
    before = engine.serve(probe).require()
    engine.swap("globex", seed_slot_tenant(mapping_seed=99))
    after = engine.serve(probe).require()
    print(f"hot swap changed globex's output: {not np.array_equal(before, after)} "
          f"(entry version {engine.registry.get('globex').version})")

    # Checkpoint-based registration: adapter file -> serving tenant.
    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/initech.npz"
        save_adapter(meta_b, path)
        target = seed_slot_tenant()  # same shapes, pre-restore weights
        engine.registry.register_checkpoint("initech", target, path, replace=True)
    print("re-registered initech from its checkpoint file")

    stats = engine.stats()
    cache_hits = stats.get("serve.program_cache.hit", {}).get("calls", 0)
    print(f"program cache hits from cross-tenant sharing: {cache_hits}")
    for name in ("serve.requests", "serve.requests{tenant=globex}",
                 "serve.registry.swap"):
        if name in stats:
            print(f"  {name}: {stats[name]['calls']}")
    engine.close()


if __name__ == "__main__":
    main()
