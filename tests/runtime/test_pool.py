"""Tests for the generic cell pool: determinism, fallback, crash isolation.

The worker functions live at module level so they pickle for the
``fork`` pool — the same constraint real cell functions are under.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigError, WorkerError
from repro.perf import FLAGS
from repro.runtime import (
    CellFailure,
    fork_available,
    raise_failures,
    resolve_jobs,
    run_cells,
)
from repro.utils.profiling import PROFILER

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


def _double(x):
    return 2 * x


def _boom(x):
    if x == 2:
        raise ValueError(f"boom on {x}")
    return 10 * x


def _pid(_):
    return os.getpid()


def _flags(_):
    return FLAGS.backward_release, FLAGS.backward_inplace_accum


def _marker(_):
    PROFILER.record("pooltest.marker", 0.5, nbytes=10)
    return True


class TestRunCells:
    def test_serial_values_in_input_order(self):
        results = run_cells(_double, [3, 1, 2], jobs=1)
        assert [r.key for r in results] == [3, 1, 2]
        assert [r.value for r in results] == [6, 2, 4]
        assert all(r.ok and r.seconds >= 0 for r in results)

    @needs_fork
    def test_parallel_matches_serial(self):
        serial = [r.value for r in run_cells(_double, list(range(8)), jobs=1)]
        parallel = [r.value for r in run_cells(_double, list(range(8)), jobs=2)]
        assert serial == parallel

    @needs_fork
    def test_parallel_runs_in_worker_processes(self):
        pids = {r.value for r in run_cells(_pid, [1, 2, 3, 4], jobs=2)}
        assert os.getpid() not in pids

    def test_serial_runs_in_process(self):
        pids = {r.value for r in run_cells(_pid, [1, 2, 3, 4], jobs=1)}
        assert pids == {os.getpid()}

    def test_single_cell_skips_the_pool(self):
        # One cell never justifies a fork, whatever --jobs says.
        results = run_cells(_pid, [1], jobs=4)
        assert results[0].value == os.getpid()

    def test_explicit_keys_label_results(self):
        results = run_cells(_double, [10, 20], jobs=1, keys=[("a", 0), ("a", 1)])
        assert [r.key for r in results] == [("a", 0), ("a", 1)]

    def test_keys_cells_length_mismatch_raises(self):
        with pytest.raises(ConfigError, match="keys"):
            run_cells(_double, [1, 2], jobs=1, keys=[1])


class TestCrashIsolation:
    @pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
    def test_one_bad_cell_does_not_take_down_siblings(self, jobs):
        results = run_cells(_boom, [1, 2, 3], jobs=jobs)
        assert [r.ok for r in results] == [True, False, True]
        assert [r.value for r in results] == [10, None, 30]
        failure = results[1].failure
        assert isinstance(failure, CellFailure)
        assert failure.key == 2
        assert failure.error_type == "ValueError"
        assert failure.message == "boom on 2"
        assert "boom on 2" in failure.traceback  # remote traceback shipped home

    def test_raise_failures_summarizes(self):
        results = run_cells(_boom, [1, 2, 3], jobs=1)
        with pytest.raises(WorkerError, match=r"1/3 cells failed.*ValueError"):
            raise_failures(results)

    def test_raise_failures_is_noop_on_success(self):
        raise_failures(run_cells(_double, [1, 2], jobs=1))


class TestJobsResolution:
    def test_none_means_cpu_count(self):
        import multiprocessing

        assert resolve_jobs(None) == multiprocessing.cpu_count()

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("jobs", [0, -1, -8])
    def test_below_one_rejected(self, jobs):
        with pytest.raises(ConfigError, match="jobs must be >= 1"):
            resolve_jobs(jobs)


class TestPerfAndProfiler:
    @pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
    def test_perf_overrides_scoped_to_the_cell(self, jobs):
        assert FLAGS.backward_release is False  # default outside the cells
        results = run_cells(
            _flags, [1, 2], jobs=jobs, perf={"backward_release": True}
        )
        assert [r.value for r in results] == [(True, True), (True, True)]
        assert FLAGS.backward_release is False  # restored after the grid

    @needs_fork
    def test_worker_profiler_counters_merge_into_parent(self):
        PROFILER.reset()
        PROFILER.enable()
        try:
            run_cells(_marker, [1, 2], jobs=2)
            counters = PROFILER.as_dict()
        finally:
            PROFILER.disable()
            PROFILER.reset()
        assert counters["pooltest.marker"]["calls"] == 2
        assert counters["pooltest.marker"]["seconds"] == pytest.approx(1.0)

    def test_disabled_profiler_stays_clean(self):
        PROFILER.reset()
        run_cells(_marker, [1, 2], jobs=1)
        assert "pooltest.marker" not in PROFILER.as_dict()
