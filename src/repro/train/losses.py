"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.autograd.ops import log_softmax
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``labels`` under ``logits``.

    ``labels`` are constants (no gradient), so they are accepted as a raw
    integer array rather than a Tensor.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, classes) logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
        )
    if labels.min() < 0 or labels.max() >= logits.shape[1]:
        raise ShapeError(
            f"labels out of range [0, {logits.shape[1]}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error against a constant target."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(np.asarray(target))
    diff = prediction - target_tensor
    return (diff * diff).mean()
