"""Activation layers (thin module wrappers over the functional ops)."""

from __future__ import annotations

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.gelu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)
