"""Array checkpointing.

Model state is a flat mapping of parameter names to numpy arrays; it is
persisted as a compressed ``.npz`` archive, the simplest portable format
that round-trips dtype and shape exactly.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np


def save_arrays(path: str | os.PathLike, arrays: Mapping[str, np.ndarray]) -> None:
    """Write ``arrays`` to ``path`` as a compressed npz archive."""
    if not arrays:
        raise ValueError("refusing to save an empty state dict")
    np.savez_compressed(path, **{name: np.asarray(a) for name, a in arrays.items()})


def load_arrays(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load an archive written by :func:`save_arrays`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}
