"""The unified serving request/response surface (``repro.serve.api``).

One typed pair — :class:`ServeRequest` in, :class:`ServeResult` out —
is the contract for *every* way work reaches the serving layer:

- ``MultiTenantEngine.serve(request)`` / ``serve([requests])`` — the
  synchronous path (replaces ``embed`` and ``dispatch``);
- ``MultiTenantEngine.enqueue(request)`` — the micro-batched queue path
  (replaces ``submit``), resolving to a ``Future[ServeResult]``;
- the asyncio TCP frontend (:mod:`repro.serve.frontend`) decodes each
  wire frame into a ``ServeRequest`` and encodes the ``ServeResult``
  back;
- the load generator (:mod:`repro.serve.loadgen`) emits the same
  requests it would send over the wire.

The old call forms (``embed(images, adapter)``, ``submit(sample,
adapter)``, ``dispatch(pairs)``) survive as thin shims that emit
``DeprecationWarning`` and delegate — pinned bit-identical by
``tests/serve/test_api.py``.

Requests carry the scheduling contract, not just the payload:

- ``deadline`` is a *relative* SLO budget in seconds, measured from the
  request's creation (``created_at``, a ``perf_counter`` stamp).  A
  request whose budget has lapsed by the time a batch is formed is
  answered with :data:`DEADLINE_MISSED` and never touches a kernel.
- ``priority`` orders admission-queue draining (higher first); ties
  break earliest-deadline-first, then arrival order.

Results never raise from inside the serving loop: kernel failures,
evicted tenants and missed deadlines come back as a ``ServeResult``
whose ``status`` says what happened.  ``ServeResult.require()`` is the
one-liner for callers that want the old raise-on-failure behavior.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServeError

__all__ = [
    "DEADLINE_MISSED",
    "ERROR",
    "OK",
    "REJECTED",
    "STATUSES",
    "ServeRequest",
    "ServeResult",
    "Timings",
    "ingest_sample",
]

#: Request served; ``embedding`` holds the row (or batch of rows).
OK = "ok"
#: Admission control refused the request (bounded queue full) — the
#: 429-style outcome; nothing was computed.
REJECTED = "rejected"
#: The request's SLO budget lapsed before a batch picked it up.
DEADLINE_MISSED = "deadline_missed"
#: The serving pipeline failed (evicted tenant, kernel error, shutdown).
ERROR = "error"

#: Every status a :class:`ServeResult` may carry.
STATUSES = (OK, REJECTED, DEADLINE_MISSED, ERROR)


def ingest_sample(sample: object) -> np.ndarray:
    """Mirror ``Tensor.__init__``'s dtype policy for raw request payloads."""
    array = np.asarray(sample)
    if not np.issubdtype(array.dtype, np.floating):
        array = array.astype(np.float32)
    return array


@dataclass
class Timings:
    """Where one request's wall-clock went, in seconds.

    ``queue_seconds`` is creation → start of its batch's execution;
    ``run_seconds`` the compiled-program time of the batch that served
    it (shared across the batch, not divided); ``total_seconds``
    creation → result.  All zero for cache hits and rejections.
    """

    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    total_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "queue_seconds": float(self.queue_seconds),
            "run_seconds": float(self.run_seconds),
            "total_seconds": float(self.total_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Timings":
        return cls(
            queue_seconds=float(payload.get("queue_seconds", 0.0)),
            run_seconds=float(payload.get("run_seconds", 0.0)),
            total_seconds=float(payload.get("total_seconds", 0.0)),
        )


@dataclass
class ServeRequest:
    """One unit of serving work plus its scheduling contract.

    ``sample`` is one image ``(C, H, W)`` or a batch ``(N, C, H, W)``
    (the bulk form; queue paths accept singles only, since batching is
    *their* job).  ``adapter`` names the tenant; ``None`` is allowed
    only where a default tenant exists (``EmbeddingEngine``).
    """

    sample: np.ndarray
    adapter: str | None = None
    deadline: float | None = None
    priority: int = 0
    created_at: float = field(default_factory=time.perf_counter)

    def __post_init__(self) -> None:
        self.sample = ingest_sample(self.sample)
        if self.sample.ndim not in (3, 4):
            raise ServeError(
                f"ServeRequest.sample must be (C, H, W) or (N, C, H, W), "
                f"got shape {self.sample.shape}"
            )
        if self.deadline is not None:
            self.deadline = float(self.deadline)
            if self.deadline <= 0:
                raise ServeError(
                    f"ServeRequest.deadline must be a positive SLO budget in "
                    f"seconds, got {self.deadline}"
                )
        self.priority = int(self.priority)

    @property
    def batched(self) -> bool:
        """Whether ``sample`` is a batch (the bulk form)."""
        return self.sample.ndim == 4

    def deadline_at(self) -> float:
        """Absolute ``perf_counter`` deadline (``inf`` when none was set)."""
        if self.deadline is None:
            return float("inf")
        return self.created_at + self.deadline

    def expired(self, now: float | None = None) -> bool:
        """Whether the SLO budget has lapsed."""
        if self.deadline is None:
            return False
        return (time.perf_counter() if now is None else now) > self.deadline_at()


@dataclass
class ServeResult:
    """The outcome of one :class:`ServeRequest`.

    ``embedding`` is the served row(s) when ``status`` is :data:`OK`,
    else ``None``; ``error`` carries the human-readable reason for any
    non-:data:`OK` status.
    """

    embedding: np.ndarray | None = None
    status: str = OK
    timings: Timings = field(default_factory=Timings)
    error: str | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ServeError(
                f"ServeResult.status must be one of {STATUSES}, got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status == OK

    def require(self) -> np.ndarray:
        """The embedding, or a typed :class:`ServeError` explaining why not."""
        if not self.ok or self.embedding is None:
            raise ServeError(
                f"request was not served (status={self.status}): "
                f"{self.error or 'no embedding'}"
            )
        return self.embedding

    @classmethod
    def failure(cls, status: str, error: str, timings: Timings | None = None) -> "ServeResult":
        return cls(
            embedding=None,
            status=status,
            timings=timings if timings is not None else Timings(),
            error=error,
        )
