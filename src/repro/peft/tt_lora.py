"""TT-LoRA baseline (the LoRETTA / TT-LoRA family of Sec. I).

The weight update is held in Tensor-Train format over a reshaped weight
grid: ``ΔW`` viewed as ``(I₁, I₂, O₁, O₂)`` with ``I = I₁·I₂`` and
``O = O₁·O₂`` is parameterized by four TT cores.  Static (no meta
generation) — included so the tensorized-LoRA family the paper competes
with is available as a baseline and in the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.ops import einsum
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.peft.base import Adapter
from repro.tensornet.tensor_train import factorize_dim


class TTLoRALinear(Adapter):
    """TT-factorized weight update for a frozen linear layer.

    Cores: ``G1 (1, I₁, R)``, ``G2 (R, I₂, R)``, ``G3 (R, O₁, R)``,
    ``G4 (R, O₂, 1)``.  The last core is zero-initialized so the adapter
    starts as the identity, matching the LoRA convention.
    """

    def __init__(
        self,
        base: Linear,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(f"TTLoRALinear wraps Linear, got {type(base).__name__}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.scaling = float(alpha if alpha is not None else rank) / rank
        self.in_grid = factorize_dim(base.in_features, 2)
        self.out_grid = factorize_dim(base.out_features, 2)
        i1, i2 = self.in_grid
        o1, o2 = self.out_grid
        std = 0.02
        self.core1 = Parameter(init.normal(rng, (1, i1, rank), std=std))
        self.core2 = Parameter(init.normal(rng, (rank, i2, rank), std=std))
        self.core3 = Parameter(init.normal(rng, (rank, o1, rank), std=std))
        self.core4 = Parameter(init.zeros((rank, o2, 1)))

    def delta_weight(self) -> np.ndarray:
        """Materialize ΔW ∈ R^{I×O} from the TT cores."""
        grid = np.einsum(
            "xay,ybz,zcw,wdv->abcd",
            self.core1.data,
            self.core2.data,
            self.core3.data,
            self.core4.data,
        )
        i1, i2 = self.in_grid
        o1, o2 = self.out_grid
        return grid.reshape(i1 * i2, o1 * o2) * self.scaling

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        squeeze = x.ndim == 2
        x3 = x.reshape(x.shape[0], 1, x.shape[1]) if squeeze else x
        i1, i2 = self.in_grid
        # Contract the input against the TT chain without materializing ΔW.
        x_grid = x3.reshape(x3.shape[0], x3.shape[1], i1, i2)
        g1 = self.core1.reshape(i1, self.rank)  # (1, I1, R) -> (I1, R)
        t = einsum("ntab,ay->ntby", x_grid, g1)  # (N, T, I2, R)
        t = einsum("ntby,ybz->ntz", t, self.core2)  # (N, T, R)
        t = einsum("ntz,zcw->ntcw", t, self.core3)  # (N, T, O1, R)
        g4 = self.core4.reshape(self.rank, self.out_grid[1])  # (R, O2)
        delta = einsum("ntcw,wd->ntcd", t, g4)  # (N, T, O1, O2)
        delta = delta.reshape(x3.shape[0], x3.shape[1], self.base.out_features)
        delta = delta * self.scaling
        if squeeze:
            delta = delta.reshape(x.shape[0], self.base.out_features)
        return out + delta

    def extra_parameter_count(self) -> int:
        return sum(
            core.size for core in (self.core1, self.core2, self.core3, self.core4)
        )
