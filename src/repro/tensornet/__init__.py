"""Tensor-network substrate: contraction, CP, Tensor Ring, Tucker, dummy
tensors and tensor-network graphs.

This package implements the mathematical machinery of Sections II and III
of the paper: generalized tensor contraction (Eq. 1), the dummy-tensor
representation of convolution (Eq. 2, Fig. 2), the CP format (Eqs. 3–4),
the Tensor Ring format, and graph-structured tensor networks with greedy
contraction planning (Fig. 1).
"""

from repro.tensornet.contraction import (
    contract,
    fold,
    mode_product,
    unfold,
)
from repro.tensornet.cp import (
    CPTensor,
    cp_decompose,
    cp_to_tensor,
    random_cp,
)
from repro.tensornet.tensor_ring import (
    TRTensor,
    tr_decompose,
    tr_to_tensor,
    random_tr,
)
from repro.tensornet.tensor_train import (
    TTTensor,
    factorize_dim,
    random_tt,
    tt_decompose,
    tt_to_tensor,
)
from repro.tensornet.rank_selection import (
    suggest_adapter_rank,
    tr_decompose_adaptive,
    tt_decompose_adaptive,
)
from repro.tensornet.tucker import TuckerTensor, tucker_decompose, tucker_to_tensor
from repro.tensornet.dummy import (
    conv1d_direct,
    conv1d_via_dummy,
    conv2d_via_dummy,
    dummy_tensor,
)
from repro.tensornet.network import TensorNetwork
from repro.tensornet.diagrams import render_diagram

__all__ = [
    "CPTensor",
    "TRTensor",
    "TTTensor",
    "TensorNetwork",
    "TuckerTensor",
    "factorize_dim",
    "random_tt",
    "suggest_adapter_rank",
    "tr_decompose_adaptive",
    "tt_decompose",
    "tt_decompose_adaptive",
    "tt_to_tensor",
    "contract",
    "conv1d_direct",
    "conv1d_via_dummy",
    "conv2d_via_dummy",
    "cp_decompose",
    "cp_to_tensor",
    "dummy_tensor",
    "fold",
    "mode_product",
    "random_cp",
    "random_tr",
    "render_diagram",
    "tr_decompose",
    "tr_to_tensor",
    "tucker_decompose",
    "tucker_to_tensor",
    "unfold",
]
