"""Tests for the KNN classifier."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import KNNClassifier


def two_blobs(rng, n=40, dim=8, gap=6.0):
    a = rng.normal(size=(n, dim)) + gap
    b = rng.normal(size=(n, dim)) - gap
    x = np.concatenate([a, b])
    y = np.concatenate([np.zeros(n, np.int64), np.ones(n, np.int64)])
    return x, y


class TestKNN:
    def test_separable_blobs_perfect(self, rng):
        x, y = two_blobs(rng)
        knn = KNNClassifier(metric="euclidean").fit(x, y)
        assert knn.score(x, y, k=5) == 1.0

    def test_cosine_metric(self, rng):
        # Classes separated by direction, not magnitude.
        a = np.abs(rng.normal(size=(30, 4))) * [1, 1, 0.01, 0.01]
        b = np.abs(rng.normal(size=(30, 4))) * [0.01, 0.01, 1, 1]
        x = np.concatenate([a, b])
        y = np.concatenate([np.zeros(30, np.int64), np.ones(30, np.int64)])
        knn = KNNClassifier(metric="cosine").fit(x, y)
        assert knn.score(x, y, k=5) == 1.0

    def test_k_larger_than_support_clamped(self, rng):
        x, y = two_blobs(rng, n=3)
        knn = KNNClassifier().fit(x, y)
        predictions = knn.predict(x, k=100)
        assert predictions.shape == (6,)

    def test_k1_nearest_neighbour_on_train_is_self(self, rng):
        x, y = two_blobs(rng, n=10)
        knn = KNNClassifier(metric="euclidean").fit(x, y)
        assert np.array_equal(knn.predict(x, k=1), y)

    def test_majority_vote(self):
        # 3 supports of class 0 near origin, 2 of class 1 slightly closer.
        support = np.array([[1.0], [1.1], [1.2], [0.8], [0.9]])
        labels = np.array([0, 0, 0, 1, 1])
        knn = KNNClassifier(metric="euclidean").fit(support, labels)
        assert knn.predict(np.array([[1.0]]), k=5)[0] == 0

    def test_tie_broken_by_distance(self):
        support = np.array([[0.0], [0.2], [10.0], [10.2]])
        labels = np.array([0, 0, 1, 1])
        knn = KNNClassifier(metric="euclidean").fit(support, labels)
        # k=4: two votes each; class 0 is much closer.
        assert knn.predict(np.array([[0.1]]), k=4)[0] == 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(EvaluationError):
            KNNClassifier().predict(np.zeros((1, 2)), k=1)

    def test_invalid_metric(self):
        with pytest.raises(EvaluationError):
            KNNClassifier(metric="manhattan")

    def test_invalid_k(self, rng):
        x, y = two_blobs(rng, n=5)
        knn = KNNClassifier().fit(x, y)
        with pytest.raises(EvaluationError):
            knn.predict(x, k=0)

    def test_fit_validation(self, rng):
        with pytest.raises(EvaluationError):
            KNNClassifier().fit(np.zeros((3, 2, 2)), np.zeros(3))
        with pytest.raises(EvaluationError):
            KNNClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    def test_noisy_clusters_degrade_with_large_k(self, rng):
        """With small class counts, K > class size forces errors —
        the effect behind the K=5 vs K=10 columns of Table I."""
        x = rng.normal(size=(12, 4))
        y = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3])
        knn = KNNClassifier(metric="euclidean").fit(x, y)
        acc_k3 = knn.score(x, y, k=3)
        acc_k12 = knn.score(x, y, k=12)
        assert acc_k12 <= acc_k3
