"""Tests for the Tensor Train format and factorize_dim."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensornet import (
    TTTensor,
    factorize_dim,
    random_tt,
    tt_decompose,
    tt_to_tensor,
)


class TestTTTensor:
    def test_shape_and_ranks(self, rng):
        tt = random_tt((3, 4, 5), 2, rng)
        assert tt.shape == (3, 4, 5)
        assert tt.ranks == (2, 2)

    def test_boundary_ranks_enforced(self, rng):
        with pytest.raises(ShapeError, match="boundary"):
            TTTensor(cores=[rng.normal(size=(2, 3, 1))])

    def test_chain_continuity_enforced(self, rng):
        cores = [rng.normal(size=(1, 3, 2)), rng.normal(size=(3, 4, 1))]
        with pytest.raises(ShapeError, match="chain broken"):
            TTTensor(cores=cores)

    def test_single_mode(self, rng):
        tt = TTTensor(cores=[rng.normal(size=(1, 5, 1))])
        assert tt_to_tensor(tt).shape == (5,)

    def test_parameter_count(self, rng):
        tt = random_tt((3, 4), 2, rng)
        assert tt.parameter_count() == 1 * 3 * 2 + 2 * 4 * 1


class TestTTDecompose:
    def test_exact_roundtrip(self, rng):
        target = tt_to_tensor(random_tt((4, 5, 6), 2, rng))
        est = tt_decompose(target, max_rank=30)
        assert np.allclose(tt_to_tensor(est), target, atol=1e-8)

    def test_rank_respected(self, rng):
        est = tt_decompose(rng.normal(size=(5, 5, 5)), max_rank=2)
        assert all(r <= 2 for r in est.ranks)

    def test_vector_passthrough(self, rng):
        v = rng.normal(size=7)
        est = tt_decompose(v, max_rank=3)
        assert np.allclose(tt_to_tensor(est), v)

    def test_truncation_monotone(self, rng):
        target = rng.normal(size=(6, 6, 6))
        errors = [
            np.linalg.norm(tt_to_tensor(tt_decompose(target, max_rank=r)) - target)
            for r in (1, 3, 6)
        ]
        assert errors[0] >= errors[1] >= errors[2]

    def test_invalid_rank(self, rng):
        with pytest.raises(ShapeError):
            tt_decompose(rng.normal(size=(3, 3)), max_rank=0)


class TestFactorizeDim:
    def test_exact_products(self):
        for dim in (4, 12, 30, 64, 100, 7):
            for parts in (1, 2, 3):
                factors = factorize_dim(dim, parts)
                assert len(factors) == parts
                assert int(np.prod(factors)) == dim

    def test_balanced_split(self):
        assert factorize_dim(12, 2) == (4, 3)
        assert factorize_dim(64, 2) == (8, 8)

    def test_prime_goes_to_one_factor(self):
        assert factorize_dim(7, 2) == (7, 1)

    def test_validation(self):
        with pytest.raises(ShapeError):
            factorize_dim(0, 2)
        with pytest.raises(ShapeError):
            factorize_dim(4, 0)
