"""Shared utilities: seeded RNG, registries, serialization, timing."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.registry import Registry
from repro.utils.serialization import load_arrays, save_arrays
from repro.utils.timing import Timer
from repro.utils.logging import enable_console_logging, get_logger

__all__ = [
    "Registry",
    "RngMixin",
    "Timer",
    "enable_console_logging",
    "get_logger",
    "load_arrays",
    "new_rng",
    "save_arrays",
    "spawn_rngs",
]
