"""Backbone architectures: ResNet, MLP-Mixer, and the frozen feature extractor."""

from repro.models.resnet import BasicBlock, ResNet, resnet_small
from repro.models.mlp_mixer import MixerBlock, MLPMixer, mixer_small
from repro.models.tiny_vit import MultiHeadSelfAttention, TinyViT, TransformerBlock, vit_small
from repro.models.feature_extractor import FeatureExtractor

__all__ = [
    "BasicBlock",
    "FeatureExtractor",
    "MLPMixer",
    "MixerBlock",
    "MultiHeadSelfAttention",
    "ResNet",
    "TinyViT",
    "TransformerBlock",
    "mixer_small",
    "resnet_small",
    "vit_small",
]
