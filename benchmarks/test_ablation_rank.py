"""Ablation bench: rank vs adaptability/efficiency (Sec. VI's open question).

The paper's discussion asks how to balance "enhanced adaptability and
preserved parameter efficiency".  This bench sweeps the adapter rank for
the static and meta variants at reduced protocol scale and reports KNN
accuracy next to the trainable-parameter count — the empirical trade-off
curve behind DESIGN.md's ablation entry.

At the default quick scale a single (small) seed is used; set
REPRO_BENCH_SCALE=paper for the full sweep.  REPRO_BENCH_JOBS=N shards
the rank cells over N worker processes (each rank is an independent cell
keyed by its own config, so sharding is bit-identical to the serial loop).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import PAPER
from repro.eval.protocol import build_adapted_model, run_table1
from repro.runtime import raise_failures, run_cells
from repro.utils.rng import new_rng


def _sweep_config(scale: str):
    ranks = (1, 2, 4) if scale == "quick" else (1, 2, 4, 8)
    base = replace(
        PAPER,
        methods=("lora", "meta_lora_tr"),
        num_tasks=7 if scale == "quick" else PAPER.num_tasks,
        adapt_episodes=100 if scale == "quick" else PAPER.adapt_episodes,
        support_per_task=32 if scale == "quick" else PAPER.support_per_task,
        query_per_task=32 if scale == "quick" else PAPER.query_per_task,
        pretrain_epochs=4 if scale == "quick" else PAPER.pretrain_epochs,
    )
    return base, ranks


def _pretrained_state(config):
    from repro.eval.protocol import build_backbone

    return build_backbone(config, new_rng(1)).state_dict()


def _rank_cell(config):
    """One ablation cell: Table I rows + meta parameter budget at one rank.

    Module-level so the cell pickles for REPRO_BENCH_JOBS>1 worker pools.
    """
    rows = run_table1(config, seed=0)
    meta_model = build_adapted_model(
        "meta_lora_tr", config, _pretrained_state(config), new_rng(0)
    )
    return rows, meta_model.parameter_count(trainable_only=True)


@pytest.mark.benchmark(group="ablation")
def test_ablation_rank_sweep(benchmark, scale, jobs):
    base, ranks = _sweep_config(scale)

    def run():
        cell_results = run_cells(
            _rank_cell,
            [replace(base, rank=rank) for rank in ranks],
            jobs=jobs,
            keys=list(ranks),
        )
        raise_failures(cell_results)
        return {result.key: result.value for result in cell_results}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'rank':>4}  {'LoRA K=5':>9}  {'MetaTR K=5':>11}  {'meta trainable':>14}")
    for rank, (rows, trainable) in results.items():
        print(
            f"{rank:>4}  {100 * rows['lora'].accuracy_by_k[5]:>8.1f}%  "
            f"{100 * rows['meta_lora_tr'].accuracy_by_k[5]:>10.1f}%  {trainable:>14,}"
        )
    # Parameter cost must grow with rank (the efficiency side of the trade).
    budgets = [results[rank][1] for rank in results]
    assert all(b > a for a, b in zip(budgets, budgets[1:]))
