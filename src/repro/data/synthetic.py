"""Procedural image generator.

Each class ``c`` of ``num_classes`` is an oriented sinusoidal grating
(orientation ``π·c / num_classes``) with a *random phase per sample*, plus
a class-positioned Gaussian blob whose center jitters per sample — spatial
structure a small CNN or mixer can learn, but with enough nuisance
variation that embeddings are not trivially separable.  A task renders the
grayscale pattern into 3 channels along its color direction (after adding
its orientation offset and spatial shift), adds its tint, and corrupts
with noise.  See :mod:`repro.data.tasks` for why this induces the
multi-task phenomenon Table I studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tasks import TaskSpec
from repro.errors import DataError


@dataclass
class SyntheticTaskData:
    """One task's sampled dataset."""

    task_id: int
    images: np.ndarray  # (N, 3, H, W) float32
    labels: np.ndarray  # (N,) int64

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise DataError(
                f"images ({self.images.shape[0]}) and labels "
                f"({self.labels.shape[0]}) disagree"
            )

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    def split(self, first: int) -> tuple["SyntheticTaskData", "SyntheticTaskData"]:
        """Split into the first ``first`` samples and the remainder."""
        if not 0 < first < len(self):
            raise DataError(f"split point {first} out of range for {len(self)} samples")
        head = SyntheticTaskData(self.task_id, self.images[:first], self.labels[:first])
        tail = SyntheticTaskData(self.task_id, self.images[first:], self.labels[first:])
        return head, tail


def _class_pattern(
    label: int,
    num_classes: int,
    size: int,
    orientation_offset: float,
    phase: float,
    blob_jitter: tuple[float, float],
) -> np.ndarray:
    """Grayscale pattern for one sample of class ``label``."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64) / size
    angle = np.pi * label / num_classes + orientation_offset
    frequency = 3.0
    grating = np.sin(
        2 * np.pi * frequency * (xs * np.cos(angle) + ys * np.sin(angle)) + phase
    )
    theta = 2 * np.pi * label / num_classes
    cx = 0.5 + 0.3 * np.cos(theta) + blob_jitter[0]
    cy = 0.5 + 0.3 * np.sin(theta) + blob_jitter[1]
    blob = np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2) / 0.02))
    return (grating + blob).astype(np.float32)


def generate_task_data(
    task: TaskSpec,
    num_samples: int,
    num_classes: int,
    image_size: int,
    rng: np.random.Generator,
) -> SyntheticTaskData:
    """Sample ``num_samples`` labeled images rendered in ``task``'s style."""
    if num_samples <= 0:
        raise DataError(f"num_samples must be positive, got {num_samples}")
    if num_classes <= 1:
        raise DataError(f"need at least 2 classes, got {num_classes}")

    labels = rng.integers(0, num_classes, size=num_samples).astype(np.int64)
    direction = task.color_vector()
    tint = task.tint_vector()

    images = np.empty((num_samples, 3, image_size, image_size), dtype=np.float32)
    for i, label in enumerate(labels):
        phase = float(rng.uniform(0.0, 2 * np.pi))
        jitter = (float(rng.normal(0.0, 0.05)), float(rng.normal(0.0, 0.05)))
        gray = _class_pattern(
            int(label), num_classes, image_size, task.orientation_offset, phase, jitter
        )
        contrast = 1.0 + 0.2 * rng.normal()
        gray = contrast * gray + task.noise_level * rng.normal(size=gray.shape).astype(
            np.float32
        )
        gray = np.roll(gray, task.shift, axis=(0, 1))
        color = direction[:, None, None] * gray[None]
        color = color + 0.5 * tint[:, None, None]
        color += task.noise_level * 0.4 * rng.normal(size=color.shape).astype(np.float32)
        images[i] = color
    return SyntheticTaskData(task_id=task.task_id, images=images, labels=labels)


def merge_tasks(datasets: list[SyntheticTaskData]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate several tasks: returns (images, labels, task_ids)."""
    if not datasets:
        raise DataError("merge_tasks needs at least one dataset")
    images = np.concatenate([d.images for d in datasets])
    labels = np.concatenate([d.labels for d in datasets])
    task_ids = np.concatenate(
        [np.full(len(d), d.task_id, dtype=np.int64) for d in datasets]
    )
    return images, labels, task_ids
