"""Process-pool sharding of the Table I experiment grid.

This module is a thin shim: the fault-tolerant grid machinery —
run-directory checkpointing, ``--resume``, retry/backoff, per-cell
timeouts, and the observability span tree — lives generically in
:mod:`repro.runtime.grid`, and :func:`run_table1_grid` mounts the Table I
protocol onto it as a :class:`~repro.runtime.grid.GridSpec`:

1. **Seed contexts** — one :class:`~repro.eval.protocol.Table1SeedContext`
   per seed: pretrain the backbone once, freeze the task splits.  Workers
   return the context to the parent, which re-ships the *shared frozen
   backbone* to every dependent cell instead of letting each cell redo
   pretraining.
2. **Cells** — one ``(seed, method)`` pair each, the independent unit of
   the paper's Table I.  Each cell derives its RNG from its key alone
   (:func:`repro.eval.protocol.method_rng`), so the grid is bit-identical
   to the serial :func:`repro.eval.protocol.run_table1` loop at any
   worker count — the property the bench harness asserts in-process.

Cells run under the autograd memory diet (``backward_release``), which is
safe because the training loops never backpropagate a graph twice, and
bit-identical because releasing graph metadata does not change numerics.

The shim is pinned bit-identical to the pre-``GridSpec`` implementation
by the resume/parallel acceptance tests (``tests/runtime/test_resume.py``,
``tests/obs/test_acceptance.py``): same span names (``table1.grid`` →
``table1.contexts`` / ``table1.cells``), same run-dir layout and manifest
kind (``table1_run``), same rows at any worker count.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError, ConfigError
from repro.eval.protocol import (
    Table1Config,
    Table1Row,
    Table1SeedContext,
    prepare_table1_seed,
    run_table1_cell,
)
from repro.runtime.grid import GridSpec, run_grid
from repro.runtime.pool import CellResult
from repro.runtime.rundir import CELL_KIND

#: Perf overrides applied around every grid cell (see module docstring).
CELL_PERF = {"backward_release": True}


@dataclass
class Table1GridResult:
    """All rows of a multi-seed Table I grid, plus per-cell diagnostics.

    ``restored`` lists the keys of cells whose rows were loaded from the
    run directory rather than recomputed (``resume=``); ``run_dir`` is
    the directory the grid persisted into, if any.
    """

    config: Table1Config
    seeds: tuple[int, ...]
    rows_by_seed: list[dict[str, Table1Row]]
    cell_results: list[CellResult] = field(default_factory=list)
    restored: list[tuple[int, str]] = field(default_factory=list)
    run_dir: str | None = None

    @property
    def failures(self) -> list:
        return [r.failure for r in self.cell_results if not r.ok]


def _prepare_seed(cell: tuple[Table1Config, int]) -> Table1SeedContext:
    config, seed = cell
    return prepare_table1_seed(config, seed)


def _run_cell(cell: tuple[Table1Config, Table1SeedContext, str]) -> Table1Row:
    config, context, method = cell
    return run_table1_cell(config, context, method)


def _encode_row(key: tuple[int, str], row: Table1Row) -> tuple[dict, dict]:
    ks = sorted(row.accuracy_by_k)
    arrays = {
        "ks": np.asarray(ks, dtype=np.int64),
        "accuracy": np.asarray(
            [row.accuracy_by_k[k] for k in ks], dtype=np.float64
        ),
    }
    return arrays, {"seed": int(key[0]), "method": key[1]}


def _decode_row(
    key: tuple[int, str], arrays: dict, meta: dict, path: str
) -> Table1Row:
    seed, method = key
    if meta.get("seed") != int(seed) or meta.get("method") != method:
        raise CheckpointError(
            f"cell artifact {path!r} claims "
            f"(seed={meta.get('seed')!r}, method={meta.get('method')!r}) "
            f"but was indexed as (seed={seed}, method={method!r})"
        )
    return Table1Row(
        method=method,
        accuracy_by_k={
            int(k): float(a) for k, a in zip(arrays["ks"], arrays["accuracy"])
        },
    )


def _table1_spec(config: Table1Config, seeds: tuple[int, ...]) -> GridSpec:
    # Built at call time so monkeypatched module globals (`_run_cell`,
    # `_prepare_seed` in tests) are honored.
    return GridSpec(
        name="table1",
        config=config,
        axes={"seeds": seeds, "methods": tuple(config.methods)},
        cell_fn=_run_cell,
        cell_payload=lambda cfg, context, key: (cfg, context, key[1]),
        artifact_kind=CELL_KIND,
        cell_filename=lambda key: f"s{int(key[0])}__{key[1]}.npz",
        encode_cell=_encode_row,
        decode_cell=_decode_row,
        context_fn=_prepare_seed,
        context_payload=lambda cfg, seed: (cfg, seed),
        context_key=lambda key: key[0],
        manifest_extra={"backbone": config.backbone},
        perf=CELL_PERF,
    )


def run_table1_grid(
    config: Table1Config,
    seeds: tuple[int, ...] | list[int],
    jobs: int = 1,
    strict: bool = True,
    *,
    out_dir: str | os.PathLike | None = None,
    resume: str | os.PathLike | None = None,
    max_retries: int = 0,
    retry_backoff: float = 0.05,
    cell_timeout: float | None = None,
    obs: bool | None = None,
) -> Table1GridResult:
    """Shard the ``seeds × config.methods`` Table I grid over ``jobs`` workers.

    Bit-identical to ``[run_table1(config, seed) for seed in seeds]`` at
    any ``jobs`` (including the ``jobs=1`` serial fallback), with or
    without a run directory.  With ``strict`` (default), any cell failure
    raises :class:`repro.errors.WorkerError` after the whole grid has
    drained; otherwise failed cells appear in ``result.cell_results`` and
    their rows are omitted.

    ``out_dir`` persists every completed cell into a run directory as it
    finishes; ``resume`` additionally loads the directory's already-
    completed cells and re-runs only the missing ones (``resume`` implies
    ``out_dir``; pointing them at different paths is an error).  Failed
    cells are retried ``max_retries`` times with deterministic
    exponential backoff, and ``cell_timeout`` arms the per-cell soft
    timeout — see :func:`repro.runtime.pool.run_cells`.

    ``obs`` turns the observability layer on (metrics + per-cell trace
    spans, exported to ``<run_dir>/trace.jsonl``); the default enables
    it exactly when the grid has a run directory to export into.
    Instrumentation is RNG-free, so the rows are bit-identical either
    way.

    All of the above is :func:`repro.runtime.grid.run_grid` semantics;
    this shim only contributes the Table I :class:`GridSpec` and the
    ``rows_by_seed`` result shape.
    """
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ConfigError("run_table1_grid needs at least one seed")

    result = run_grid(
        _table1_spec(config, seeds),
        jobs=jobs,
        strict=strict,
        out_dir=out_dir,
        resume=resume,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        cell_timeout=cell_timeout,
        obs=obs,
    )

    rows_by_seed: list[dict[str, Table1Row]] = []
    for seed in seeds:
        rows = {}
        for method in config.methods:
            row = result.values.get((seed, method))
            if row is not None:
                rows[method] = row
        rows_by_seed.append(rows)
    return Table1GridResult(
        config=config,
        seeds=seeds,
        rows_by_seed=rows_by_seed,
        cell_results=result.cell_results,
        restored=result.restored,
        run_dir=result.run_dir,
    )
