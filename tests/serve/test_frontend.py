"""The asyncio TCP frontend, its scheduler, and the wire protocol.

Integration runs over real sockets: concurrent clients across tenants,
with every dispatched micro-batch replayed through the engine directly
and asserted bit-identical.  SLO paths (queue-full rejection,
deadline-miss while queued) are driven deterministically with
``REPRO_FAULTS`` batch stalls.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.models import resnet_small
from repro.serve import (
    DEADLINE_MISSED,
    ERROR,
    OK,
    REJECTED,
    BatchScheduler,
    MultiTenantEngine,
    ServeClient,
    ServeRequest,
    ServingFrontend,
)
from tests.serve.test_registry import (
    images_for,
    meta_model,
    perturb_mapping,
    static_lora_result,
)


@pytest.fixture
def engine(rng):
    engine = MultiTenantEngine(cache_size=0)
    engine.register("solo", resnet_small(4, rng))
    yield engine
    engine.close()


def three_tenant_engine():
    """Static + two seed-slot MetaLoRA tenants (shared extractor/body)."""
    meta_b = meta_model(seed=10)
    perturb_mapping(meta_b, np.random.default_rng(7))
    engine = MultiTenantEngine(cache_size=0)
    engine.register("static", static_lora_result(0))
    engine.register("meta_a", meta_model(seed=10))
    engine.register("meta_b", meta_b)
    return engine


class TestFraming:
    def test_payload_round_trip(self, rng):
        from repro.serve.frontend import decode_payload, encode_payload

        array = images_for(rng, 2)
        assert np.array_equal(decode_payload(encode_payload(array)), array)
        assert decode_payload(encode_payload(None)) is None

    def test_frame_round_trip_over_a_socketpair(self, rng):
        from repro.serve.frontend import _read_frame_sync, encode_frame, encode_payload

        left, right = socket.socketpair()
        try:
            payload = encode_payload(images_for(rng, 1))
            left.sendall(encode_frame({"op": "serve", "id": 7}, payload))
            header, data = _read_frame_sync(right)
            assert header == {"op": "serve", "id": 7}
            assert data == payload
        finally:
            left.close()
            right.close()

    def test_oversized_segments_rejected(self):
        from repro.serve.frontend import _LEN, _read_frame_sync, MAX_SEGMENT

        left, right = socket.socketpair()
        try:
            left.sendall(_LEN.pack(MAX_SEGMENT + 1))
            with pytest.raises(ServeError, match="exceeds"):
                _read_frame_sync(right)
        finally:
            left.close()
            right.close()


class TestBatchScheduler:
    def test_invalid_knobs_rejected(self, engine):
        for kwargs in (
            {"queue_limit": 0},
            {"max_batch": 0},
            {"target_batch_seconds": 0.0},
        ):
            with pytest.raises(ServeError):
                BatchScheduler(engine, **kwargs)

    def test_queue_full_rejects_immediately(self, engine, rng):
        release = threading.Event()
        original = engine.serve

        def blocked(requests):
            release.wait(timeout=30.0)
            return original(requests)

        engine.serve = blocked
        scheduler = BatchScheduler(engine, queue_limit=2, max_batch=1)
        try:
            samples = images_for(rng, 5)
            first = scheduler.submit(ServeRequest(sample=samples[0], adapter="solo"))
            # Wait for the worker to take the first request into a (blocked)
            # batch, so the admission queue is empty again.
            deadline = time.perf_counter() + 5.0
            while scheduler.depth() > 0 and time.perf_counter() < deadline:
                time.sleep(0.005)
            queued = [
                scheduler.submit(ServeRequest(sample=sample, adapter="solo"))
                for sample in samples[1:3]
            ]
            overflow = scheduler.submit(ServeRequest(sample=samples[3], adapter="solo"))
            rejected = overflow.result(timeout=1.0)
            assert rejected.status == REJECTED
            assert "queue full" in rejected.error
            assert scheduler.stats()["serve.request.rejected"]["calls"] == 1
            release.set()
            assert first.result(timeout=10.0).ok
            assert all(f.result(timeout=10.0).ok for f in queued)
        finally:
            release.set()
            scheduler.close()

    def test_priority_orders_the_queue(self, engine, rng):
        release = threading.Event()
        original = engine.serve

        def blocked(requests):
            release.wait(timeout=30.0)
            return original(requests)

        engine.serve = blocked
        scheduler = BatchScheduler(
            engine, queue_limit=8, max_batch=1, record_batches=8
        )
        try:
            samples = images_for(rng, 3)
            futures = [scheduler.submit(ServeRequest(sample=samples[0], adapter="solo"))]
            deadline = time.perf_counter() + 5.0
            while scheduler.depth() > 0 and time.perf_counter() < deadline:
                time.sleep(0.005)
            # Queued while the worker is blocked: low priority first, then
            # high — the drain order must invert them.
            futures.append(
                scheduler.submit(ServeRequest(sample=samples[1], adapter="solo", priority=0))
            )
            futures.append(
                scheduler.submit(ServeRequest(sample=samples[2], adapter="solo", priority=5))
            )
            release.set()
            for future in futures:
                assert future.result(timeout=10.0).ok
            served = [requests[0].priority for requests, __ in scheduler.recorded]
            assert served[:3] == [0, 5, 0]  # high-priority jumped the queue
        finally:
            release.set()
            scheduler.close()

    def test_close_fails_leftovers_and_rejects_late_submits(self, engine, rng):
        release = threading.Event()
        original = engine.serve

        def blocked(requests):
            release.wait(timeout=30.0)
            return original(requests)

        engine.serve = blocked
        scheduler = BatchScheduler(engine, queue_limit=8, max_batch=1)
        samples = images_for(rng, 3)
        futures = [
            scheduler.submit(ServeRequest(sample=s, adapter="solo"))
            for s in samples
        ]
        time.sleep(0.05)
        started = time.perf_counter()
        scheduler.close(drain_timeout=0.1)
        assert time.perf_counter() - started < 5.0
        late = scheduler.submit(ServeRequest(sample=samples[0], adapter="solo"))
        assert late.result(timeout=1.0).status == REJECTED
        release.set()
        statuses = {f.result(timeout=10.0).status for f in futures}
        assert statuses <= {OK, ERROR}  # typed outcomes, nothing hangs
        assert ERROR in statuses  # the blocked queue could not fully drain

    def test_cost_model_learns_per_adapter(self, engine, rng):
        scheduler = BatchScheduler(engine, queue_limit=8)
        try:
            done = scheduler.submit(
                ServeRequest(sample=images_for(rng, 1)[0], adapter="solo")
            )
            assert done.result(timeout=10.0).ok
            costs = scheduler.sample_costs()
            assert "solo" in costs and costs["solo"] > 0
        finally:
            scheduler.close()

    def test_cold_start_prior_seeds_from_the_first_measured_batch(self, engine, rng):
        from repro.serve.scheduler import DEFAULT_SAMPLE_SECONDS

        scheduler = BatchScheduler(engine, queue_limit=8)
        try:
            # Before any batch, the prior is the flat default.
            assert scheduler.default_sample_cost() == DEFAULT_SAMPLE_SECONDS
            done = scheduler.submit(
                ServeRequest(sample=images_for(rng, 1)[0], adapter="solo")
            )
            assert done.result(timeout=10.0).ok
            deadline = time.perf_counter() + 5.0
            while (
                scheduler.default_sample_cost() == DEFAULT_SAMPLE_SECONDS
                and time.perf_counter() < deadline
            ):
                time.sleep(0.005)
            seeded = scheduler.default_sample_cost()
            # A never-seen adapter now packs with measured reality, not
            # the flat 5 ms guess.
            assert seeded > 0 and seeded != DEFAULT_SAMPLE_SECONDS
        finally:
            scheduler.close()

    def test_warm_adapter_packing_ignores_the_cold_start_prior(self, engine, rng):
        release = threading.Event()
        original = engine.serve

        def blocked(requests):
            release.wait(timeout=30.0)
            return original(requests)

        scheduler = BatchScheduler(engine, queue_limit=8, record_batches=8)
        try:
            samples = images_for(rng, 3)
            warm = scheduler.submit(ServeRequest(sample=samples[0], adapter="solo"))
            assert warm.result(timeout=10.0).ok  # "solo" now has an EMA entry
            engine.serve = blocked
            futures = [scheduler.submit(ServeRequest(sample=samples[0], adapter="solo"))]
            deadline = time.perf_counter() + 5.0
            while scheduler.depth() > 0 and time.perf_counter() < deadline:
                time.sleep(0.005)
            # Queue two more while blocked, with an absurd cold-start prior:
            # a warm adapter's packing must use its own EMA, so both still
            # ride one batch.
            with scheduler._lock:
                scheduler._default_cost = 1e6
            futures += [
                scheduler.submit(ServeRequest(sample=sample, adapter="solo"))
                for sample in samples[1:3]
            ]
            release.set()
            assert all(future.result(timeout=10.0).ok for future in futures)
            assert [len(requests) for requests, __ in scheduler.recorded][:3] == [
                1,
                1,
                2,
            ]
        finally:
            release.set()
            engine.serve = original
            scheduler.close()


class TestFrontendIntegration:
    def test_ping_stats_and_single_round_trip(self, engine, rng):
        with ServingFrontend(engine) as frontend:
            host, port = frontend.address
            with ServeClient(host, port) as client:
                assert client.ping()
                sample = images_for(rng, 1)[0]
                result = client.serve(sample, adapter="solo")
                direct = engine.serve(ServeRequest(sample=sample, adapter="solo"))
                assert result.ok
                assert np.array_equal(result.require(), direct.require())
                assert result.timings.total_seconds > 0
                stats = client.stats()
                assert stats["serve.batches"]["calls"] >= 1
                assert "serve.request.rejected" in stats

    def test_wire_errors_are_responses_not_hangs(self, engine, rng):
        with ServingFrontend(engine) as frontend:
            host, port = frontend.address
            with ServeClient(host, port) as client:
                # Unknown adapter: typed error result.
                result = client.serve(images_for(rng, 1)[0], adapter="ghost")
                assert result.status == ERROR and "ghost" in result.error
                # Batched (rank-4) samples: batching is the scheduler's job.
                result = client.serve(images_for(rng, 2))
                assert result.status == ERROR and "single-sample" in result.error
                # Unknown op: error response with the id echoed.
                response, __ = client._roundtrip({"op": "shrug"})
                assert response["status"] == ERROR
                # The connection survived all three.
                assert client.ping()

    def test_garbage_frame_gets_an_error_frame(self, engine):
        from repro.serve.frontend import _LEN, _read_frame_sync

        with ServingFrontend(engine) as frontend:
            host, port = frontend.address
            sock = socket.create_connection((host, port), timeout=10.0)
            try:
                junk = b"not json"
                sock.sendall(_LEN.pack(len(junk)) + junk + _LEN.pack(0))
                header, __ = _read_frame_sync(sock)
                assert header["status"] == ERROR
                assert "header" in header["error"]
            finally:
                sock.close()

    def test_bind_failure_surfaces(self, engine):
        with ServingFrontend(engine) as frontend:
            host, port = frontend.address
            clash = ServingFrontend(engine, host=host, port=port)
            with pytest.raises(ServeError, match="failed to start"):
                clash.start_in_thread()

    def test_concurrent_clients_across_tenants_bit_identical(self, rng):
        """Acceptance: N clients x M tenants over a real socket; every
        dispatched micro-batch replays bit-identically through the engine."""
        engine = three_tenant_engine()
        names = ("static", "meta_a", "meta_b")
        pools = {name: images_for(rng, 4) for name in names}
        try:
            frontend = ServingFrontend(engine, record_batches=64)
            with frontend:
                host, port = frontend.address
                outcomes: list[tuple[str, int, object]] = []
                errors: list[BaseException] = []
                lock = threading.Lock()

                def client_worker(worker: int) -> None:
                    try:
                        with ServeClient(host, port) as client:
                            for index in range(4):
                                name = names[(worker + index) % len(names)]
                                result = client.serve(
                                    pools[name][index], adapter=name
                                )
                                with lock:
                                    outcomes.append((name, index, result))
                    except BaseException as exc:
                        with lock:
                            errors.append(exc)

                threads = [
                    threading.Thread(target=client_worker, args=(worker,))
                    for worker in range(3)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60.0)
                assert not errors, errors
                assert len(outcomes) == 12
                assert all(result.ok for __, __, result in outcomes)
                recorded = list(frontend.scheduler.recorded)
            # Identity is contracted per dispatched micro-batch (the meta
            # mapping net is batch-composition sensitive): replay each
            # recorded batch through the engine directly.
            assert recorded
            for requests, results in recorded:
                replay = engine.serve(
                    [
                        ServeRequest(sample=request.sample, adapter=request.adapter)
                        for request in requests
                    ]
                )
                for served, direct in zip(results, replay):
                    assert np.array_equal(served.embedding, direct.require())
        finally:
            engine.close()


class TestSLOPathsUnderStalls:
    def test_deadline_miss_and_queue_full_during_a_stalled_batch(
        self, engine, rng, monkeypatch
    ):
        """One injected batch stall (REPRO_FAULTS) makes the SLO paths
        deterministic: a queued request's budget lapses, and with
        ``queue_limit=1`` the next arrival is rejected."""
        monkeypatch.setenv("REPRO_FAULTS", "stall:serve.batch:1:0.6")
        samples = images_for(rng, 3)
        frontend = ServingFrontend(engine, queue_limit=1)
        with frontend:
            host, port = frontend.address
            slow_result: list[object] = []

            def slow_client() -> None:
                with ServeClient(host, port) as client:
                    slow_result.append(client.serve(samples[0], adapter="solo"))

            # Batch 0 forms around the first request and stalls 0.6 s.
            slow = threading.Thread(target=slow_client)
            slow.start()
            def batches_started() -> int:
                entry = frontend.scheduler.stats().get("serve.batches")
                return entry["calls"] if entry else 0

            deadline = time.perf_counter() + 5.0
            while batches_started() < 1 and time.perf_counter() < deadline:
                time.sleep(0.01)

            # Admitted during the stall with a 50 ms budget: by the time
            # batch 1 forms (~0.6 s later) the deadline has lapsed.
            missed_result: list[object] = []

            def missed_client() -> None:
                with ServeClient(host, port) as client:
                    missed_result.append(
                        client.serve(samples[1], adapter="solo", deadline=0.05)
                    )

            missed = threading.Thread(target=missed_client)
            missed.start()
            deadline = time.perf_counter() + 5.0
            while frontend.scheduler.depth() < 1 and time.perf_counter() < deadline:
                time.sleep(0.01)

            # The queue (limit 1) is now full: immediate 429-style answer.
            with ServeClient(host, port) as client:
                rejected = client.serve(samples[2], adapter="solo")
            assert rejected.status == REJECTED
            assert "queue full" in rejected.error

            slow.join(timeout=30.0)
            missed.join(timeout=30.0)
            assert slow_result and slow_result[0].ok
            assert missed_result and missed_result[0].status == DEADLINE_MISSED
            assert missed_result[0].timings.queue_seconds > 0.05

            stats = frontend.scheduler.stats()
            assert stats["serve.request.rejected"]["calls"] >= 1
            assert stats["serve.request.deadline_missed"]["calls"] >= 1
            assert sum(stats["serve.queue.depth"]["buckets"].values()) >= 1
