"""Tests for the synthetic multi-task data generator."""

import numpy as np
import pytest

from repro.data import (
    SyntheticTaskData,
    TaskDistribution,
    batches,
    generate_task_data,
    merge_tasks,
)
from repro.errors import DataError


class TestTaskDistribution:
    def test_base_task_is_canonical(self):
        tasks = TaskDistribution(5, seed=0)
        base = tasks.base_task
        assert base.task_id == 0
        assert base.tint == (0.0, 0.0, 0.0)
        assert base.shift == (0, 0)
        assert base.orientation_offset == 0.0

    def test_reproducible_from_seed(self):
        a = TaskDistribution(6, seed=3)
        b = TaskDistribution(6, seed=3)
        assert a[2] == b[2]

    def test_different_seeds_differ(self):
        a = TaskDistribution(6, seed=3)
        b = TaskDistribution(6, seed=4)
        assert a[1].color_direction != b[1].color_direction

    def test_shifted_tasks_excludes_base(self):
        tasks = TaskDistribution(4, seed=0)
        shifted = tasks.shifted_tasks()
        assert len(shifted) == 3
        assert all(t.task_id != 0 for t in shifted)

    def test_color_directions_are_unit(self):
        tasks = TaskDistribution(8, seed=1)
        for task in tasks.shifted_tasks():
            assert np.linalg.norm(task.color_vector()) == pytest.approx(1.0, abs=1e-6)

    def test_shifted_directions_mostly_orthogonal_to_base(self):
        tasks = TaskDistribution(10, seed=2, max_alignment=0.35)
        base = np.asarray(tasks.base_task.color_direction)
        base /= np.linalg.norm(base)
        for task in tasks.shifted_tasks():
            alignment = abs(task.color_vector() @ base)
            assert alignment <= 0.35 + 1e-6

    def test_shift_bounds(self):
        tasks = TaskDistribution(20, seed=0, max_shift=2)
        for task in tasks:
            assert abs(task.shift[0]) <= 2 and abs(task.shift[1]) <= 2

    def test_validation(self):
        with pytest.raises(DataError):
            TaskDistribution(0)
        with pytest.raises(DataError):
            TaskDistribution(3, image_size=4, max_shift=4)

    def test_iteration_and_len(self):
        tasks = TaskDistribution(4, seed=0)
        assert len(tasks) == 4
        assert len(list(tasks)) == 4


class TestGenerateTaskData:
    def test_shapes_and_dtypes(self, rng):
        tasks = TaskDistribution(3, seed=0)
        data = generate_task_data(tasks[1], 20, 4, 16, rng)
        assert data.images.shape == (20, 3, 16, 16)
        assert data.images.dtype == np.float32
        assert data.labels.shape == (20,)
        assert data.labels.dtype == np.int64

    def test_labels_in_range(self, rng):
        tasks = TaskDistribution(3, seed=0)
        data = generate_task_data(tasks[0], 100, 5, 16, rng)
        assert data.labels.min() >= 0 and data.labels.max() < 5

    def test_deterministic_given_rng(self):
        tasks = TaskDistribution(3, seed=0)
        a = generate_task_data(tasks[1], 10, 4, 16, np.random.default_rng(7))
        b = generate_task_data(tasks[1], 10, 4, 16, np.random.default_rng(7))
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_same_class_differs_across_tasks(self, rng):
        """The same class looks different under different task styles."""
        tasks = TaskDistribution(3, seed=0)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        a = generate_task_data(tasks[1], 50, 2, 16, rng1)
        b = generate_task_data(tasks[2], 50, 2, 16, rng2)
        mean_a = a.images[a.labels == 0].mean(axis=0)
        mean_b = b.images[b.labels == 0].mean(axis=0)
        assert not np.allclose(mean_a, mean_b, atol=0.1)

    def test_tint_identifies_task(self, rng):
        """Mean channel values differ across tasks (the meta signal)."""
        tasks = TaskDistribution(4, seed=0)
        means = []
        for task in tasks.shifted_tasks():
            data = generate_task_data(task, 50, 4, 16, rng)
            means.append(data.images.mean(axis=(0, 2, 3)))
        gaps = [np.linalg.norm(means[i] - means[j]) for i in range(3) for j in range(i)]
        assert min(gaps) > 0.05

    def test_validation(self, rng):
        tasks = TaskDistribution(2, seed=0)
        with pytest.raises(DataError):
            generate_task_data(tasks[0], 0, 4, 16, rng)
        with pytest.raises(DataError):
            generate_task_data(tasks[0], 10, 1, 16, rng)

    def test_split(self, rng):
        tasks = TaskDistribution(2, seed=0)
        data = generate_task_data(tasks[0], 20, 4, 16, rng)
        head, tail = data.split(5)
        assert len(head) == 5 and len(tail) == 15
        with pytest.raises(DataError):
            data.split(20)

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            SyntheticTaskData(0, np.zeros((3, 3, 4, 4), np.float32), np.zeros(2, np.int64))


class TestMergeAndBatches:
    def test_merge_tasks(self, rng):
        tasks = TaskDistribution(3, seed=0)
        sets = [generate_task_data(t, 10, 4, 16, rng) for t in tasks]
        images, labels, task_ids = merge_tasks(sets)
        assert images.shape[0] == 30
        assert set(np.unique(task_ids)) == {0, 1, 2}

    def test_merge_empty_raises(self):
        with pytest.raises(DataError):
            merge_tasks([])

    def test_batches_cover_everything(self, rng):
        x = np.arange(25).reshape(25, 1).astype(np.float32)
        y = np.arange(25)
        seen = []
        for bx, by in batches(x, y, 4):
            assert bx.shape[0] == by.shape[0]
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(25))

    def test_batches_shuffles_with_rng(self, rng):
        x = np.arange(100).reshape(100, 1).astype(np.float32)
        y = np.arange(100)
        first = next(iter(batches(x, y, 10, rng)))[1]
        assert not np.array_equal(first, np.arange(10))

    def test_drop_last(self):
        x = np.zeros((10, 1), np.float32)
        y = np.zeros(10)
        chunks = list(batches(x, y, 4, drop_last=True))
        assert all(c[0].shape[0] == 4 for c in chunks)
        assert len(chunks) == 2

    def test_validation(self):
        with pytest.raises(DataError):
            list(batches(np.zeros((4, 1)), np.zeros(4), 0))
        with pytest.raises(DataError):
            list(batches(np.zeros((4, 1)), np.zeros(5), 2))
