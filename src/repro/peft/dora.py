"""DoRA: weight-decomposed low-rank adaptation (Liu et al., 2024).

A prominent member of the LoRA-variant space the paper is situated in.
The frozen weight is decomposed into magnitude and direction,

    W' = m ⊙ ( (W + A B) / ‖W + A B‖_col ),

with a learned per-output-column magnitude ``m`` (initialized to the base
weight's column norms) and a LoRA update on the direction.  Included as
an extension baseline for the static-adapter comparison bench.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.peft.base import Adapter


class DoRALinear(Adapter):
    """DoRA adapter around a frozen linear layer."""

    def __init__(
        self,
        base: Linear,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(f"DoRALinear wraps Linear, got {type(base).__name__}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.scaling = float(alpha if alpha is not None else rank) / rank
        self.lora_a = Parameter(init.normal(rng, (base.in_features, rank), std=0.02))
        self.lora_b = Parameter(init.zeros((rank, base.out_features)))
        # Magnitude per output feature, initialized so the adapter starts
        # as the identity: m = ‖W‖ column norms and direction = W / m.
        column_norms = np.linalg.norm(base.weight.data, axis=0)
        self.magnitude = Parameter(column_norms.astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        adapted = self.base.weight + (self.lora_a @ self.lora_b) * self.scaling
        norms = ops.sqrt((adapted * adapted).sum(axis=0, keepdims=True) + 1e-12)
        direction = adapted / norms
        out = x @ (direction * self.magnitude)
        if self.base.bias is not None:
            out = out + self.base.bias
        return out

    def delta_weight(self) -> np.ndarray:
        """Effective ΔW = m ⊙ dir(W + AB) − W (materialized)."""
        adapted = (
            self.base.weight.data
            + (self.lora_a.data @ self.lora_b.data) * self.scaling
        )
        norms = np.linalg.norm(adapted, axis=0, keepdims=True) + 1e-12
        effective = adapted / norms * self.magnitude.data
        return effective - self.base.weight.data

    def extra_parameter_count(self) -> int:
        return self.lora_a.size + self.lora_b.size + self.magnitude.size
