"""Span-tree reporting: what ``repro trace <run-dir>`` renders.

Takes the flat records of a ``trace.jsonl`` export and produces a
human-readable report with three sections:

- the **span tree** (depth-capped), slowest sibling first, with wall
  seconds, error markers, and event counts;
- a **per-phase breakdown** aggregating wall time by span name — the
  train-vs-eval split, cell time vs context time, serve batch time;
- the **slowest spans** overall, with their attributes.

Works on any trace the :mod:`repro.obs.trace` exporter wrote; the CLI
resolves a run directory to its ``trace.jsonl`` first.
"""

from __future__ import annotations

import os

from repro.errors import ObsError
from repro.obs.trace import TRACE_FILE, build_trees, load_trace


def resolve_trace_path(target: str | os.PathLike) -> str:
    """A run directory or a direct JSONL path → the trace file path."""
    target = os.fspath(target)
    if os.path.isdir(target):
        path = os.path.join(target, TRACE_FILE)
        if not os.path.exists(path):
            raise ObsError(
                f"{target!r} has no {TRACE_FILE}; run the grid with "
                f"--out-dir (observability is enabled automatically) first"
            )
        return path
    if not os.path.exists(target):
        raise ObsError(f"no trace file at {target!r}")
    return target


def _fmt_attrs(attrs: dict) -> str:
    shown = {k: v for k, v in attrs.items() if k != "error"}
    if not shown:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(shown.items()))
    return f"  [{inner}]"


def _tree_lines(node: dict, depth: int, max_depth: int, lines: list[str]) -> None:
    marker = "" if node.get("status") == "ok" else "  !ERROR"
    events = node.get("events") or []
    event_note = f"  ({len(events)} event(s))" if events else ""
    lines.append(
        f"{'  ' * depth}{node['name']:<{max(40 - 2 * depth, 8)}} "
        f"{node.get('seconds', 0.0) * 1e3:>10.1f}ms"
        f"{marker}{event_note}{_fmt_attrs(node.get('attrs') or {})}"
    )
    if depth + 1 >= max_depth:
        hidden = len(node.get("children") or [])
        if hidden:
            lines.append(f"{'  ' * (depth + 1)}... {hidden} child span(s) elided")
        return
    children = sorted(
        node.get("children") or [], key=lambda c: c.get("seconds", 0.0), reverse=True
    )
    for child in children:
        _tree_lines(child, depth + 1, max_depth, lines)


def _walk(records: list[dict]):
    for record in records:
        yield record


def render_trace_report(
    records: list[dict], max_depth: int = 4, top: int = 8
) -> str:
    """The full report for one trace file's flat records."""
    if not records:
        return "trace report: no spans recorded"
    trees = build_trees(records)
    traces = {record.get("trace", "") for record in records}
    total = sum(node.get("seconds", 0.0) for node in trees)
    errors = sum(1 for record in records if record.get("status") != "ok")
    lines = [
        f"trace report — {len(records)} span(s) in {len(traces)} trace(s), "
        f"{total:.2f}s across {len(trees)} root span(s), {errors} error(s)",
        "",
        f"span tree (slowest-first, depth <= {max_depth}):",
    ]
    for root in sorted(trees, key=lambda n: n.get("seconds", 0.0), reverse=True):
        _tree_lines(root, 1, max_depth + 1, lines)

    by_name: dict[str, list[float]] = {}
    for record in _walk(records):
        by_name.setdefault(record["name"], []).append(record.get("seconds", 0.0))
    lines += [
        "",
        "per-phase breakdown (wall seconds by span name):",
        f"  {'span':<28} {'count':>6} {'total':>10} {'mean':>10} {'max':>10}",
    ]
    for name, seconds in sorted(
        by_name.items(), key=lambda kv: sum(kv[1]), reverse=True
    ):
        lines.append(
            f"  {name:<28} {len(seconds):>6} {sum(seconds) * 1e3:>8.1f}ms "
            f"{sum(seconds) / len(seconds) * 1e3:>8.1f}ms {max(seconds) * 1e3:>8.1f}ms"
        )

    slowest = sorted(records, key=lambda r: r.get("seconds", 0.0), reverse=True)[:top]
    lines += ["", f"slowest {len(slowest)} span(s):"]
    for record in slowest:
        lines.append(
            f"  {record.get('seconds', 0.0) * 1e3:>10.1f}ms  {record['name']}"
            f"{_fmt_attrs(record.get('attrs') or {})}"
        )
    return "\n".join(lines)


def render_trace_target(target: str | os.PathLike, max_depth: int = 4, top: int = 8) -> str:
    """Resolve ``target`` (run dir or file), load it, and render the report."""
    return render_trace_report(
        load_trace(resolve_trace_path(target)), max_depth=max_depth, top=top
    )
