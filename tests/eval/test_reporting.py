"""Tests for experiment-result persistence and rendering."""

import pytest

from repro.errors import EvaluationError
from repro.eval.protocol import METHOD_LABELS, Table1Row
from repro.eval.reporting import (
    Table1Record,
    load_record,
    record_from_rows,
    render_markdown,
    save_record,
)


def rows(acc5: float, acc10: float) -> dict:
    return {
        "lora": Table1Row("lora", {5: acc5, 10: acc10}),
        "meta_lora_tr": Table1Row("meta_lora_tr", {5: acc5 + 0.05, 10: acc10 + 0.05}),
    }


class TestRecord:
    def test_aggregates_means_over_seeds(self):
        record = record_from_rows(
            "resnet", [0, 1], [rows(0.8, 0.7), rows(0.6, 0.5)], ks=(5, 10)
        )
        assert record.accuracy["lora"]["5"] == pytest.approx(0.7)
        assert record.accuracy["lora"]["10"] == pytest.approx(0.6)
        assert record.accuracy["meta_lora_tr"]["5"] == pytest.approx(0.75)

    def test_empty_rows_rejected(self):
        with pytest.raises(EvaluationError):
            record_from_rows("resnet", [], [], ks=(5,))

    def test_json_roundtrip(self):
        record = record_from_rows("mixer", [0], [rows(0.8, 0.7)], ks=(5, 10))
        clone = Table1Record.from_json(record.to_json())
        assert clone == record

    def test_save_and_load(self, tmp_path):
        record = record_from_rows("resnet", [0], [rows(0.8, 0.7)], ks=(5, 10))
        path = save_record(record, tmp_path)
        assert path.endswith("table1_resnet.json")
        assert load_record(path) == record

    def test_per_seed_values_stored(self):
        record = record_from_rows(
            "resnet", [0, 1], [rows(0.8, 0.7), rows(0.6, 0.5)], ks=(5, 10)
        )
        assert record.per_seed["lora"]["5"] == [0.8, 0.6]

    def test_significance_computed_for_meta_methods(self):
        record = record_from_rows(
            "resnet",
            [0, 1, 2],
            [rows(0.8, 0.7), rows(0.82, 0.72), rows(0.78, 0.68)],
            ks=(5, 10),
        )
        assert "meta_lora_tr" in record.significance
        assert "lora" not in record.significance
        # meta is +0.05 over lora at every seed: constant positive diff
        assert record.significance["meta_lora_tr"]["5"] < 0.05

    def test_no_significance_with_one_seed(self):
        record = record_from_rows("resnet", [0], [rows(0.8, 0.7)], ks=(5,))
        assert record.significance == {}

    def test_render_markdown(self):
        record = record_from_rows("resnet", [0], [rows(0.8, 0.7)], ks=(5, 10))
        text = render_markdown(record, METHOD_LABELS)
        assert "| Method | K=5 | K=10 |" in text
        assert "| LoRA | 80.00 | 70.00 |" in text
        assert "Meta-LoRA TR" in text
