"""Tests for ResNet, MLP-Mixer and the feature extractor."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ShapeError
from repro.models import (
    BasicBlock,
    FeatureExtractor,
    MLPMixer,
    ResNet,
    mixer_small,
    resnet_small,
)


def batch(rng, n=4, size=16):
    return Tensor(rng.normal(size=(n, 3, size, size)).astype(np.float32))


class TestResNet:
    def test_forward_shape(self, rng):
        model = resnet_small(7, rng)
        assert model(batch(rng)).shape == (4, 7)

    def test_features_shape(self, rng):
        model = resnet_small(7, rng)
        feats = model.features(batch(rng))
        assert feats.shape == (4, model.embedding_dim)

    def test_gradients_reach_all_parameters(self, rng):
        model = resnet_small(3, rng)
        model(batch(rng)).sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_basic_block_identity_shortcut(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        assert block.shortcut is None

    def test_basic_block_projection_shortcut(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        assert block.shortcut is not None
        x = Tensor(rng.normal(size=(2, 8, 8, 8)).astype(np.float32))
        assert block(x).shape == (2, 16, 4, 4)

    def test_configurable_stages(self, rng):
        model = ResNet(stage_channels=(4, 8), blocks_per_stage=2, num_classes=2, rng=rng)
        assert model.embedding_dim == 8
        assert model(batch(rng, size=8)).shape == (4, 2)

    def test_downsampling_happens_between_stages(self, rng):
        model = resnet_small(2, rng)
        # 16x16 input, two stage transitions with stride 2 -> 4x4 spatial
        out = model.stem(batch(rng))
        assert out.shape[2] == 16


class TestMixer:
    def test_forward_shape(self, rng):
        model = mixer_small(5, rng)
        assert model(batch(rng)).shape == (4, 5)

    def test_features_shape(self, rng):
        model = mixer_small(5, rng)
        assert model.features(batch(rng)).shape == (4, model.embedding_dim)

    def test_patchify_shape(self, rng):
        model = MLPMixer(image_size=16, patch_size=4, rng=rng)
        tokens = model._patchify(batch(rng))
        assert tokens.shape == (4, 16, 3 * 16)

    def test_patchify_reassembles_content(self, rng):
        model = MLPMixer(image_size=8, patch_size=4, rng=rng)
        x = np.arange(4 * 3 * 8 * 8, dtype=np.float32).reshape(4, 3, 8, 8)
        tokens = model._patchify(Tensor(x)).data
        # first patch of first image is the top-left 4x4 of every channel
        expected = x[0, :, :4, :4].reshape(-1)
        assert np.allclose(tokens[0, 0], expected)

    def test_rejects_indivisible_patch_size(self, rng):
        with pytest.raises(ShapeError):
            MLPMixer(image_size=10, patch_size=4, rng=rng)

    def test_rejects_wrong_input_size(self, rng):
        model = mixer_small(3, rng, image_size=16)
        with pytest.raises(ShapeError):
            model(batch(rng, size=8))

    def test_gradients_reach_all_parameters(self, rng):
        model = mixer_small(3, rng)
        model(batch(rng)).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestFeatureExtractor:
    def test_freezes_backbone(self, rng):
        backbone = resnet_small(3, rng)
        FeatureExtractor(backbone)
        assert backbone.parameter_count(trainable_only=True) == 0

    def test_output_normalized(self, rng):
        fx = FeatureExtractor(resnet_small(3, rng), include_stats=False)
        feats = fx(batch(rng)).data
        assert np.allclose(np.linalg.norm(feats, axis=1), 1.0, atol=1e-5)

    def test_output_not_normalized_when_disabled(self, rng):
        fx = FeatureExtractor(resnet_small(3, rng), normalize=False, include_stats=False)
        feats = fx(batch(rng)).data
        assert not np.allclose(np.linalg.norm(feats, axis=1), 1.0)

    def test_stats_appended_for_images(self, rng):
        backbone = resnet_small(3, rng)
        fx = FeatureExtractor(backbone, include_stats=True)
        feats = fx(batch(rng)).data
        assert feats.shape == (4, backbone.embedding_dim + 6)
        x = batch(rng)
        expected_means = x.data.mean(axis=(2, 3))
        out = fx(x).data
        assert np.allclose(out[:, backbone.embedding_dim : backbone.embedding_dim + 3],
                           expected_means, atol=1e-5)

    def test_stats_identify_task_style(self, rng):
        """Channel means separate differently-tinted inputs — the meta signal."""
        fx = FeatureExtractor(resnet_small(3, rng), include_stats=True)
        a = batch(rng)
        b = Tensor(a.data + np.array([1.0, -1.0, 0.5], dtype=np.float32)[None, :, None, None])
        fa, fb = fx(a).data, fx(b).data
        dim = fx.backbone.embedding_dim
        assert np.abs(fa[:, dim : dim + 3] - fb[:, dim : dim + 3]).max() > 0.4

    def test_no_graph_attached(self, rng):
        fx = FeatureExtractor(resnet_small(3, rng))
        out = fx(batch(rng))
        assert out._parents == ()

    def test_requires_features_method(self):
        from repro.nn import Linear

        with pytest.raises(TypeError):
            FeatureExtractor(Linear(3, 3))

    def test_output_dim(self, rng):
        backbone = resnet_small(3, rng)
        assert (
            FeatureExtractor(backbone, include_stats=False).output_dim
            == backbone.embedding_dim
        )
        assert (
            FeatureExtractor(backbone, include_stats=True).output_dim
            == backbone.embedding_dim + 6
        )
