"""Episodic multi-task training for the adapter phase.

Adapters (static and meta alike) are trained on a mixture of shifted
tasks.  Each episode samples one task and draws a batch from it — the
standard episodic regime of meta-learning — so every method sees an
identical, interleaved task stream and differences in Table I come from
the adapters' capacity to absorb it, not from the curriculum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import SyntheticTaskData
from repro.errors import TrainingError
from repro.obs import OBS, TRACER
from repro.train.trainer import Trainer
from repro.utils.logging import get_logger

_logger = get_logger("train")


@dataclass
class EpisodeLog:
    """Per-episode record: task id and loss."""

    task_ids: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)


class MetaTrainer:
    """Runs episodic adaptation over a list of per-task datasets."""

    def __init__(self, trainer: Trainer, task_datasets: list[SyntheticTaskData]) -> None:
        if not task_datasets:
            raise TrainingError("MetaTrainer needs at least one task dataset")
        self.trainer = trainer
        self.task_datasets = task_datasets

    def run(
        self,
        episodes: int,
        batch_size: int,
        rng: np.random.Generator,
        log_every: int | None = None,
    ) -> EpisodeLog:
        """``episodes`` steps, each on a random batch from a random task."""
        if episodes <= 0:
            raise TrainingError(f"episodes must be positive, got {episodes}")
        log = EpisodeLog()
        with TRACER.span(
            "train.episodes", episodes=episodes, tasks=len(self.task_datasets)
        ):
            for episode in range(episodes):
                dataset = self.task_datasets[rng.integers(0, len(self.task_datasets))]
                index = rng.choice(len(dataset), size=min(batch_size, len(dataset)), replace=False)
                loss = self.trainer.train_step(dataset.images[index], dataset.labels[index])
                log.task_ids.append(dataset.task_id)
                log.losses.append(loss)
                OBS.enabled and OBS.gauge("train.episode_loss", loss)
                if log_every and (episode + 1) % log_every == 0:
                    recent = float(np.mean(log.losses[-log_every:]))
                    _logger.info(
                        "episode %d/%d  loss=%.4f", episode + 1, episodes, recent
                    )
        return log
