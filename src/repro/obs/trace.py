"""Hierarchical spans: the tracing half of ``repro.obs``.

A *span* is one timed region of work — a Table I cell, a training
epoch, a serve micro-batch — opened as a context manager::

    from repro.obs import TRACER

    with TRACER.span("table1.cell", seed=0, method="lora"):
        ...

Spans opened inside an open span become its children, forming a tree
per thread (each thread keeps its own stack, so the serve engine's
batcher thread produces its own roots).  A span records wall-clock
start time, duration, ``ok``/``error`` status, point-in-time *events*
(:meth:`Tracer.event` — retries, timeouts, injected faults), and the
**metric delta** the region produced: the change in every
:data:`~repro.obs.metrics.METRICS` series between span entry and exit,
in the unified snapshot schema.

Tracing is off by default and follows the same cost contract as the
metrics registry: a disabled ``TRACER.span(...)`` returns a shared
no-op context manager after a single attribute check, and
``TRACER.event(...)`` returns after the same check.

Cross-process merge-back mirrors the metrics merge the pool does:
workers trace into their own (reset) tracer, ship finished roots as
plain dicts on the ``CellResult``, and the parent re-attaches them
under its currently open span with :meth:`Tracer.absorb` — so worker
cell spans land in the parent's tree exactly where in-process cells
would have put them.

Export is JSONL (``trace.jsonl`` in run directories): one record per
span, flattened depth-first with ``id``/``parent`` links scoped to a
per-export ``trace`` tag, so appended exports (a resumed run) never
collide::

    {"trace": "a1b2c3d4", "id": 1, "parent": null, "name": "table1.grid",
     "start": 1754467200.12, "seconds": 12.07, "status": "ok",
     "attrs": {...}, "events": [...], "metrics": {...}}

See ``docs/observability.md`` for the full schema and naming rules.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid

from repro.errors import ObsError
from repro.obs.metrics import METRICS

#: File name of the trace export inside a run directory.
TRACE_FILE = "trace.jsonl"


class Span:
    """One finished-or-open region of the trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "start",
        "seconds",
        "status",
        "events",
        "metrics",
        "children",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.start = time.time()
        self.seconds = 0.0
        self.status = "ok"
        self.events: list[dict] = []
        self.metrics: dict[str, dict] = {}
        self.children: list["Span"] = []

    def to_dict(self) -> dict:
        """Nested JSON-friendly form (children inline)."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "start": self.start,
            "seconds": self.seconds,
            "status": self.status,
            "events": self.events,
            "metrics": self.metrics,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(str(payload.get("name", "?")), dict(payload.get("attrs") or {}))
        span.start = float(payload.get("start", 0.0))
        span.seconds = float(payload.get("seconds", 0.0))
        span.status = str(payload.get("status", "ok"))
        span.events = list(payload.get("events") or [])
        span.metrics = dict(payload.get("metrics") or {})
        span.children = [
            cls.from_dict(child) for child in payload.get("children") or []
        ]
        return span


class _NullSpan:
    """Shared no-op context manager the disabled path hands out."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_span", "_t0", "_baseline")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._span = Span(name, attrs)
        self._t0 = 0.0
        self._baseline: dict | None = None

    def __enter__(self) -> Span:
        self._baseline = METRICS.totals() if METRICS.enabled else None
        self._tracer._stack().append(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.seconds = time.perf_counter() - self._t0
        if exc_type is not None:
            span.status = "error"
            span.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        if self._baseline is not None:
            span.metrics = _metric_delta(self._baseline, METRICS.totals())
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._tracer._finish(span, stack)
        return False


def _metric_delta(before: dict, after: dict) -> dict[str, dict]:
    """Per-series change between two :meth:`MetricsRegistry.totals` calls."""
    delta: dict[str, dict] = {}
    for name, (calls, seconds, nbytes) in after.items():
        calls0, seconds0, bytes0 = before.get(name, (0, 0.0, 0))
        if calls != calls0 or seconds != seconds0 or nbytes != bytes0:
            delta[name] = {
                "calls": calls - calls0,
                "seconds": seconds - seconds0,
                "bytes": nbytes - bytes0,
            }
    return delta


class Tracer:
    """Per-process span collector with per-thread open-span stacks."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    # -- lifecycle ------------------------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop finished roots and this thread's open stack (worker setup)."""
        with self._lock:
            self._roots.clear()
        self._local.stack = []

    # -- recording ------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: object):
        """Open a span; a disabled tracer returns a shared no-op manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Attach a point-in-time event to the innermost open span."""
        if not self.enabled:
            return
        stack = self._stack()
        if not stack:
            return
        span = stack[-1]
        stack[-1].events.append(
            {"name": name, "attrs": attrs, "at": time.time() - span.start}
        )

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _finish(self, span: Span, stack: list[Span]) -> None:
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- merge-back / export --------------------------------------------------

    def absorb(self, span_dicts: list[dict], **attrs: object) -> None:
        """Attach worker-shipped span dicts under the current open span.

        With no span open they become roots.  Works regardless of
        ``enabled`` — like the metrics merge, the spans were gated by
        the worker's own tracer.  ``attrs`` are stamped onto each
        absorbed root span (without clobbering existing keys) — how
        long-lived serving shards label their spans ``shard=<id>``.
        """
        if not span_dicts:
            return
        spans = [Span.from_dict(payload) for payload in span_dicts]
        if attrs:
            for span in spans:
                for key, value in attrs.items():
                    span.attrs.setdefault(key, value)
        parent = self.current()
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._lock:
                self._roots.extend(spans)

    def drain(self) -> list[dict]:
        """Pop every finished root span as a nested dict."""
        with self._lock:
            roots, self._roots = self._roots, []
        return [span.to_dict() for span in roots]


#: The process-wide tracer every instrumented layer reports into.
TRACER = Tracer()


# -- JSONL export / import -----------------------------------------------------


def flatten_spans(roots: list[dict], trace_id: str | None = None) -> list[dict]:
    """Nested span dicts → flat JSONL records (depth-first ids)."""
    if trace_id is None:
        trace_id = uuid.uuid4().hex[:8]
    records: list[dict] = []

    def visit(span: dict, parent: int | None) -> None:
        span_id = len(records) + 1
        records.append(
            {
                "trace": trace_id,
                "id": span_id,
                "parent": parent,
                "name": span.get("name", "?"),
                "start": span.get("start", 0.0),
                "seconds": span.get("seconds", 0.0),
                "status": span.get("status", "ok"),
                "attrs": span.get("attrs") or {},
                "events": span.get("events") or [],
                "metrics": span.get("metrics") or {},
            }
        )
        for child in span.get("children") or []:
            visit(child, span_id)

    for root in roots:
        visit(root, None)
    return records


def write_trace(path: str | os.PathLike, roots: list[dict]) -> int:
    """Append ``roots`` (nested span dicts) to a JSONL trace file.

    Returns the number of records written.  Appending keeps resumed
    runs additive: each call carries its own ``trace`` tag, so
    ``id``/``parent`` links never collide across appends.
    """
    records = flatten_spans(roots)
    if not records:
        return 0
    path = os.fspath(path)
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Parse a ``trace.jsonl`` file back into flat records."""
    path = os.fspath(path)
    records = []
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ObsError(f"{path}:{lineno}: unparsable trace record: {exc}") from exc
                if not isinstance(record, dict) or "name" not in record:
                    raise ObsError(f"{path}:{lineno}: not a span record")
                records.append(record)
    except OSError as exc:
        raise ObsError(f"cannot read trace file {path!r}: {exc}") from exc
    return records


def build_trees(records: list[dict]) -> list[dict]:
    """Rebuild nested span dicts from flat JSONL records.

    Records are grouped by their ``trace`` tag; parent links are scoped
    within a tag.  Orphans (a parent id missing from the file) surface
    as roots rather than being dropped.
    """
    trees: list[dict] = []
    by_id: dict[tuple[str, int], dict] = {}
    for record in records:
        node = dict(record)
        node["children"] = []
        by_id[(record.get("trace", ""), record.get("id", 0))] = node
    for record in records:
        node = by_id[(record.get("trace", ""), record.get("id", 0))]
        parent = record.get("parent")
        parent_node = (
            by_id.get((record.get("trace", ""), parent)) if parent is not None else None
        )
        if parent_node is not None:
            parent_node["children"].append(node)
        else:
            trees.append(node)
    return trees
