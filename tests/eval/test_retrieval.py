"""Tests for retrieval metrics."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import mean_average_precision, recall_at_k


def separated(rng, n=10, dim=4, gap=10.0):
    support = np.concatenate(
        [rng.normal(size=(n, dim)) + gap, rng.normal(size=(n, dim)) - gap]
    )
    support_labels = np.concatenate([np.zeros(n, np.int64), np.ones(n, np.int64)])
    queries = np.concatenate(
        [rng.normal(size=(4, dim)) + gap, rng.normal(size=(4, dim)) - gap]
    )
    query_labels = np.concatenate([np.zeros(4, np.int64), np.ones(4, np.int64)])
    return queries, query_labels, support, support_labels


class TestRecallAtK:
    def test_perfect_on_separated_blobs(self, rng):
        q, ql, s, sl = separated(rng)
        assert recall_at_k(q, ql, s, sl, k=1) == 1.0

    def test_k_one_harder_than_k_many(self, rng):
        q, ql, s, sl = separated(rng, gap=0.3)
        assert recall_at_k(q, ql, s, sl, k=10) >= recall_at_k(q, ql, s, sl, k=1)

    def test_k_clamped_to_support(self, rng):
        q, ql, s, sl = separated(rng, n=3)
        assert 0.0 <= recall_at_k(q, ql, s, sl, k=100) <= 1.0

    def test_validation(self, rng):
        q, ql, s, sl = separated(rng)
        with pytest.raises(EvaluationError):
            recall_at_k(q, ql, s, sl, k=0)
        with pytest.raises(EvaluationError):
            recall_at_k(q[:, :2], ql, s, sl, k=1)


class TestMeanAveragePrecision:
    def test_perfect_ranking(self, rng):
        q, ql, s, sl = separated(rng)
        assert mean_average_precision(q, ql, s, sl) == pytest.approx(1.0)

    def test_random_embeddings_near_class_prior(self, rng):
        support = rng.normal(size=(100, 8))
        support_labels = rng.integers(0, 2, 100)
        queries = rng.normal(size=(40, 8))
        query_labels = rng.integers(0, 2, 40)
        score = mean_average_precision(queries, query_labels, support, support_labels)
        assert 0.3 < score < 0.7

    def test_better_embeddings_higher_map(self, rng):
        good = separated(rng, gap=10.0)
        bad = separated(rng, gap=0.1)
        assert mean_average_precision(*good) > mean_average_precision(*bad)

    def test_no_relevant_items_raises(self, rng):
        support = rng.normal(size=(5, 3))
        support_labels = np.zeros(5, np.int64)
        queries = rng.normal(size=(3, 3))
        query_labels = np.ones(3, np.int64)
        with pytest.raises(EvaluationError):
            mean_average_precision(queries, query_labels, support, support_labels)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        from repro.train import EarlyStopping

        stopper = EarlyStopping(patience=2, mode="max")
        assert not stopper.update(0.5)
        assert not stopper.update(0.6)
        assert not stopper.update(0.59)
        assert stopper.update(0.58)
        assert stopper.should_stop

    def test_improvement_resets(self):
        from repro.train import EarlyStopping

        stopper = EarlyStopping(patience=2, mode="max")
        stopper.update(0.5)
        stopper.update(0.4)
        stopper.update(0.6)  # new best resets the counter
        assert stopper.stale_rounds == 0

    def test_min_mode(self):
        from repro.train import EarlyStopping

        stopper = EarlyStopping(patience=1, mode="min")
        assert not stopper.update(1.0)
        assert not stopper.update(0.5)
        assert stopper.update(0.6)

    def test_min_delta(self):
        from repro.train import EarlyStopping

        stopper = EarlyStopping(patience=1, mode="max", min_delta=0.1)
        assert not stopper.update(0.5)
        assert stopper.update(0.55)  # below min_delta: counts as stale

    def test_validation(self):
        from repro.errors import TrainingError
        from repro.train import EarlyStopping

        with pytest.raises(TrainingError):
            EarlyStopping(patience=0)
        with pytest.raises(TrainingError):
            EarlyStopping(patience=1, mode="median")
        with pytest.raises(TrainingError):
            EarlyStopping(patience=1, min_delta=-1.0)
