"""Process-pool sharding of the Table I experiment grid.

The grid has two phases, both sharded over the same pool:

1. **Seed contexts** — one :class:`~repro.eval.protocol.Table1SeedContext`
   per seed: pretrain the backbone once, freeze the task splits.  Workers
   return the context to the parent, which re-ships the *shared frozen
   backbone* to every dependent cell instead of letting each cell redo
   pretraining.
2. **Cells** — one ``(seed, method)`` pair each, the independent unit of
   the paper's Table I.  Each cell derives its RNG from its key alone
   (:func:`repro.eval.protocol.method_rng`), so the grid is bit-identical
   to the serial :func:`repro.eval.protocol.run_table1` loop at any
   worker count — the property the bench harness asserts in-process.

Durability (``out_dir`` / ``resume``) layers on top without touching the
numerics: with a run directory (:class:`repro.runtime.rundir.RunDir`)
every completed cell is checkpointed as it finishes, and a resumed grid
loads the persisted rows and schedules **only the missing cells** —
contexts are rebuilt only for seeds that still have work.  Because the
RNG scheme is key-derived, restored + freshly computed rows are
bit-identical to an uninterrupted run.  ``max_retries`` /
``cell_timeout`` pass straight through to :func:`~repro.runtime.pool.run_cells`.

Cells run under the autograd memory diet (``backward_release``), which is
safe because the training loops never backpropagate a graph twice, and
bit-identical because releasing graph metadata does not change numerics.

Observability (``obs``) layers on top the same way: when active (the
default whenever the grid has a run directory) the grid enables
:data:`repro.obs.OBS` and :data:`repro.obs.TRACER` for its duration and
builds a span tree — ``table1.grid`` → ``table1.contexts`` /
``table1.cells`` → one span per cell (with retry/timeout/fault events) —
exported to ``<run_dir>/trace.jsonl`` and rendered by ``repro trace``.
Instrumentation never touches an RNG, so obs-on and obs-off grids are
bit-identical (asserted by ``tests/obs/test_acceptance.py``).
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs import OBS, TRACER
from repro.eval.protocol import (
    Table1Config,
    Table1Row,
    Table1SeedContext,
    prepare_table1_seed,
    run_table1_cell,
)
from repro.runtime.pool import CellResult, raise_failures, run_cells
from repro.runtime.rundir import RunDir, resolve_run_dirs

#: Perf overrides applied around every grid cell (see module docstring).
CELL_PERF = {"backward_release": True}


@dataclass
class Table1GridResult:
    """All rows of a multi-seed Table I grid, plus per-cell diagnostics.

    ``restored`` lists the keys of cells whose rows were loaded from the
    run directory rather than recomputed (``resume=``); ``run_dir`` is
    the directory the grid persisted into, if any.
    """

    config: Table1Config
    seeds: tuple[int, ...]
    rows_by_seed: list[dict[str, Table1Row]]
    cell_results: list[CellResult] = field(default_factory=list)
    restored: list[tuple[int, str]] = field(default_factory=list)
    run_dir: str | None = None

    @property
    def failures(self) -> list:
        return [r.failure for r in self.cell_results if not r.ok]


def _prepare_seed(cell: tuple[Table1Config, int]) -> Table1SeedContext:
    config, seed = cell
    return prepare_table1_seed(config, seed)


def _run_cell(cell: tuple[Table1Config, Table1SeedContext, str]) -> Table1Row:
    config, context, method = cell
    return run_table1_cell(config, context, method)


@contextlib.contextmanager
def _grid_observability(active: bool, rundir: RunDir | None, **attrs: object):
    """Enable metrics + tracing around the grid, restoring prior state.

    Yields the open ``table1.grid`` span (``None`` when inactive) and
    exports its finished tree to the run directory on exit — in a
    ``finally``, so a grid that dies mid-flight (strict failure, ctrl-C)
    still leaves its partial trace, with the grid span marked ``error``.
    If this context enabled the tracer itself, the grid root is drained
    on exit so repeated grids in one process don't accumulate; a
    caller-enabled tracer keeps its own roots.
    """
    if not active:
        yield None
        return
    previous = (OBS.enabled, TRACER.enabled)
    OBS.enabled = True
    TRACER.enabled = True
    try:
        with TRACER.span("table1.grid", **attrs) as grid_span:
            yield grid_span
    finally:
        OBS.enabled, TRACER.enabled = previous
        if not previous[1]:
            TRACER.drain()
        if rundir is not None:
            rundir.write_trace([grid_span.to_dict()])


def run_table1_grid(
    config: Table1Config,
    seeds: tuple[int, ...] | list[int],
    jobs: int = 1,
    strict: bool = True,
    *,
    out_dir: str | os.PathLike | None = None,
    resume: str | os.PathLike | None = None,
    max_retries: int = 0,
    retry_backoff: float = 0.05,
    cell_timeout: float | None = None,
    obs: bool | None = None,
) -> Table1GridResult:
    """Shard the ``seeds × config.methods`` Table I grid over ``jobs`` workers.

    Bit-identical to ``[run_table1(config, seed) for seed in seeds]`` at
    any ``jobs`` (including the ``jobs=1`` serial fallback), with or
    without a run directory.  With ``strict`` (default), any cell failure
    raises :class:`repro.errors.WorkerError` after the whole grid has
    drained; otherwise failed cells appear in ``result.cell_results`` and
    their rows are omitted.

    ``out_dir`` persists every completed cell into a run directory as it
    finishes; ``resume`` additionally loads the directory's already-
    completed cells and re-runs only the missing ones (``resume`` implies
    ``out_dir``; pointing them at different paths is an error).  Failed
    cells are retried ``max_retries`` times with deterministic
    exponential backoff, and ``cell_timeout`` arms the per-cell soft
    timeout — see :func:`repro.runtime.pool.run_cells`.

    ``obs`` turns the observability layer on (metrics + per-cell trace
    spans, exported to ``<run_dir>/trace.jsonl``); the default enables
    it exactly when the grid has a run directory to export into.
    Instrumentation is RNG-free, so the rows are bit-identical either
    way.
    """
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ConfigError("run_table1_grid needs at least one seed")

    root, resuming = resolve_run_dirs(out_dir, resume)
    rundir = None
    if root is not None:
        if resuming:
            RunDir.open(root)  # a resume target must already exist
        rundir = RunDir.create(root, config, seeds)
    restored: dict[tuple[int, str], Table1Row] = {}
    if rundir is not None and resuming:
        restored = rundir.load_completed(seeds, config.methods)

    pool_options = {
        "jobs": jobs,
        "max_retries": max_retries,
        "retry_backoff": retry_backoff,
        "cell_timeout": cell_timeout,
    }

    # Contexts are rebuilt only for seeds that still have missing cells.
    missing = [
        (seed, method)
        for seed in seeds
        for method in config.methods
        if (seed, method) not in restored
    ]
    context_seeds = sorted({seed for seed, __ in missing})

    obs_active = (rundir is not None) if obs is None else bool(obs)
    with _grid_observability(
        obs_active,
        rundir,
        seeds=list(seeds),
        methods=list(config.methods),
        jobs=jobs,
        restored=len(restored),
    ) as grid_span:
        with TRACER.span("table1.contexts", cells=len(context_seeds)):
            context_results = run_cells(
                _prepare_seed,
                [(config, seed) for seed in context_seeds],
                keys=[("context", seed) for seed in context_seeds],
                span_name="table1.context",
                **pool_options,
            )
            if strict:
                raise_failures(context_results)
        contexts = {
            result.key[1]: result.value for result in context_results if result.ok
        }

        cells = []
        keys = []
        for seed, method in missing:
            if seed not in contexts:
                continue  # non-strict: the seed's context failed; skip its cells
            cells.append((config, contexts[seed], method))
            keys.append((seed, method))

        def checkpoint(result: CellResult) -> None:
            if rundir is not None and result.ok:
                rundir.save_cell(result.key[0], result.key[1], result.value)

        with TRACER.span("table1.cells", cells=len(cells)):
            cell_results = run_cells(
                _run_cell,
                cells,
                keys=keys,
                perf=dict(CELL_PERF),
                on_result=checkpoint,
                span_name="table1.cell",
                **pool_options,
            )
            if strict:
                raise_failures(cell_results)

    fresh = {
        result.key: result.value for result in cell_results if result.ok
    }
    rows_by_seed: list[dict[str, Table1Row]] = []
    for seed in seeds:
        rows = {}
        for method in config.methods:
            row = restored.get((seed, method)) or fresh.get((seed, method))
            if row is not None:
                rows[method] = row
        rows_by_seed.append(rows)
    return Table1GridResult(
        config=config,
        seeds=seeds,
        rows_by_seed=rows_by_seed,
        cell_results=context_results + cell_results,
        restored=sorted(restored),
        run_dir=rundir.root if rundir is not None else None,
    )
