"""MLP-Mixer backbone (Tolstikhin et al.), CPU-scale.

Images are split into non-overlapping patches, linearly embedded, and
processed by mixer blocks that alternate token mixing (an MLP applied
across patches) with channel mixing (an MLP applied across features).
Table I evaluates MetaLoRA on this architecture alongside ResNet, showing
the method is not specific to convolutions.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import LayerNorm, Linear, Module, ModuleList


class MixerBlock(Module):
    """One mixer block: token-mixing MLP + channel-mixing MLP, pre-norm residual."""

    def __init__(
        self,
        num_patches: int,
        hidden_dim: int,
        token_mlp_dim: int,
        channel_mlp_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(hidden_dim)
        self.token_fc1 = Linear(num_patches, token_mlp_dim, rng=rng)
        self.token_fc2 = Linear(token_mlp_dim, num_patches, rng=rng)
        self.norm2 = LayerNorm(hidden_dim)
        self.channel_fc1 = Linear(hidden_dim, channel_mlp_dim, rng=rng)
        self.channel_fc2 = Linear(channel_mlp_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        # Token mixing operates across the patch axis: transpose, MLP, restore.
        y = self.norm1(x).transpose(0, 2, 1)
        y = self.token_fc2(ops.gelu(self.token_fc1(y)))
        x = x + y.transpose(0, 2, 1)
        z = self.norm2(x)
        z = self.channel_fc2(ops.gelu(self.channel_fc1(z)))
        return x + z


class MLPMixer(Module):
    """Patch embedding → mixer blocks → layer norm → mean pool → head."""

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 4,
        in_channels: int = 3,
        hidden_dim: int = 32,
        token_mlp_dim: int = 16,
        channel_mlp_dim: int = 64,
        depth: int = 2,
        num_classes: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ShapeError(
                f"image size {image_size} not divisible by patch size {patch_size}"
            )
        rng = rng or np.random.default_rng()
        self.image_size = image_size
        self.patch_size = patch_size
        self.in_channels = in_channels
        grid = image_size // patch_size
        self.num_patches = grid * grid
        patch_dim = in_channels * patch_size * patch_size
        self.embed = Linear(patch_dim, hidden_dim, rng=rng)
        self.mixer_blocks = ModuleList(
            [
                MixerBlock(self.num_patches, hidden_dim, token_mlp_dim, channel_mlp_dim, rng=rng)
                for __ in range(depth)
            ]
        )
        self.norm = LayerNorm(hidden_dim)
        self.head = Linear(hidden_dim, num_classes, rng=rng)
        self.embedding_dim = hidden_dim
        self.num_classes = num_classes

    def _patchify(self, x: Tensor) -> Tensor:
        """``(N, C, H, W)`` → ``(N, patches, C·p·p)`` by non-overlapping tiling."""
        n, c, h, w = x.shape
        if h != self.image_size or w != self.image_size or c != self.in_channels:
            raise ShapeError(
                f"MLPMixer expects (N, {self.in_channels}, {self.image_size}, "
                f"{self.image_size}), got {x.shape}"
            )
        p = self.patch_size
        grid = h // p
        x = x.reshape(n, c, grid, p, grid, p)
        x = x.transpose(0, 2, 4, 1, 3, 5)  # (N, gh, gw, C, p, p)
        return x.reshape(n, grid * grid, c * p * p)

    def features(self, x: Tensor) -> Tensor:
        """Pooled embedding ``(N, hidden_dim)`` before the classifier."""
        tokens = self.embed(self._patchify(x))
        for block in self.mixer_blocks:
            tokens = block(tokens)
        return self.norm(tokens).mean(axis=1)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.features(x))


def mixer_small(
    num_classes: int, rng: np.random.Generator, image_size: int = 16, in_channels: int = 3
) -> MLPMixer:
    """The CPU-scale MLP-Mixer used throughout the benchmarks."""
    return MLPMixer(
        image_size=image_size,
        patch_size=4,
        in_channels=in_channels,
        hidden_dim=32,
        token_mlp_dim=16,
        channel_mlp_dim=64,
        depth=2,
        num_classes=num_classes,
        rng=rng,
    )
