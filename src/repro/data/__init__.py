"""Synthetic multi-task vision data (the offline substitute for the
paper's image datasets — see DESIGN.md, substitution table)."""

from repro.data.tasks import TaskDistribution, TaskSpec
from repro.data.synthetic import SyntheticTaskData, generate_task_data, merge_tasks
from repro.data.loaders import batches
from repro.data.stream import StreamStep, TaskStream, interpolate_tasks

__all__ = [
    "StreamStep",
    "SyntheticTaskData",
    "TaskDistribution",
    "TaskSpec",
    "TaskStream",
    "batches",
    "generate_task_data",
    "interpolate_tasks",
    "merge_tasks",
]
