"""Tests for validation tracking in Trainer.fit."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Linear, ReLU, Sequential
from repro.train import Adam, Trainer
from repro.train.trainer import TrainResult


def toy_problem(rng, n=96, w=None):
    x = rng.normal(size=(n, 6)).astype(np.float32)
    if w is None:
        w = rng.normal(size=(6, 3)).astype(np.float32)
    return x, (x @ w).argmax(axis=1), w


class TestValidationTracking:
    def test_records_one_entry_per_epoch(self, rng):
        x, y, w = toy_problem(rng)
        vx, vy, __ = toy_problem(rng, n=32, w=w)
        model = Sequential(Linear(6, 3, rng=rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        result = trainer.fit(x, y, epochs=4, batch_size=16, rng=rng, validation=(vx, vy))
        assert len(result.validation_accuracies) == 4
        assert all(0.0 <= a <= 1.0 for a in result.validation_accuracies)

    def test_no_validation_by_default(self, rng):
        x, y, __ = toy_problem(rng)
        model = Sequential(Linear(6, 3, rng=rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        result = trainer.fit(x, y, epochs=2, batch_size=16, rng=rng)
        assert result.validation_accuracies == []
        with pytest.raises(TrainingError):
            result.best_validation_accuracy

    def test_best_validation_accuracy(self):
        result = TrainResult(validation_accuracies=[0.4, 0.7, 0.6])
        assert result.best_validation_accuracy == 0.7

    def test_early_stopping_halts_training(self, rng):
        from repro.train import EarlyStopping

        x, y, w = toy_problem(rng, n=64)
        vx, vy, __ = toy_problem(rng, n=32, w=w)
        model = Sequential(Linear(6, 3, rng=rng))
        # Zero LR: validation accuracy never changes -> stop after patience.
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-12))
        result = trainer.fit(
            x, y, epochs=20, batch_size=16, rng=rng,
            validation=(vx, vy), early_stopping=EarlyStopping(patience=2),
        )
        assert len(result.validation_accuracies) <= 4

    def test_early_stopping_requires_validation(self, rng):
        from repro.train import EarlyStopping

        x, y, __ = toy_problem(rng)
        model = Sequential(Linear(6, 3, rng=rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        with pytest.raises(TrainingError, match="validation"):
            trainer.fit(
                x, y, epochs=2, batch_size=16, rng=rng,
                early_stopping=EarlyStopping(patience=1),
            )

    def test_validation_improves_on_learnable_problem(self, rng):
        x, y, w = toy_problem(rng, n=256)
        vx, vy, __ = toy_problem(rng, n=64, w=w)
        model = Sequential(Linear(6, 16, rng=rng), ReLU(), Linear(16, 3, rng=rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        result = trainer.fit(x, y, epochs=8, batch_size=16, rng=rng, validation=(vx, vy))
        assert result.validation_accuracies[-1] > 0.6
