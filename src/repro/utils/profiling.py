"""Legacy flat-profiler API — now a compatibility shim over ``repro.obs``.

.. deprecated::
    The per-op profiling registry this module used to own has been
    replaced by the structured observability layer in :mod:`repro.obs`
    (typed metrics + hierarchical trace spans).  Every internal call
    site now reports into :data:`repro.obs.OBS`; this module keeps the
    historical surface — :data:`PROFILER`, :class:`Profiler`,
    :class:`OpStats`, :func:`profiled` — working unchanged on top of it.

The shim is *live*, not a fork: ``PROFILER`` shares the process-wide
:data:`~repro.obs.metrics.METRICS` registry, so ``PROFILER.enable()``
enables the new registry, events recorded through either API land in
the same series, and ``PROFILER.snapshot()`` / ``as_dict()`` derive the
**pre-redesign flat format** from the registry: dotted names mapping to
``calls`` / ``seconds`` / ``bytes``, with histogram buckets flattened
to their historical ``name.<bucket>`` spellings (``serve.batch.size.8``).
A regression test pins that derived output equal to what the old
profiler produced (``tests/utils/test_profiling.py``).

Counter names are unchanged: ``einsum.forward`` / ``einsum.backward``,
``conv2d.forward`` / ``conv2d.backward``, ``einsum.plan_cache.hit`` /
``.miss``, ``conv2d.patches_cache.hit`` / ``.miss``, the backward sweep
counters (``backward.sweep`` / ``backward.inplace_accum`` /
``backward.released``), the runtime's fault-tolerance counters
(``retry.*`` / ``timeout.cell`` / ``faults.*``) and the serving
counters (``serve.*``).  New code should use :data:`repro.obs.OBS`
directly — see ``docs/observability.md``.
"""

from __future__ import annotations

import contextlib
from dataclasses import asdict, dataclass
from typing import Iterator

from repro.obs.metrics import METRICS, MetricsRegistry


@dataclass
class OpStats:
    """Accumulated counters for one named operation (legacy view)."""

    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0

    def merge(self, seconds: float, nbytes: int) -> None:
        self.calls += 1
        self.seconds += seconds
        self.bytes += nbytes


class Profiler:
    """Flat-profiler facade over a :class:`~repro.obs.metrics.MetricsRegistry`.

    A bare ``Profiler()`` owns a private registry (what older tests and
    callers construct for isolation); the module-level :data:`PROFILER`
    wraps the shared :data:`repro.obs.METRICS` registry, so the legacy
    and new APIs observe the same state.
    """

    def __init__(
        self, enabled: bool = False, registry: MetricsRegistry | None = None
    ) -> None:
        self._registry = (
            registry if registry is not None else MetricsRegistry(enabled=enabled)
        )
        if registry is not None and enabled:
            self._registry.enable()

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._registry.enabled = bool(value)

    @property
    def registry(self) -> MetricsRegistry:
        """The backing registry (the migration path off this shim)."""
        return self._registry

    def enable(self) -> "Profiler":
        self._registry.enable()
        return self

    def disable(self) -> "Profiler":
        self._registry.disable()
        return self

    def reset(self) -> None:
        self._registry.reset()

    def record(self, name: str, seconds: float, nbytes: int = 0) -> None:
        """Add one completed call to ``name``'s counters (no-op if disabled)."""
        self._registry.record_legacy(name, 1, seconds, nbytes, kind="timer")

    def bump(self, name: str, nbytes: int = 0) -> None:
        """Count an event with no duration (cache hits, allocations)."""
        self._registry.record_legacy(name, 1, 0.0, nbytes, kind="counter")

    def add(self, name: str, calls: int, seconds: float = 0.0, nbytes: int = 0) -> None:
        """Fold ``calls`` pre-counted events into ``name`` at once."""
        self._registry.record_legacy(name, calls, seconds, nbytes, kind="counter")

    def merge_counters(self, counters: dict[str, dict[str, float]]) -> None:
        """Fold an :meth:`as_dict`-style snapshot into this profiler.

        Accepts both the legacy flat format and the unified
        metrics-snapshot schema (entries carrying a ``kind`` merge with
        full fidelity).  Works even when disabled, since the merged
        events were gated at their origin.
        """
        if any(isinstance(s, dict) and "kind" in s for s in counters.values()):
            self._registry.merge(counters)
        else:
            self._registry.merge_legacy(counters)

    @contextlib.contextmanager
    def track(self, name: str, nbytes: int = 0) -> Iterator[None]:
        """Time the block and record it under ``name``."""
        if not self._registry.enabled:
            yield
            return
        import time

        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start, nbytes)

    def snapshot(self) -> dict[str, OpStats]:
        """The pre-redesign flat view, derived from the registry."""
        return {
            name: OpStats(
                int(stats["calls"]), float(stats["seconds"]), int(stats["bytes"])
            )
            for name, stats in self._registry.legacy_counters().items()
        }

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-friendly legacy view of the counters."""
        return {name: asdict(stats) for name, stats in self.snapshot().items()}


#: The process-wide shim; shares state with :data:`repro.obs.METRICS`.
PROFILER = Profiler(registry=METRICS)


@contextlib.contextmanager
def profiled() -> Iterator[Profiler]:
    """Enable the global profiler for a block, restoring state after.

    Counters accumulated before the block are preserved; use
    ``PROFILER.reset()`` first for a clean window.
    """
    previous = PROFILER.enabled
    PROFILER.enabled = True
    try:
        yield PROFILER
    finally:
        PROFILER.enabled = previous
