"""Unit tests for the generic typed grid (:mod:`repro.runtime.grid`).

A toy two-axis spec exercises the machinery without any training:
cartesian cell ordering, manifest canonicalization, spec validation,
checkpoint/resume round-trips, and strict/non-strict failure handling.
The real clients (`run_table1_grid`, `run_robustness_grid`) are pinned
by their own acceptance tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import ConfigError, WorkerError
from repro.runtime.grid import GridSpec, run_grid


@dataclass(frozen=True)
class ToyConfig:
    scale: int = 10


def _toy_cell(payload):
    config, _context, key = payload
    seed, method = key
    if method == "boom":
        raise ValueError("boom cell failed")
    return f"{seed}:{method}:{config.scale}"


def _toy_spec(config=ToyConfig(), seeds=(0, 1), methods=("a", "b")):
    return GridSpec(
        name="toy",
        config=config,
        axes={"seeds": seeds, "methods": methods},
        cell_fn=_toy_cell,
        cell_payload=lambda cfg, context, key: (cfg, context, key),
        artifact_kind="toy_cell",
        cell_filename=lambda key: f"s{key[0]}__{key[1]}.npz",
        encode_cell=lambda key, value: (
            {"scale": np.asarray([int(value.rsplit(":", 1)[1])])},
            {"seed": int(key[0]), "method": key[1]},
        ),
        decode_cell=lambda key, arrays, meta, path: (
            f"{key[0]}:{key[1]}:{int(arrays['scale'][0])}"
        ),
    )


class TestGridSpec:
    def test_cells_are_the_cartesian_product_in_axis_order(self):
        spec = _toy_spec(seeds=(1, 0), methods=("b", "a"))
        assert spec.cells() == [(1, "b"), (1, "a"), (0, "b"), (0, "a")]

    def test_run_kind_derives_from_name(self):
        assert _toy_spec().run_kind == "toy_run"

    def test_manifest_grid_canonicalizes_int_axes(self):
        spec = _toy_spec(seeds=(2, 0, 2), methods=("b", "a"))
        spec.manifest_extra = {"backbone": "toy"}
        grid = spec.manifest_grid()
        assert grid["seeds"] == [0, 2]  # sorted, deduplicated
        assert grid["methods"] == ["b", "a"]  # categorical: kept in order
        assert grid["backbone"] == "toy"

    def test_empty_axes_refused(self):
        spec = _toy_spec()
        spec.axes = {}
        with pytest.raises(ConfigError, match="has no axes"):
            spec.validate()

    def test_empty_axis_values_refused(self):
        spec = _toy_spec(seeds=())
        with pytest.raises(ConfigError, match="axis 'seeds' has no values"):
            spec.validate()

    def test_partial_context_hooks_refused(self):
        spec = _toy_spec()
        spec.context_fn = lambda payload: None
        with pytest.raises(ConfigError, match="all of context_fn"):
            spec.validate()


class TestRunGrid:
    def test_serial_values(self):
        result = run_grid(_toy_spec())
        assert result.values == {
            (0, "a"): "0:a:10",
            (0, "b"): "0:b:10",
            (1, "a"): "1:a:10",
            (1, "b"): "1:b:10",
        }
        assert result.restored == []
        assert result.run_dir is None
        assert result.failures == []

    def test_parallel_matches_serial(self):
        serial = run_grid(_toy_spec())
        parallel = run_grid(_toy_spec(), jobs=2)
        assert parallel.values == serial.values

    def test_resume_restores_completed_cells(self, tmp_path):
        root = tmp_path / "run"
        first = run_grid(_toy_spec(), out_dir=root)
        resumed = run_grid(_toy_spec(), resume=root)
        assert resumed.values == first.values
        assert resumed.restored == sorted(first.values)
        assert resumed.cell_results == []  # nothing re-ran

    def test_resume_reruns_only_missing_cells(self, tmp_path):
        root = tmp_path / "run"
        first = run_grid(_toy_spec(), out_dir=root)
        (root / "cells" / "s1__b.npz").unlink()
        resumed = run_grid(_toy_spec(), resume=root)
        assert [r.key for r in resumed.cell_results] == [(1, "b")]
        assert resumed.values == first.values

    def test_strict_failure_raises_worker_error(self):
        with pytest.raises(WorkerError, match="boom"):
            run_grid(_toy_spec(methods=("a", "boom")))

    def test_non_strict_failure_reported_not_raised(self):
        result = run_grid(_toy_spec(methods=("a", "boom")), strict=False)
        assert set(result.values) == {(0, "a"), (1, "a")}
        assert len(result.failures) == 2  # one boom cell per seed
        assert all("boom" in str(f) for f in result.failures)
