"""Parameter accounting.

The PEFT literature's headline number is the trainable-parameter fraction;
these helpers compute it per model and per adapter, and back the Figure 4
parameter-count bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.module import Module
from repro.peft.base import iter_adapters


@dataclass
class ParameterCounts:
    """Totals for one model."""

    total: int
    trainable: int

    @property
    def trainable_fraction(self) -> float:
        return self.trainable / self.total if self.total else 0.0


def count_parameters(model: Module) -> ParameterCounts:
    """Total and trainable scalar counts for ``model``."""
    return ParameterCounts(
        total=model.parameter_count(),
        trainable=model.parameter_count(trainable_only=True),
    )


def adapter_parameter_table(model: Module) -> list[dict[str, object]]:
    """Per-adapter rows: name, type, rank, and added parameter count."""
    rows = []
    for name, adapter in iter_adapters(model):
        rows.append(
            {
                "layer": name,
                "type": type(adapter).__name__,
                "rank": getattr(adapter, "rank", None),
                "added_parameters": adapter.extra_parameter_count(),
                "base_parameters": adapter.base.parameter_count(),
            }
        )
    return rows


def format_table(rows: list[dict[str, object]]) -> str:
    """Plain-text rendering of :func:`adapter_parameter_table` output."""
    if not rows:
        return "(no adapters)"
    headers = list(rows[0])
    widths = {
        h: max(len(h), max(len(str(row[h])) for row in rows)) for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
