"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.module import Parameter
from repro.train import SGD, Adam, AdamW, ConstantSchedule, CosineSchedule, StepSchedule


def quadratic_params(start=5.0):
    p = Parameter(np.array([start], dtype=np.float64))
    return p


def quadratic_step(p):
    # loss = p^2, grad = 2p (set manually — the optimizer only sees grads)
    p.grad = 2.0 * p.data
    return float(p.data[0] ** 2)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = SGD([p], lr=0.1)
        for __ in range(100):
            quadratic_step(p)
            opt.step()
            opt.zero_grad()
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        plain, momentum = quadratic_params(), quadratic_params()
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for __ in range(30):
            quadratic_step(plain)
            opt_plain.step()
            quadratic_step(momentum)
            opt_momentum.step()
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_none_gradients(self):
        p, q = Parameter(np.ones(1)), Parameter(np.ones(1))
        opt = SGD([p, q], lr=0.1)
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        assert q.data[0] == 1.0
        assert p.data[0] < 1.0

    def test_validation(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)
        with pytest.raises(TrainingError):
            SGD([Parameter(np.ones(1))], lr=-1.0)
        with pytest.raises(TrainingError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.5)
        for __ in range(200):
            quadratic_step(p)
            opt.step()
            opt.zero_grad()
        assert abs(p.data[0]) < 1e-2

    def test_first_step_size_near_lr(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([4.0], dtype=np.float32)
        opt.step()
        # Bias-corrected Adam's first step is ~lr regardless of grad scale.
        assert 10.0 - p.data[0] == pytest.approx(0.1, rel=0.01)

    def test_adamw_decay_decoupled(self):
        p_adam = Parameter(np.array([1.0]))
        p_adamw = Parameter(np.array([1.0]))
        adam = Adam([p_adam], lr=0.1, weight_decay=0.5)
        adamw = AdamW([p_adamw], lr=0.1, weight_decay=0.5)
        p_adam.grad = np.zeros(1, dtype=np.float32)
        p_adamw.grad = np.zeros(1, dtype=np.float32)
        adam.step()
        adamw.step()
        # AdamW shrinks by exactly lr*wd; Adam (with zero grad but nonzero
        # decay folded into grad) moves by a normalized step.
        assert p_adamw.data[0] == pytest.approx(0.95)

    def test_set_lr(self):
        p = Parameter(np.ones(1))
        opt = Adam([p], lr=0.1)
        opt.set_lr(0.5)
        assert opt.lr == 0.5


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.3)
        assert schedule(0) == schedule(1000) == 0.3

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(1.0, total_steps=100, final_lr=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(50) == pytest.approx(0.55)
        assert schedule(200) == pytest.approx(0.1)  # clamped past the end

    def test_cosine_monotone_decreasing(self):
        schedule = CosineSchedule(1.0, total_steps=10)
        values = [schedule(i) for i in range(11)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_step_schedule(self):
        schedule = StepSchedule(1.0, step_size=10, gamma=0.1)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(25) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(TrainingError):
            CosineSchedule(1.0, total_steps=0)
        with pytest.raises(TrainingError):
            StepSchedule(1.0, step_size=0)
