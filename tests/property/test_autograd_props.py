"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, einsum, relu, softmax, tensor

SETTINGS = dict(max_examples=50, deadline=None)


def arrays(shape):
    return hnp.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(-10, 10, allow_nan=False, width=64),
    )


class TestAlgebraicIdentities:
    @given(arrays((3, 4)), arrays((3, 4)))
    @settings(**SETTINGS)
    def test_addition_commutes(self, a, b):
        lhs = (tensor(a, dtype=np.float64) + tensor(b, dtype=np.float64)).data
        rhs = (tensor(b, dtype=np.float64) + tensor(a, dtype=np.float64)).data
        assert np.allclose(lhs, rhs)

    @given(arrays((3, 4)))
    @settings(**SETTINGS)
    def test_double_negation(self, a):
        assert np.allclose((-(-tensor(a, dtype=np.float64))).data, a)

    @given(arrays((2, 3)), arrays((3, 4)), arrays((4, 2)))
    @settings(**SETTINGS)
    def test_matmul_associative(self, a, b, c):
        ta, tb, tc = (tensor(x, dtype=np.float64) for x in (a, b, c))
        lhs = ((ta @ tb) @ tc).data
        rhs = (ta @ (tb @ tc)).data
        assert np.allclose(lhs, rhs, atol=1e-6)

    @given(arrays((4, 5)))
    @settings(**SETTINGS)
    def test_relu_idempotent(self, a):
        t = tensor(a, dtype=np.float64)
        assert np.allclose(relu(relu(t)).data, relu(t).data)

    @given(arrays((4, 5)))
    @settings(**SETTINGS)
    def test_softmax_is_distribution(self, a):
        out = softmax(tensor(a, dtype=np.float64)).data
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)


class TestGradientLinearity:
    @given(arrays((3, 3)))
    @settings(**SETTINGS)
    def test_sum_gradient_is_ones(self, a):
        t = tensor(a, requires_grad=True, dtype=np.float64)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    @given(arrays((3, 3)), st.floats(-5, 5, allow_nan=False))
    @settings(**SETTINGS)
    def test_scaling_loss_scales_gradient(self, a, scale):
        t1 = tensor(a, requires_grad=True, dtype=np.float64)
        (t1 * t1).sum().backward()
        t2 = tensor(a, requires_grad=True, dtype=np.float64)
        ((t2 * t2) * scale).sum().backward()
        assert np.allclose(t2.grad, scale * t1.grad, atol=1e-8)

    @given(arrays((2, 4)))
    @settings(**SETTINGS)
    def test_gradient_of_identity_composition(self, a):
        t = tensor(a, requires_grad=True, dtype=np.float64)
        t.reshape(4, 2).transpose(1, 0).reshape(2, 4).sum().backward()
        assert np.allclose(t.grad, 1.0)


class TestEinsumProperties:
    @given(arrays((3, 4)), arrays((4, 5)))
    @settings(**SETTINGS)
    def test_einsum_matches_matmul(self, a, b):
        ta, tb = tensor(a, dtype=np.float64), tensor(b, dtype=np.float64)
        assert np.allclose(einsum("ij,jk->ik", ta, tb).data, a @ b, atol=1e-8)

    @given(arrays((3, 4)))
    @settings(**SETTINGS)
    def test_einsum_transpose_involution(self, a):
        t = tensor(a, dtype=np.float64)
        double = einsum("ji->ij", einsum("ij->ji", t))
        assert np.allclose(double.data, a)

    @given(arrays((3, 4)), arrays((3, 4)))
    @settings(**SETTINGS)
    def test_einsum_linear_in_first_argument(self, a, b):
        w = tensor(np.ones((4, 2)), dtype=np.float64)
        lhs = einsum("ij,jk->ik", tensor(a + b, dtype=np.float64), w).data
        rhs = (
            einsum("ij,jk->ik", tensor(a, dtype=np.float64), w).data
            + einsum("ij,jk->ik", tensor(b, dtype=np.float64), w).data
        )
        assert np.allclose(lhs, rhs, atol=1e-8)
