"""Tracer semantics: nesting, events, deltas, JSONL round-trip, reporting."""

import pytest

from repro.errors import ObsError
from repro.obs import (
    OBS,
    TRACER,
    Span,
    Tracer,
    build_trees,
    load_trace,
    observed,
    render_trace_report,
    render_trace_target,
    resolve_trace_path,
    write_trace,
)
from repro.obs.trace import _NULL_SPAN


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        (root,) = tracer.drain()
        assert root["name"] == "parent"
        (child,) = root["children"]
        assert child["name"] == "child"
        assert child["children"][0]["name"] == "grandchild"

    def test_sequential_roots_stay_separate(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        roots = tracer.drain()
        assert [r["name"] for r in roots] == ["first", "second"]
        assert tracer.drain() == []  # drain pops

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("work", seed=0):
                raise ValueError("boom")
        (root,) = tracer.drain()
        assert root["status"] == "error"
        assert root["attrs"]["error"] == "ValueError: boom"
        assert root["attrs"]["seed"] == 0

    def test_event_attaches_to_innermost_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("retry", attempt=1)
        (root,) = tracer.drain()
        assert root["events"] == []
        (event,) = root["children"][0]["events"]
        assert event["name"] == "retry"
        assert event["attrs"] == {"attempt": 1}

    def test_event_without_open_span_is_a_noop(self):
        tracer = Tracer(enabled=True)
        tracer.event("orphan")
        assert tracer.drain() == []

    def test_disabled_span_is_the_shared_null_manager(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", key=1) is _NULL_SPAN
        with tracer.span("anything"):
            pass
        assert tracer.drain() == []

    def test_current_exposes_the_open_span(self):
        tracer = Tracer(enabled=True)
        assert tracer.current() is None
        with tracer.span("open") as span:
            assert tracer.current() is span


class TestMetricDeltas:
    def test_span_records_the_metric_delta_of_its_region(self):
        with observed():
            OBS.inc("before.noise", 5)
            with TRACER.span("region"):
                OBS.inc("work.done", 2, bytes=10)
            (root,) = TRACER.drain()
        assert root["metrics"] == {"work.done": {"calls": 2, "seconds": 0.0, "bytes": 10}}

    def test_no_delta_without_metrics_enabled(self):
        TRACER.enable()
        try:
            with TRACER.span("region"):
                pass
            (root,) = TRACER.drain()
        finally:
            TRACER.disable()
        assert root["metrics"] == {}


class TestAbsorb:
    def test_absorb_attaches_under_open_span(self):
        tracer = Tracer(enabled=True)
        shipped = Span("worker.cell", {"key": "0/lora"})
        with tracer.span("parent"):
            tracer.absorb([shipped.to_dict()])
        (root,) = tracer.drain()
        assert [c["name"] for c in root["children"]] == ["worker.cell"]

    def test_absorb_without_open_span_creates_roots(self):
        tracer = Tracer(enabled=False)  # absorb works regardless of enabled
        tracer.absorb([Span("worker.cell", {}).to_dict()])
        (root,) = tracer.drain()
        assert root["name"] == "worker.cell"


class TestJsonlRoundTrip:
    def roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("grid", jobs=2):
            with tracer.span("cell", key="0/lora"):
                tracer.event("retry", attempt=1)
            with tracer.span("cell", key="0/original"):
                pass
        return tracer.drain()

    def test_write_load_build_trees_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_trace(path, self.roots())
        assert written == 3
        records = load_trace(path)
        assert len(records) == 3
        (tree,) = build_trees(records)
        assert tree["name"] == "grid"
        assert [c["name"] for c in tree["children"]] == ["cell", "cell"]
        assert tree["children"][0]["events"][0]["name"] == "retry"

    def test_appended_exports_never_collide(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, self.roots())
        write_trace(path, self.roots())  # a resumed run appends
        records = load_trace(path)
        assert len(records) == 6
        trees = build_trees(records)
        assert [t["name"] for t in trees] == ["grid", "grid"]
        assert len({r["trace"] for r in records}) == 2

    def test_write_trace_with_no_spans_writes_nothing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, []) == 0
        assert not path.exists()

    def test_load_trace_rejects_junk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok", "id": 1}\nnot json\n')
        with pytest.raises(ObsError, match="unparsable"):
            load_trace(path)
        path.write_text('{"id": 1}\n')
        with pytest.raises(ObsError, match="not a span record"):
            load_trace(path)

    def test_orphan_parents_surface_as_roots(self):
        records = [
            {"trace": "t", "id": 2, "parent": 99, "name": "orphan"},
        ]
        (tree,) = build_trees(records)
        assert tree["name"] == "orphan"


class TestReport:
    def test_report_renders_tree_phases_and_slowest(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, TestJsonlRoundTrip().roots())
        report = render_trace_target(tmp_path)
        assert "trace report" in report
        assert "grid" in report and "cell" in report
        assert "per-phase breakdown" in report
        assert "slowest" in report

    def test_error_spans_are_marked(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("x")
        report = render_trace_report(
            [dict(r, trace="t", id=i + 1, parent=None) for i, r in enumerate(tracer.drain())]
        )
        assert "!ERROR" in report
        assert "1 error(s)" in report

    def test_empty_records_render_a_stub(self):
        assert "no spans" in render_trace_report([])

    def test_resolve_trace_path_errors(self, tmp_path):
        with pytest.raises(ObsError, match="--out-dir"):
            resolve_trace_path(tmp_path)  # a dir without a trace export
        with pytest.raises(ObsError, match="no trace file"):
            resolve_trace_path(tmp_path / "missing.jsonl")
