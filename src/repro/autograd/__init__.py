"""Reverse-mode automatic differentiation on numpy arrays.

This package is the substrate that replaces PyTorch in this reproduction:
a :class:`Tensor` records the operations applied to it, and
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order accumulating gradients.  All neural layers, LoRA variants and the
MetaLoRA contraction formats are differentiated through this engine.
"""

from repro.autograd.tensor import Tensor, no_grad, tensor, zeros_like
from repro.autograd.ops import (
    concat,
    dropout,
    einsum,
    exp,
    gelu,
    log,
    log_softmax,
    maximum,
    relu,
    sigmoid,
    softmax,
    sqrt,
    stack,
    tanh,
    where,
)
from repro.autograd.conv_ops import avg_pool2d, conv2d, max_pool2d, pad2d
from repro.autograd.grad_check import check_gradients

__all__ = [
    "Tensor",
    "avg_pool2d",
    "check_gradients",
    "concat",
    "conv2d",
    "dropout",
    "einsum",
    "exp",
    "gelu",
    "log",
    "log_softmax",
    "max_pool2d",
    "maximum",
    "no_grad",
    "pad2d",
    "relu",
    "sigmoid",
    "softmax",
    "sqrt",
    "stack",
    "tanh",
    "tensor",
    "where",
    "zeros_like",
]
