"""Parallel experiment runtime: durable process-pool sharding of cells.

Public surface:

- :func:`run_cells` / :class:`CellResult` / :class:`CellFailure` — the
  generic deterministic cell runner with crash isolation, retry with
  deterministic backoff, per-cell soft timeouts, streamed results and a
  serial fallback (``jobs=1`` or no ``fork``);
- :class:`GridSpec` / :func:`run_grid` / :class:`GridResult` — the
  generic typed experiment grid: axes, cell fn, artifact kind; owns
  checkpointing, ``--resume``, retry/backoff, per-cell timeouts, and obs
  spans once for every grid family;
- :func:`run_table1_grid` / :class:`Table1GridResult` — the Table I
  ``seeds × methods`` grid, a thin shim over :func:`run_grid`,
  bit-identical to the serial protocol loop;
- :func:`run_robustness_grid` / :class:`RobustnessGridResult` — the
  robustness-under-shift ``seeds × methods × corruptions × severities``
  grid, the second :class:`GridSpec` client;
- :class:`RunDir` / :func:`config_fingerprint` — the run-directory
  layer: a JSON manifest plus one versioned artifact per completed cell;
- :func:`fork_available` / :func:`resolve_jobs` — platform helpers the
  CLI ``--jobs`` flags build on.

See ``docs/runtime.md`` for the design, the determinism contract, and
the fault-injection hook (``REPRO_FAULTS``) that makes the failure paths
testable.
"""

from repro.runtime.pool import (
    CellFailure,
    CellResult,
    fork_available,
    raise_failures,
    resolve_jobs,
    run_cells,
)
from repro.runtime.grid import GridResult, GridSpec, run_grid
from repro.runtime.rundir import RunDir, config_fingerprint
from repro.runtime.table1 import Table1GridResult, run_table1_grid
from repro.runtime.robustness import RobustnessGridResult, run_robustness_grid

__all__ = [
    "CellFailure",
    "CellResult",
    "GridResult",
    "GridSpec",
    "RobustnessGridResult",
    "RunDir",
    "Table1GridResult",
    "config_fingerprint",
    "fork_available",
    "raise_failures",
    "resolve_jobs",
    "run_cells",
    "run_grid",
    "run_robustness_grid",
    "run_table1_grid",
]
