"""Tensor Train (TT) format.

The open-chain special case of the Tensor Ring (boundary ranks fixed at
1): cores ``G_k ∈ R^{R_{k-1} × I_k × R_k}`` with ``R_0 = R_N = 1``.  TT is
the format behind the LoRETTA / TT-LoRA family the related-work section
situates MetaLoRA against, so the repository ships it both as a
stand-alone format and as the :class:`~repro.peft.tt_lora.TTLoRALinear`
baseline adapter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError, ShapeError


@dataclass
class TTTensor:
    """An open chain of 3-way cores with unit boundary ranks."""

    cores: list[np.ndarray]

    def __post_init__(self) -> None:
        self.cores = [np.asarray(core) for core in self.cores]
        if not self.cores:
            raise ShapeError("a TT tensor needs at least one core")
        for k, core in enumerate(self.cores):
            if core.ndim != 3:
                raise ShapeError(f"TT core {k} must be 3-way, got order {core.ndim}")
        if self.cores[0].shape[0] != 1 or self.cores[-1].shape[2] != 1:
            raise ShapeError(
                "TT boundary ranks must be 1, got "
                f"{self.cores[0].shape[0]} and {self.cores[-1].shape[2]}"
            )
        for k in range(len(self.cores) - 1):
            if self.cores[k].shape[2] != self.cores[k + 1].shape[0]:
                raise ShapeError(
                    f"TT chain broken between cores {k} and {k + 1}: "
                    f"{self.cores[k].shape[2]} vs {self.cores[k + 1].shape[0]}"
                )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(core.shape[1] for core in self.cores)

    @property
    def ranks(self) -> tuple[int, ...]:
        """Interior bond ranks ``(R₁, …, R_{N-1})``."""
        return tuple(core.shape[2] for core in self.cores[:-1])

    def parameter_count(self) -> int:
        return sum(core.size for core in self.cores)


def tt_to_tensor(tt: TTTensor) -> np.ndarray:
    """Materialize the full tensor by chaining the cores."""
    result = tt.cores[0]  # (1, I1, R1)
    for core in tt.cores[1:]:
        result = np.tensordot(result, core, axes=(result.ndim - 1, 0))
    return result.reshape(result.shape[1:-1])


def random_tt(
    shape: tuple[int, ...], rank: int, rng: np.random.Generator
) -> TTTensor:
    """A random TT tensor with uniform interior rank ``rank``."""
    if rank <= 0:
        raise ShapeError(f"TT rank must be positive, got {rank}")
    if len(shape) < 1:
        raise ShapeError("TT tensor needs at least one mode")
    cores = []
    left = 1
    for k, dim in enumerate(shape):
        right = 1 if k == len(shape) - 1 else rank
        cores.append(rng.normal(size=(left, dim, right)) / np.sqrt(max(left, 1)))
        left = right
    return TTTensor(cores=cores)


def tt_decompose(tensor: np.ndarray, max_rank: int) -> TTTensor:
    """TT-SVD (Oseledets): sequential truncated SVDs along the chain.

    Exact when ``max_rank`` is at least the TT-rank of the input.
    """
    if max_rank <= 0:
        raise ShapeError(f"max_rank must be positive, got {max_rank}")
    if tensor.ndim < 1:
        raise ShapeError("TT decomposition needs at least one mode")
    shape = tensor.shape
    if tensor.ndim == 1:
        return TTTensor(cores=[tensor.reshape(1, -1, 1)])

    cores: list[np.ndarray] = []
    remaining = tensor.reshape(shape[0], -1)
    left_rank = 1
    for k in range(len(shape) - 1):
        matrix = remaining.reshape(left_rank * shape[k], -1)
        try:
            u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        except np.linalg.LinAlgError as exc:
            raise DecompositionError(f"SVD failed during TT-SVD: {exc}") from exc
        effective = int((s > s[0] * 1e-12).sum()) if s.size else 1
        rank = max(1, min(max_rank, effective))
        cores.append(u[:, :rank].reshape(left_rank, shape[k], rank))
        remaining = (s[:rank, None] * vt[:rank]).reshape(rank, -1)
        left_rank = rank
    cores.append(remaining.reshape(left_rank, shape[-1], 1))
    return TTTensor(cores=cores)


def factorize_dim(dim: int, parts: int) -> tuple[int, ...]:
    """Split ``dim`` into ``parts`` roughly balanced integer factors.

    TT adapters reshape a weight axis of size ``I`` into a grid
    ``I₁ × … × I_p``; this helper picks the factorization (largest prime
    factors spread first), e.g. ``factorize_dim(12, 2) == (4, 3)``.
    """
    if dim <= 0 or parts <= 0:
        raise ShapeError(f"dim and parts must be positive, got ({dim}, {parts})")
    factors = [1] * parts
    remaining = dim
    divisor = 2
    primes = []
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            primes.append(divisor)
            remaining //= divisor
        divisor += 1
    if remaining > 1:
        primes.append(remaining)
    for prime in sorted(primes, reverse=True):
        smallest = int(np.argmin(factors))
        factors[smallest] *= prime
    return tuple(sorted(factors, reverse=True))
