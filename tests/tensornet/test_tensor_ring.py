"""Tests for the Tensor Ring format and TT-SVD decomposition."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensornet import TRTensor, random_tr, tr_decompose, tr_to_tensor


class TestTRTensor:
    def test_shape_and_ranks(self, rng):
        tr = random_tr((4, 5, 6), 3, rng)
        assert tr.shape == (4, 5, 6)
        assert tr.ranks == (3, 3, 3)

    def test_parameter_count(self, rng):
        tr = random_tr((4, 5), 2, rng)
        assert tr.parameter_count() == 2 * 4 * 2 + 2 * 5 * 2

    def test_broken_ring_raises(self, rng):
        cores = [rng.normal(size=(2, 4, 3)), rng.normal(size=(3, 5, 5))]
        with pytest.raises(ShapeError, match="ring broken"):
            TRTensor(cores=cores)

    def test_non_3way_core_raises(self, rng):
        with pytest.raises(ShapeError, match="3-way"):
            TRTensor(cores=[rng.normal(size=(2, 4))])

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            TRTensor(cores=[])


class TestReconstruction:
    def test_trace_formula_elementwise(self, rng):
        tr = random_tr((3, 4, 5), 2, rng)
        full = tr_to_tensor(tr)
        for index in [(0, 0, 0), (2, 3, 4), (1, 2, 3)]:
            i, j, k = index
            chain = tr.cores[0][:, i, :] @ tr.cores[1][:, j, :] @ tr.cores[2][:, k, :]
            assert full[index] == pytest.approx(np.trace(chain))

    def test_order_two_ring(self, rng):
        tr = random_tr((4, 6), 3, rng)
        full = tr_to_tensor(tr)
        manual = np.einsum("pir,rjq->pirjq", tr.cores[0], tr.cores[1])
        manual = np.einsum("pirjp->ij", manual)
        assert np.allclose(full, manual)

    def test_rank_one_ring_is_scaled_outer_product(self, rng):
        tr = random_tr((3, 4), 1, rng)
        full = tr_to_tensor(tr)
        assert np.linalg.matrix_rank(full, tol=1e-10) <= 1


class TestDecomposition:
    def test_exact_roundtrip_with_enough_rank(self, rng):
        target = tr_to_tensor(random_tr((4, 5, 6), 2, rng))
        est = tr_decompose(target, max_rank=32)
        assert np.allclose(tr_to_tensor(est), target, atol=1e-8)

    def test_boundary_ranks_are_one(self, rng):
        est = tr_decompose(rng.normal(size=(3, 4, 5)), max_rank=8)
        assert est.cores[0].shape[0] == 1
        assert est.cores[-1].shape[2] == 1

    def test_truncation_monotone(self, rng):
        target = rng.normal(size=(6, 6, 6))
        errs = []
        for rank in (1, 3, 6):
            est = tr_decompose(target, max_rank=rank)
            errs.append(np.linalg.norm(tr_to_tensor(est) - target))
        assert errs[0] >= errs[1] >= errs[2]

    def test_shapes_preserved(self, rng):
        est = tr_decompose(rng.normal(size=(2, 7, 3)), max_rank=4)
        assert est.shape == (2, 7, 3)

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ShapeError):
            tr_decompose(rng.normal(size=(3, 3)), max_rank=0)

    def test_rejects_vector(self, rng):
        with pytest.raises(ShapeError):
            tr_decompose(rng.normal(size=5), max_rank=2)
