"""Tucker format via higher-order SVD (HOSVD).

Included as the third classical format the related-work section discusses;
used in the ablation benches to contrast parameter counts against CP/TR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError, ShapeError
from repro.tensornet.contraction import mode_product, unfold


@dataclass
class TuckerTensor:
    """Core ``G ∈ R^{R₁×…×R_N}`` plus per-mode factors ``U^(n) ∈ R^{I_n×R_n}``."""

    core: np.ndarray
    factors: list[np.ndarray]

    def __post_init__(self) -> None:
        self.core = np.asarray(self.core)
        self.factors = [np.asarray(f) for f in self.factors]
        if self.core.ndim != len(self.factors):
            raise ShapeError(
                f"Tucker core order {self.core.ndim} does not match "
                f"{len(self.factors)} factors"
            )
        for n, factor in enumerate(self.factors):
            if factor.ndim != 2 or factor.shape[1] != self.core.shape[n]:
                raise ShapeError(
                    f"Tucker factor {n} must have shape (I_{n}, {self.core.shape[n]}), "
                    f"got {factor.shape}"
                )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(f.shape[0] for f in self.factors)

    def parameter_count(self) -> int:
        return self.core.size + sum(f.size for f in self.factors)


def tucker_to_tensor(tucker: TuckerTensor) -> np.ndarray:
    """Materialize ``G ×₁ U^(1) ×₂ U^(2) … ×_N U^(N)``."""
    result = tucker.core
    for mode, factor in enumerate(tucker.factors):
        result = mode_product(result, factor.T, mode)
    return result


def tucker_decompose(tensor: np.ndarray, ranks: tuple[int, ...]) -> TuckerTensor:
    """HOSVD: per-mode truncated SVD of the unfoldings, then core projection."""
    if len(ranks) != tensor.ndim:
        raise ShapeError(
            f"need one rank per mode: got {len(ranks)} ranks for order {tensor.ndim}"
        )
    factors = []
    for mode, rank in enumerate(ranks):
        if rank <= 0 or rank > tensor.shape[mode]:
            raise ShapeError(
                f"rank {rank} invalid for mode {mode} of size {tensor.shape[mode]}"
            )
        try:
            u, __, __vt = np.linalg.svd(unfold(tensor, mode), full_matrices=False)
        except np.linalg.LinAlgError as exc:
            raise DecompositionError(f"SVD failed in HOSVD: {exc}") from exc
        factors.append(u[:, :rank])
    core = tensor
    for mode, factor in enumerate(factors):
        core = mode_product(core, factor, mode)
    return TuckerTensor(core=core, factors=factors)
