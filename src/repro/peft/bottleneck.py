"""Bottleneck adapter tuning (Houlsby-style; the "Adapter Tuning" of Sec. V).

A small down-project → nonlinearity → up-project block added *after* the
frozen layer's output (rather than LoRA's parallel weight update).  The
up-projection is zero-initialized so the block starts as the identity.
Included as the classic non-LoRA PEFT baseline the related-work section
lists first.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.peft.base import Adapter


class BottleneckAdapter(Adapter):
    """``y = base(x); y + up(relu(down(y)))`` with a small bottleneck."""

    def __init__(
        self,
        base: Linear,
        bottleneck: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(
                f"BottleneckAdapter wraps Linear, got {type(base).__name__}"
            )
        if bottleneck <= 0:
            raise AdapterError(f"bottleneck must be positive, got {bottleneck}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.bottleneck = bottleneck
        out = base.out_features
        self.down = Parameter(init.normal(rng, (out, bottleneck), std=0.02))
        self.down_bias = Parameter(init.zeros((bottleneck,)))
        self.up = Parameter(init.zeros((bottleneck, out)))
        self.up_bias = Parameter(init.zeros((out,)))

    def forward(self, x: Tensor) -> Tensor:
        y = self.base(x)
        hidden = ops.relu(y @ self.down + self.down_bias)
        return y + hidden @ self.up + self.up_bias

    def extra_parameter_count(self) -> int:
        return (
            self.down.size + self.down_bias.size + self.up.size + self.up_bias.size
        )
