"""Adapter-only checkpointing.

The operational payoff of PEFT: a fine-tuned model ships as the frozen
base (shared across tasks) plus a tiny adapter file per task.  These
helpers extract and restore the adaptation state:

- every **trainable parameter** (adapters, mapping nets), and
- every **buffer** (BatchNorm running statistics) — frozen weights never
  change during adapter training, but normalization statistics *do*, and
  omitting them silently degrades a restored model.

Keys are namespaced (``param::`` / ``buffer::``) so the two kinds restore
through the right path.

On disk a checkpoint is a **versioned artifact**
(:func:`repro.utils.serialization.save_artifact`): the arrays plus an
embedded JSON manifest recording the format version, the adapter
families and ranks present in the model, and every array's shape/dtype.
:func:`load_adapter` validates the file against its manifest *and* the
target model before touching a single weight, raising
:class:`repro.errors.CheckpointError` with the exact mismatch instead of
failing deep in numpy — the same format the experiment run directories
(:mod:`repro.runtime.rundir`) use for cell checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Mapping

import numpy as np

from repro.errors import AdapterError, CheckpointError
from repro.nn.module import Module
from repro.utils.serialization import load_artifact, save_artifact

_PARAM = "param::"
_BUFFER = "buffer::"

#: Artifact ``kind`` for adapter checkpoints.
ADAPTER_KIND = "adapter"


def _buffer_items(model: Module) -> dict[str, tuple[Module, str]]:
    items: dict[str, tuple[Module, str]] = {}
    for name, module in model.named_modules():
        for buf_name in getattr(module, "_buffers", {}):
            key = f"{name}.{buf_name}" if name else buf_name
            items[key] = (module, buf_name)
    return items


def adapter_state_dict(model: Module) -> dict[str, np.ndarray]:
    """Copies of every trainable parameter and every buffer."""
    state = {
        _PARAM + name: param.data.copy()
        for name, param in model.named_parameters()
        if param.requires_grad
    }
    if not state:
        raise AdapterError("model has no trainable parameters to checkpoint")
    for key, (module, buf_name) in _buffer_items(model).items():
        state[_BUFFER + key] = module._buffers[buf_name].copy()
    return state


def load_adapter_state_dict(model: Module, state: Mapping[str, np.ndarray]) -> None:
    """Restore a state produced by :func:`adapter_state_dict`.

    Every parameter key must name a currently-trainable parameter with a
    matching shape; base (frozen) weights are never touched.
    """
    trainable = {
        _PARAM + name: param
        for name, param in model.named_parameters()
        if param.requires_grad
    }
    buffers = {
        _BUFFER + key: value for key, value in _buffer_items(model).items()
    }
    missing = (set(trainable) | set(buffers)) - set(state)
    unexpected = set(state) - set(trainable) - set(buffers)
    if missing or unexpected:
        raise AdapterError(
            f"adapter state mismatch: missing={sorted(missing)} "
            f"unexpected={sorted(unexpected)}"
        )
    for key, value in state.items():
        value = np.asarray(value)
        if key in trainable:
            param = trainable[key]
            if value.shape != param.data.shape:
                raise AdapterError(
                    f"adapter parameter {key!r}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data[...] = value
        else:
            module, buf_name = buffers[key]
            if value.shape != module._buffers[buf_name].shape:
                raise AdapterError(
                    f"buffer {key!r}: expected "
                    f"{module._buffers[buf_name].shape}, got {value.shape}"
                )
            module._buffers[buf_name][...] = value


def state_digest(
    state: Mapping[str, np.ndarray], extra: Mapping | None = None
) -> str:
    """Stable SHA-256 over a named array state (plus JSON-able metadata).

    This is the *one* identity function shared by checkpoint manifests
    (:func:`save_adapter` embeds it as ``meta["digest"]``),
    ``AttachResult.digest()``, and the serve registry's program-cache
    keys.  The hash covers sorted array names, shapes, dtypes and raw
    bytes, so any weight change — and nothing else — changes it.
    """
    hasher = hashlib.sha256()
    if extra:
        hasher.update(json.dumps(dict(extra), sort_keys=True, default=str).encode())
    for name in sorted(state):
        array = np.ascontiguousarray(np.asarray(state[name]))
        hasher.update(name.encode())
        hasher.update(repr((array.shape, array.dtype.str)).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()


def model_digest(model: Module) -> str:
    """Identity of a model's full weight state (parameters and buffers),
    tagged with its adapter families/ranks — the serve registry's notion
    of "same weights, same program"."""
    meta = _adapter_meta(model)
    return state_digest(model.state_dict(), extra=meta)


def _adapter_meta(model: Module) -> dict:
    """Manifest metadata: which adapter families/ranks the model carries."""
    from repro.peft.base import iter_adapters  # local import: avoid cycle

    families = sorted({type(adapter).__name__ for __, adapter in iter_adapters(model)})
    ranks = sorted(
        {
            int(rank)
            for __, adapter in iter_adapters(model)
            if isinstance(rank := getattr(adapter, "rank", None), (int, np.integer))
        }
    )
    return {"families": families, "ranks": ranks}


def save_adapter(model: Module, path: str | os.PathLike) -> int:
    """Write the adapter checkpoint; returns the number of scalars saved.

    The file is a versioned artifact: the trainable/buffer arrays plus a
    manifest (format version, adapter families, ranks, a
    :func:`state_digest` of the saved arrays, per-array shapes/dtypes)
    that :func:`load_adapter` validates against.
    """
    state = adapter_state_dict(model)
    meta = _adapter_meta(model)
    meta["digest"] = state_digest(state, extra={k: meta[k] for k in ("families", "ranks")})
    save_artifact(path, state, kind=ADAPTER_KIND, meta=meta)
    return sum(int(np.asarray(v).size) for v in state.values())


def load_adapter(model: Module, path: str | os.PathLike) -> dict:
    """Load an adapter checkpoint written by :func:`save_adapter`.

    Validation happens in two stages, both surfacing as
    :class:`CheckpointError`: the artifact must match its own manifest
    (version, array index, shapes, dtypes), and the stored state must
    match ``model``'s current trainable parameters and buffers.

    Returns the checkpoint's manifest ``meta`` mapping (families, ranks,
    digest) so callers — e.g. ``AdapterRegistry.register_checkpoint`` —
    can key the restored model without re-reading the file.
    """
    state, manifest = load_artifact(path, kind=ADAPTER_KIND)
    try:
        load_adapter_state_dict(model, state)
    except AdapterError as exc:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} does not fit this model: {exc}"
        ) from exc
    meta = manifest.get("meta", {}) if isinstance(manifest, Mapping) else {}
    return dict(meta)
