"""Embedding extraction for the KNN protocol."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.errors import EvaluationError
from repro.nn.module import Module


def extract_embeddings(
    model: Module, images: np.ndarray, batch_size: int = 64
) -> np.ndarray:
    """Run ``model.features`` over ``images`` in eval mode, without grads.

    Works for plain backbones and for :class:`MetaLoRAModel` alike — meta
    models regenerate their per-sample seeds inside ``features``.
    """
    if not hasattr(model, "features"):
        raise EvaluationError(
            f"{type(model).__name__} does not expose features(); cannot embed"
        )
    model.eval()
    chunks = []
    with no_grad():
        for start in range(0, images.shape[0], batch_size):
            batch = Tensor(images[start : start + batch_size])
            chunks.append(model.features(batch).data.copy())
    model.train()
    return np.concatenate(chunks, axis=0)
