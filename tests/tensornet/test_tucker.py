"""Tests for Tucker/HOSVD."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensornet import TuckerTensor, tucker_decompose, tucker_to_tensor


class TestTucker:
    def test_full_rank_exact(self, rng):
        x = rng.normal(size=(4, 5, 6))
        tk = tucker_decompose(x, (4, 5, 6))
        assert np.allclose(tucker_to_tensor(tk), x, atol=1e-8)

    def test_factors_orthonormal(self, rng):
        x = rng.normal(size=(4, 5, 6))
        tk = tucker_decompose(x, (2, 3, 4))
        for factor in tk.factors:
            gram = factor.T @ factor
            assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-10)

    def test_truncation_error_decreases_with_rank(self, rng):
        x = rng.normal(size=(6, 6, 6))
        errors = []
        for rank in (1, 3, 6):
            tk = tucker_decompose(x, (rank, rank, rank))
            errors.append(np.linalg.norm(tucker_to_tensor(tk) - x))
        assert errors[0] >= errors[1] >= errors[2]

    def test_low_multilinear_rank_recovery(self, rng):
        """A tensor with multilinear rank (2,2,2) is recovered exactly."""
        core = rng.normal(size=(2, 2, 2))
        factors = [np.linalg.qr(rng.normal(size=(d, 2)))[0] for d in (5, 6, 7)]
        x = np.einsum("abc,ia,jb,kc->ijk", core, *factors)
        tk = tucker_decompose(x, (2, 2, 2))
        assert np.allclose(tucker_to_tensor(tk), x, atol=1e-8)

    def test_parameter_count(self, rng):
        tk = tucker_decompose(rng.normal(size=(4, 5)), (2, 2))
        assert tk.parameter_count() == 4 + 4 * 2 + 5 * 2

    def test_rank_per_mode_required(self, rng):
        with pytest.raises(ShapeError):
            tucker_decompose(rng.normal(size=(3, 3, 3)), (2, 2))

    def test_rank_bounds_validated(self, rng):
        with pytest.raises(ShapeError):
            tucker_decompose(rng.normal(size=(3, 3)), (4, 2))

    def test_shape_validation_in_dataclass(self, rng):
        with pytest.raises(ShapeError):
            TuckerTensor(core=rng.normal(size=(2, 2)), factors=[rng.normal(size=(3, 2))])
