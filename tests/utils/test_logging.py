"""Tests for the library logger."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


class TestLogger:
    def test_root_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger(self):
        assert get_logger("train").name == "repro.train"

    def test_enable_console_idempotent(self):
        enable_console_logging()
        count = len(get_logger().handlers)
        enable_console_logging()
        assert len(get_logger().handlers) == count

    def test_trainer_logs_through_library_logger(self, rng, caplog):
        import numpy as np

        from repro.nn import Linear, Sequential
        from repro.train import SGD, Trainer

        model = Sequential(Linear(4, 2, rng=rng))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01))
        x = rng.normal(size=(8, 4)).astype(np.float32)
        y = rng.integers(0, 2, 8)
        with caplog.at_level(logging.INFO, logger="repro.train"):
            trainer.fit(x, y, epochs=1, batch_size=4, rng=rng, log_every=1)
        assert any("epoch" in record.message for record in caplog.records)
