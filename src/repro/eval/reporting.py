"""Experiment-result persistence and rendering.

The benchmark harness saves each regenerated table as JSON under
``results/`` so EXPERIMENTS.md can cite exact numbers and runs are
diffable across machines; this module owns the (de)serialization and the
markdown rendering of those records.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Mapping

from repro.errors import EvaluationError


@dataclass
class Table1Record:
    """One Table I regeneration: accuracies (mean + per seed) and t-tests."""

    backbone: str
    seeds: list[int]
    accuracy: dict[str, dict[str, float]]  # method -> {"5": mean, "10": mean}
    per_seed: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    significance: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Table1Record":
        payload = json.loads(text)
        return cls(
            backbone=payload["backbone"],
            seeds=list(payload["seeds"]),
            accuracy={m: dict(v) for m, v in payload["accuracy"].items()},
            per_seed={
                m: {k: list(vals) for k, vals in v.items()}
                for m, v in payload.get("per_seed", {}).items()
            },
            significance={
                m: dict(v) for m, v in payload.get("significance", {}).items()
            },
        )


def record_from_rows(
    backbone: str,
    seeds: list[int],
    rows_by_seed: list[Mapping[str, object]],
    ks: tuple[int, ...],
) -> Table1Record:
    """Aggregate per-seed protocol rows into a :class:`Table1Record`.

    With two or more seeds, each meta method also gets a paired two-sided
    t-test against the best static baseline per K (the paper's ``*``),
    stored as ``significance[method][str(k)] = p_value``.
    """
    if not rows_by_seed:
        raise EvaluationError("record_from_rows needs at least one seed's rows")
    methods = list(rows_by_seed[0])
    accuracy: dict[str, dict[str, float]] = {}
    per_seed: dict[str, dict[str, list[float]]] = {}
    for method in methods:
        accuracy[method] = {}
        per_seed[method] = {}
        for k in ks:
            values = [
                float(rows[method].accuracy_by_k[k]) for rows in rows_by_seed
            ]
            per_seed[method][str(k)] = values
            accuracy[method][str(k)] = float(sum(values) / len(values))

    significance: dict[str, dict[str, float]] = {}
    baselines = [m for m in methods if not m.startswith("meta")]
    if len(rows_by_seed) >= 2 and baselines:
        from repro.eval.significance import two_sided_t_test

        for method in methods:
            if not method.startswith("meta"):
                continue
            significance[method] = {}
            for k in ks:
                best = max(
                    baselines, key=lambda m: accuracy[m][str(k)]
                )
                result = two_sided_t_test(
                    per_seed[method][str(k)], per_seed[best][str(k)]
                )
                significance[method][str(k)] = result.p_value
    return Table1Record(
        backbone=backbone,
        seeds=list(seeds),
        accuracy=accuracy,
        per_seed=per_seed,
        significance=significance,
    )


def save_record(record: Table1Record, directory: str | os.PathLike = "results") -> str:
    """Write the record to ``<directory>/table1_<backbone>.json``; returns path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(str(directory), f"table1_{record.backbone}.json")
    with open(path, "w") as handle:
        handle.write(record.to_json())
    return path


def load_record(path: str | os.PathLike) -> Table1Record:
    with open(path) as handle:
        return Table1Record.from_json(handle.read())


def render_markdown(record: Table1Record, labels: Mapping[str, str]) -> str:
    """A GitHub-markdown table in the paper's layout."""
    ks = sorted({k for v in record.accuracy.values() for k in v}, key=int)
    header = "| Method | " + " | ".join(f"K={k}" for k in ks) + " |"
    divider = "|" + "---|" * (len(ks) + 1)
    lines = [header, divider]
    ordered = [m for m in labels if m in record.accuracy]
    ordered += [m for m in record.accuracy if m not in labels]
    for method in ordered:
        per_k = record.accuracy[method]
        label = labels.get(method, method)
        cells = " | ".join(f"{100 * per_k[k]:.2f}" for k in ks)
        lines.append(f"| {label} | {cells} |")
    return "\n".join(lines)
