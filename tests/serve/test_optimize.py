"""The compile-time pass pipeline: tiers, fusion, arena, parallelism.

Each optimization is tested against the identity it must preserve:

- fusion at f64 is *bit-identical* to the unfused program on every
  backbone and adapter family, including the split extractor / mapping /
  body programs the multi-tenant registry serves;
- the arena never leaks a recycled buffer's stale contents into a
  result (the NaN booby-trap would detect a single early read);
- the parallel scheduler reproduces the serial run exactly;
- the relaxed tiers stay within their accuracy budgets and never touch
  the f64 contract.
"""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.eval.embeddings import extract_embeddings
from repro.models import FeatureExtractor, mixer_small, resnet_small
from repro.peft import MetaLoRAModel, attach
from repro.serve import (
    Arena,
    build_engine,
    compile_features,
    compile_forward,
    compile_seed_mapping,
    quantize_weight,
    resolve_precision,
)
from repro.serve.optimize import pin_layouts, resolve_parallel
from repro.utils.rng import new_rng

BACKBONES = {
    "resnet": lambda rng: resnet_small(4, rng),
    "mixer": lambda rng: mixer_small(4, rng),
}

ADAPTER_METHODS = ("lora", "multi_lora", "meta_cp", "meta_tr")


def images_for(rng, n=5):
    return rng.normal(size=(n, 3, 16, 16)).astype(np.float32)


def randomize_zero_params(model, rng):
    for param in model.parameters():
        if not np.any(param.data):
            param.data[...] = (rng.normal(size=param.data.shape) * 0.2).astype(
                param.data.dtype
            )


def meta_model(fmt="meta_tr", seed=10):
    backbone = resnet_small(4, new_rng(seed))
    result = attach(backbone, fmt, rank=2, rng=new_rng(seed + 1))
    extractor = FeatureExtractor(resnet_small(4, new_rng(99)))
    model = MetaLoRAModel(backbone, extractor, rng=new_rng(seed + 2), adapters=result)
    randomize_zero_params(model, np.random.default_rng(seed + 3))
    return model


class TestResolvers:
    def test_precision_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_PRECISION", raising=False)
        assert resolve_precision(None) == "f64"
        monkeypatch.setenv("REPRO_SERVE_PRECISION", "f32")
        assert resolve_precision(None) == "f32"
        assert resolve_precision("int8") == "int8"  # explicit beats env

    def test_unknown_precision_raises(self):
        with pytest.raises(ServeError, match="unknown serve precision"):
            resolve_precision("f16")

    def test_parallel_env_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_PARALLEL", raising=False)
        assert resolve_parallel(None) == 1
        monkeypatch.setenv("REPRO_SERVE_PARALLEL", "3")
        assert resolve_parallel(None) == 3
        with pytest.raises(ServeError, match=">= 1"):
            resolve_parallel(0)


class TestQuantizeWeight:
    def test_error_bounded_by_per_channel_scale(self, rng):
        weight = rng.normal(size=(32, 16)).astype(np.float64)
        deq = quantize_weight(weight)
        assert deq.dtype == np.float32
        scale = np.abs(weight).max(axis=0) / 127.0
        assert np.all(np.abs(deq - weight) <= scale / 2 + 1e-7)

    def test_channel_extremes_survive(self, rng):
        weight = rng.normal(size=(8, 4))
        deq = quantize_weight(weight)
        # The per-channel max maps exactly to code ±127 and back.
        rows = np.abs(weight).argmax(axis=0)
        for col, row in enumerate(rows):
            assert deq[row, col] == pytest.approx(weight[row, col], rel=1e-6)

    def test_zero_channel_stays_zero(self):
        weight = np.zeros((4, 3))
        weight[:, 0] = [1.0, -2.0, 0.5, 0.0]
        deq = quantize_weight(weight)
        assert np.all(deq[:, 1:] == 0.0)

    def test_stable_under_requantization(self, rng):
        # Already-on-grid values stay put bar float32 rounding of the
        # rebuilt scale.
        weight = rng.normal(size=(6, 6))
        once = quantize_weight(weight)
        np.testing.assert_allclose(quantize_weight(once), once, rtol=1e-5, atol=1e-6)


class TestFusionIdentity:
    """Fusion at f64 is bit-identical to the unfused program."""

    @pytest.mark.parametrize("backbone", sorted(BACKBONES))
    def test_plain_backbone(self, backbone, rng):
        model = BACKBONES[backbone](rng)
        images = images_for(rng)
        fused = compile_features(model, precision="f64", fuse=True)
        unfused = compile_features(model, precision="f64", fuse=False)
        assert fused.fusion_eliminated > 0
        assert len(fused) < len(unfused)
        assert np.array_equal(fused.run(images), unfused.run(images))

    @pytest.mark.parametrize("backbone", sorted(BACKBONES))
    @pytest.mark.parametrize("method", ADAPTER_METHODS)
    def test_adapted_backbone(self, backbone, method, rng):
        model = BACKBONES[backbone](rng)
        attach(model, method, rank=2, rng=rng)
        randomize_zero_params(model, rng)
        images = images_for(rng)
        fused = compile_features(model, precision="f64", fuse=True)
        unfused = compile_features(model, precision="f64", fuse=False)
        assert np.array_equal(fused.run(images), unfused.run(images))

    def test_meta_split_programs(self, rng):
        """The registry's extractor / mapping / body split, fused vs not."""
        model = meta_model()
        images = images_for(rng, 4)
        outputs = {}
        for fuse in (True, False):
            extractor = compile_forward(
                model.extractor, precision="f64", fuse=fuse, quantize=False
            )
            mapping = compile_seed_mapping(model, precision="f64", fuse=fuse)
            body = compile_features(
                model, external_seeds=True, precision="f64", fuse=fuse
            )
            seeds = mapping.run(extractor.run(images))
            outputs[fuse] = body.run(images, seeds)
        assert np.array_equal(outputs[True], outputs[False])
        # And the split pipeline matches the fused single program.
        fused = compile_features(model, precision="f64")
        assert np.array_equal(outputs[True], fused.run(images))

    def test_fused_matches_autograd_reference(self, rng):
        model = resnet_small(4, rng)
        images = images_for(rng)
        program = compile_features(model, precision="f64", fuse=True)
        assert np.array_equal(program.run(images), extract_embeddings(model, images))


class TestArena:
    def test_take_recycles_by_shape_and_dtype(self):
        arena = Arena()
        first = arena.take((4, 4), np.dtype(np.float64))
        arena.put(first, live=[])
        again = arena.take((4, 4), np.dtype(np.float64))
        assert again is first
        other = arena.take((4, 5), np.dtype(np.float64))
        assert other is not first
        assert arena.hits == 1 and arena.allocs == 2

    def test_put_refuses_views_and_aliases(self):
        arena = Arena()
        owner = np.zeros((4, 4))
        arena.put(owner[:2], live=[])  # a view: never pooled
        arena.put(owner.T, live=[])  # non-contiguous: never pooled
        arena.put(owner, live=[owner[1:]])  # aliased by a live slot
        assert arena.take((4, 4), owner.dtype) is not owner
        assert arena.hits == 0

    def test_poison_fills_pooled_buffers(self):
        arena = Arena(poison=True)
        buffer = np.ones((3, 3))
        arena.put(buffer, live=[])
        assert np.all(np.isnan(buffer))

    @pytest.mark.parametrize("precision", ("f64", "f32"))
    def test_booby_trap(self, precision, rng):
        """NaN-poisoning every pooled buffer must not change any result:
        a single kernel reading recycled memory before overwriting it
        would surface as NaNs in the output."""
        model = resnet_small(4, rng)
        images = images_for(rng)
        clean = compile_features(model, precision=precision)
        clean.arena = False
        expected = clean.run(images)

        trapped = compile_features(model, precision=precision)
        trapped.arena = True
        trapped.arena_poison = True
        out = trapped.run(images)
        assert not np.any(np.isnan(out))
        assert np.array_equal(out, expected)

    def test_relaxed_tier_reuses_buffers(self, rng):
        # At f32 nothing is layout-pinned, so repeated runs recycle.
        program = compile_features(mixer_small(4, rng), precision="f32")
        program.arena = True
        program.run(images_for(rng))
        counters = program.counters()
        assert counters["arena_hits"] > 0


class TestPinLayouts:
    def _steps(self):
        from repro.serve.compile import Step

        def spec(*inputs):
            return inputs[0].shape, inputs[0].dtype

        fn = np.copy
        return [
            Step("conv2d", fn, (0,), 1, fn_out=None, out_spec=None),
            Step("relu", fn, (1,), 2, fn_out=lambda o, x: None, out_spec=spec),
            Step("global_avg_pool2d", fn, (2,), 3),
            Step("linear", fn, (3,), 4, fn_out=lambda o, x: None, out_spec=spec),
        ]

    def test_taint_stops_at_barriers(self):
        steps = self._steps()
        pin_layouts(steps)
        # relu feeds the reduction: pinned.  linear is downstream and a
        # barrier itself: untouched.
        assert steps[1].fn_out is None and steps[1].out_spec is None
        assert steps[3].fn_out is not None

    def test_taint_is_transitive(self):
        from repro.serve.compile import Step

        def spec(*inputs):
            return inputs[0].shape, inputs[0].dtype

        fn = np.copy
        writer = lambda o, x: None  # noqa: E731
        steps = [
            Step("relu", fn, (0,), 1, fn_out=writer, out_spec=spec),
            Step("add", fn, (1,), 2, fn_out=writer, out_spec=spec),
            Step("mean", fn, (2,), 3),
        ]
        pin_layouts(steps)
        # Both elementwise ancestors are pinned, not just the direct one.
        assert steps[0].fn_out is None
        assert steps[1].fn_out is None

    def test_f64_program_is_pinned_f32_is_not(self, rng):
        # Unfused, so elementwise steps sit directly upstream of the
        # reductions (fusion folds them behind conv barriers instead).
        model = mixer_small(4, rng)
        pinned = compile_features(model, precision="f64", fuse=False)
        relaxed = compile_features(model, precision="f32", fuse=False)

        def writers(program):
            return sum(1 for step in program.steps if step.fn_out is not None)

        assert writers(relaxed) > writers(pinned)


class TestParallelIdentity:
    @pytest.mark.parametrize("backbone", sorted(BACKBONES))
    @pytest.mark.parametrize("precision", ("f64", "f32"))
    def test_parallel_matches_serial(self, backbone, precision, rng):
        model = BACKBONES[backbone](rng)
        images = images_for(rng, 6)
        serial = compile_features(model, precision=precision, parallel=1)
        threaded = compile_features(model, precision=precision, parallel=4)
        threaded.parallel_threshold = 0.0  # pin the cost gate off
        assert threaded.parallel == 4
        assert np.array_equal(threaded.run(images), serial.run(images))
        counters = threaded.counters()
        assert sum(counters["parallel_slots"].values()) > 0

    def test_parallel_meta_model(self, rng):
        model = meta_model()
        images = images_for(rng, 4)
        serial = compile_features(model, precision="f64", parallel=1)
        threaded = compile_features(model, precision="f64", parallel=3)
        threaded.parallel_threshold = 0.0
        assert np.array_equal(threaded.run(images), serial.run(images))


class TestParallelCostGate:
    def test_gate_skips_below_threshold_then_engages(self, rng):
        model = resnet_small(4, rng)
        images = images_for(rng, 4)
        program = compile_features(model, precision="f64", parallel=4)
        program.parallel_threshold = 1e9  # nothing clears this bar
        serial = compile_features(model, precision="f64", parallel=1)
        for _ in range(3):
            assert np.array_equal(program.run(images), serial.run(images))
        counters = program.counters()
        assert counters["parallel_skipped"] == 3
        assert sum(counters["parallel_slots"].values()) == 0
        # Once the measured serial time clears the threshold, the thread
        # scheduler engages and skips stop accruing.
        program.parallel_threshold = 1e-9
        assert np.array_equal(program.run(images), serial.run(images))
        counters = program.counters()
        assert counters["parallel_skipped"] == 3
        assert sum(counters["parallel_slots"].values()) > 0

    def test_first_run_measures_before_engaging(self, rng):
        # With a finite threshold the first run is always serial — the
        # gate needs a measurement before it can decide.
        program = compile_features(resnet_small(4, rng), parallel=4)
        assert program.parallel_threshold > 0.0
        program.run(images_for(rng, 2))
        assert program.counters()["parallel_skipped"] >= 1

    def test_threshold_env_override(self, monkeypatch):
        from repro.serve.optimize import resolve_parallel_threshold

        monkeypatch.setenv("REPRO_SERVE_PARALLEL_MIN_SECONDS", "0.5")
        assert resolve_parallel_threshold(None) == 0.5
        monkeypatch.setenv("REPRO_SERVE_PARALLEL_MIN_SECONDS", "0")
        assert resolve_parallel_threshold(None) == 0.0
        with pytest.raises(ServeError):
            resolve_parallel_threshold(-1.0)


class TestPrecisionTiers:
    @pytest.mark.parametrize("backbone", sorted(BACKBONES))
    def test_f32_close_to_f64(self, backbone, rng):
        model = BACKBONES[backbone](rng)
        images = images_for(rng)
        reference = compile_features(model, precision="f64").run(images)
        out = compile_features(model, precision="f32").run(images)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, reference, atol=1e-3, rtol=0)

    def test_int8_quantizes_and_stays_close(self, rng):
        model = mixer_small(4, rng)
        images = images_for(rng)
        reference = compile_features(model, precision="f64").run(images)
        program = compile_features(model, precision="int8")
        assert program.quantized > 0
        out = program.run(images)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, reference, atol=0.5, rtol=0)

    def test_f64_never_quantizes(self, rng):
        program = compile_features(mixer_small(4, rng), precision="f64")
        assert program.quantized == 0

    def test_int8_exempts_seed_generation(self, rng):
        # The registry compiles the extractor with quantize=False so the
        # seed path is untouched at every tier.
        model = meta_model()
        program = compile_forward(
            model.extractor, precision="int8", quantize=False
        )
        assert program.quantized == 0


class TestEngineCounters:
    def test_stats_carry_optimizer_series(self, rng):
        from tests.serve.conftest import serve_bulk

        with build_engine(
            resnet_small(4, rng), cache_size=0, precision="f32"
        ) as engine:
            serve_bulk(engine, images_for(rng, 4))
            stats = engine.stats()
        for name in (
            "serve.fusion.steps_eliminated",
            "serve.quantized.weights",
            "serve.arena.hit",
            "serve.arena.alloc",
            "serve.parallel.slots",
            "serve.parallel.skipped",
        ):
            assert name in stats, name
        assert stats["serve.fusion.steps_eliminated"]["calls"] > 0
        assert stats["serve.parallel.slots"]["kind"] == "histogram"
