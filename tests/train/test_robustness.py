"""Failure-injection tests for the training stack."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import TrainingError
from repro.nn import BatchNorm2d, Conv2d, Linear, Sequential
from repro.train import SGD, Trainer


class TestNonFiniteGuard:
    def test_nan_loss_raises(self, rng):
        model = Sequential(Linear(4, 2, rng=rng))
        model[0].weight.data[...] = np.nan
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        with pytest.raises(TrainingError, match="non-finite"):
            trainer.train_step(
                rng.normal(size=(4, 4)).astype(np.float32),
                np.zeros(4, dtype=np.int64),
            )

    def test_exploding_weights_raise_not_silently_corrupt(self, rng):
        model = Sequential(Linear(4, 2, rng=rng))
        model[0].weight.data[...] = 1e38
        trainer = Trainer(model, SGD(model.parameters(), lr=1.0))
        x = (rng.normal(size=(4, 4)) * 1e5).astype(np.float32)
        with np.errstate(over="ignore", invalid="ignore"):
            with pytest.raises(TrainingError):
                for __ in range(20):
                    trainer.train_step(x, np.zeros(4, dtype=np.int64))


class TestNumericalEdges:
    def test_batchnorm_single_sample_batch(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(1, 3, 4, 4)).astype(np.float32))
        out = bn(x)
        assert np.isfinite(out.data).all()

    def test_batchnorm_constant_input(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.full((4, 2, 3, 3), 5.0, dtype=np.float32))
        out = bn(x)
        assert np.isfinite(out.data).all()
        assert np.allclose(out.data, 0.0, atol=1e-2)  # (x - μ)/σ ≈ 0

    def test_conv_minimal_spatial(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 1, 1)).astype(np.float32))
        assert conv(x).shape == (1, 3, 1, 1)

    def test_softmax_extreme_logits_finite(self):
        from repro.autograd import softmax, tensor

        x = tensor(np.array([[1e4, -1e4, 0.0]], dtype=np.float32))
        out = softmax(x)
        assert np.isfinite(out.data).all()
        assert out.data[0, 0] == pytest.approx(1.0)

    def test_log_softmax_extreme_logits_finite(self):
        from repro.autograd import log_softmax, tensor

        x = tensor(np.array([[1e4, -1e4, 0.0]], dtype=np.float32))
        out = log_softmax(x)
        assert np.isfinite(out.data[0, 0])

    def test_cross_entropy_gradient_finite_under_confidence(self, rng):
        from repro.train import cross_entropy
        from repro.autograd import tensor

        logits = tensor(
            np.array([[100.0, -100.0], [-100.0, 100.0]], dtype=np.float32),
            requires_grad=True,
        )
        loss = cross_entropy(logits, np.array([0, 1]))
        loss.backward()
        assert np.isfinite(logits.grad).all()
