"""Shared helpers for the serving suite.

The suite honours ``REPRO_SERVE_PRECISION`` — CI runs it once under
``f32`` to prove the relaxed tiers serve end to end.  Bit-identity to
the autograd reference is contracted only at f64, so tests that compare
a compiled path against ``extract_embeddings`` go through
:func:`assert_serving_match`: exact equality at f64, tier-sized
closeness otherwise.  Comparisons between two *compiled* runs of the
same tier stay exact at every tier and keep using ``np.array_equal``.
"""

import numpy as np

from repro.serve import ServeRequest, resolve_precision

#: max-abs error allowed vs the f64 reference per relaxed tier.  f32 is
#: rounding noise; int8 reflects 127-step weight quantization (KNN
#: accuracy is the real budget — see PRECISION_ACCURACY_BUDGETS).
TIER_ATOL = {"f32": 1e-3, "int8": 0.5}


def assert_serving_match(actual, reference, precision=None):
    """Assert a served result matches the autograd reference for the tier.

    ``precision=None`` resolves the active tier (explicit argument, else
    ``REPRO_SERVE_PRECISION``, else f64).
    """
    precision = resolve_precision(precision)
    if precision == "f64":
        assert actual.dtype == reference.dtype
        assert np.array_equal(actual, reference)
    else:
        assert actual.dtype == np.float32
        np.testing.assert_allclose(
            actual.astype(np.float64),
            reference.astype(np.float64),
            atol=TIER_ATOL[precision],
            rtol=0,
        )


def serve_bulk(engine, images, batch_size=64, adapter=None):
    """Bulk-embed via the typed API, chunked like ``extract_embeddings``.

    The new-API equivalent of the deprecated ``embed`` shim: one batched
    :class:`ServeRequest` per chunk, rows concatenated in order.
    """
    images = np.asarray(images)
    requests = [
        ServeRequest(sample=images[start : start + batch_size], adapter=adapter)
        for start in range(0, images.shape[0], batch_size)
    ]
    return np.concatenate(
        [result.require() for result in engine.serve(requests)], axis=0
    )
