"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ShapeError(ReproError):
    """An operation received tensors whose shapes are incompatible."""


class GradientError(ReproError):
    """Backward pass failed or was requested on a non-differentiable graph."""


class DecompositionError(ReproError):
    """A tensor decomposition (CP / TR / Tucker) could not be computed."""


class AdapterError(ReproError):
    """A PEFT adapter was attached, merged or configured incorrectly."""


class ConfigError(ReproError):
    """An experiment configuration is inconsistent or out of range."""


class DataError(ReproError):
    """A dataset or task specification is invalid."""


class TrainingError(ReproError):
    """The training loop encountered an unrecoverable condition."""


class EvaluationError(ReproError):
    """An evaluation protocol was invoked with invalid inputs."""


class WorkerError(ReproError):
    """One or more experiment cells failed inside the parallel runtime.

    Raised in the *parent* process after the pool has drained: per-cell
    failures are collected as structured records (exception type, message
    and remote traceback), never left to hang or kill the pool.
    """


class ServeError(ReproError):
    """The serving layer was misused or asked to compile the uncompilable.

    Raised when the serve compiler meets a module type it has no lowering
    rule for, or when an :class:`~repro.serve.engine.EmbeddingEngine` is
    used after ``close()`` / constructed with invalid batching limits.
    """


class CheckpointError(ReproError):
    """A persisted artifact (adapter checkpoint, run-dir cell) is invalid.

    Raised when a versioned artifact's manifest is missing or corrupt,
    its format version is unsupported, or the stored arrays do not match
    what the manifest — or the model being restored — declares.  The
    point is to fail at the artifact boundary with a clear message
    instead of deep inside numpy.
    """


class CellTimeoutError(ReproError):
    """An experiment cell exceeded its soft wall-clock budget.

    Raised *inside* the worker by the pool's alarm-based soft timeout;
    the runtime converts it into a structured ``CellFailure`` like any
    other cell exception, so a stalled cell neither hangs the grid nor
    takes down its siblings.
    """


class ObsError(ReproError):
    """The observability layer was misused or fed an invalid artifact.

    Raised on metric-kind conflicts (one dotted name used as two
    different kinds via the typed ``repro.obs`` API), on unparsable
    ``trace.jsonl`` records, and when ``repro trace`` is pointed at a
    directory with no trace export.
    """


class FaultInjected(ReproError):
    """A deterministic test fault (``REPRO_FAULTS``) fired in a worker.

    Never raised in normal operation — only when fault injection is armed
    via :func:`repro.perf.fire_faults`, which the retry/timeout/resume
    tests use to crash or stall chosen cells on chosen attempts.
    """
