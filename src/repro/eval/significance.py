"""Statistical significance testing.

Table I marks improvements with ``*`` when a two-sided t-test against the
best baseline gives p < 0.05; this module reproduces that test over
per-seed accuracy samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import EvaluationError


@dataclass
class SignificanceResult:
    """Outcome of one two-sided test."""

    statistic: float
    p_value: float
    significant: bool
    alpha: float


def two_sided_t_test(
    candidate: list[float] | np.ndarray,
    baseline: list[float] | np.ndarray,
    alpha: float = 0.05,
    paired: bool = True,
) -> SignificanceResult:
    """Two-sided t-test of ``candidate`` vs ``baseline`` accuracy samples.

    ``paired=True`` (the default) matches the experimental design: both
    methods are run on the same seeds, so per-seed differences are the
    natural unit.  Falls back to Welch's test when unpaired.
    """
    candidate = np.asarray(candidate, dtype=np.float64)
    baseline = np.asarray(baseline, dtype=np.float64)
    if candidate.size < 2 or baseline.size < 2:
        raise EvaluationError("need at least two samples per group for a t-test")
    if paired:
        if candidate.shape != baseline.shape:
            raise EvaluationError(
                f"paired test needs equal sample counts, got "
                f"{candidate.shape} vs {baseline.shape}"
            )
        differences = candidate - baseline
        if np.allclose(differences, 0.0):
            return SignificanceResult(0.0, 1.0, False, alpha)
        if np.ptp(differences) < 1e-12:
            # Constant non-zero difference: zero variance, the t statistic
            # diverges; report it as maximally significant directly rather
            # than letting scipy warn about catastrophic cancellation.
            sign = float(np.sign(differences[0]))
            return SignificanceResult(sign * np.inf, 0.0, True, alpha)
        statistic, p_value = stats.ttest_rel(candidate, baseline)
    else:
        statistic, p_value = stats.ttest_ind(candidate, baseline, equal_var=False)
    return SignificanceResult(
        statistic=float(statistic),
        p_value=float(p_value),
        significant=bool(p_value < alpha),
        alpha=alpha,
    )
