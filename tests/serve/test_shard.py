"""Multi-process engine shards: routing, replication, crash isolation.

Workers are real processes (fork by default; CI re-runs this directory
under ``REPRO_SHARD_START=spawn``), so every test asserts through the
public surface: typed results, merged stats, digest-verified registry
sync, and bit-identity against a direct in-process engine.
"""

import time

import numpy as np
import pytest

from repro.bench import _multi_tenant_models, build_shard_tenant
from repro.errors import ServeError
from repro.serve import (
    ERROR,
    OK,
    REJECTED,
    MultiTenantEngine,
    ServeClient,
    ServeRequest,
    ServingFrontend,
    ShardedEngine,
)

NAMES = ["static", "meta_0", "meta_1"]


def builder_args(name: str) -> tuple[str, int]:
    if name == "static":
        return ("static", 0)
    return ("meta", int(name.rsplit("_", 1)[1]))


def register_all(engine: ShardedEngine, models: list) -> None:
    for name, model in zip(NAMES, models):
        engine.register(name, model, builder=build_shard_tenant, args=builder_args(name))


@pytest.fixture(scope="module")
def fleet():
    """The bench tenants plus a direct single-process reference engine."""
    static, metas = _multi_tenant_models(3)
    models = [static, *metas]
    reference = MultiTenantEngine(cache_size=0)
    for name, model in zip(NAMES, models):
        reference.register(name, model)
    yield models, reference
    reference.close()


@pytest.fixture
def sharded(fleet):
    models, reference = fleet
    engine = ShardedEngine(2, record_batches=4, heartbeat_interval=0.1)
    register_all(engine, models)
    yield engine, reference
    engine.close(5.0)


def mixed_requests(count: int, seed: int = 0) -> list[ServeRequest]:
    rng = np.random.default_rng(seed)
    samples = rng.normal(size=(count, 3, 16, 16)).astype(np.float32)
    return [
        ServeRequest(sample=samples[index], adapter=NAMES[index % len(NAMES)])
        for index in range(count)
    ]


def flood(engine: ShardedEngine, count: int, seed: int = 0):
    """Concurrent traffic; identity for these goes via recorded replay."""
    futures = [engine.submit(request) for request in mixed_requests(count, seed)]
    return [future.result(60.0) for future in futures]


def assert_serves_match_direct(
    engine: ShardedEngine, reference: MultiTenantEngine, count: int, seed: int = 0
) -> None:
    """Sequential round trips: each is a micro-batch of one, so identity
    against direct single-request dispatch is deterministic (embeddings
    are batch-composition sensitive; concurrent traffic is covered by
    the recorded-batch replay instead)."""
    for request, ref_request in zip(
        mixed_requests(count, seed), mixed_requests(count, seed)
    ):
        result = engine.submit(request).result(60.0)
        assert result.status == OK, result.error
        direct = reference.serve(ref_request).require()
        assert np.array_equal(result.require(), direct)


class TestShardedServing:
    def test_round_trip_bit_identical_to_direct(self, sharded):
        engine, reference = sharded
        assert_serves_match_direct(engine, reference, 9)

    def test_concurrent_traffic_serves_ok_everywhere(self, sharded):
        engine, __ = sharded
        results = flood(engine, 12)
        assert all(result.status == OK for result in results)

    def test_affinity_assigns_every_adapter_a_home_shard(self, sharded):
        engine, __ = sharded
        affinity = engine.affinity()
        assert sorted(affinity) == sorted(NAMES)
        assert set(affinity.values()) <= {0, 1}
        assert len(set(affinity.values())) == 2  # round-robin spreads tenants

    def test_unknown_adapter_answers_typed_error(self, sharded):
        engine, __ = sharded
        request = mixed_requests(1)[0]
        result = engine.submit(
            ServeRequest(sample=request.sample, adapter="nope")
        ).result(5.0)
        assert result.status == ERROR
        assert "unknown adapter" in result.error

    def test_closed_engine_rejects_typed(self, fleet):
        models, __ = fleet
        engine = ShardedEngine(2)
        register_all(engine, models)
        engine.close(5.0)
        result = engine.submit(mixed_requests(1)[0]).result(5.0)
        assert result.status == REJECTED

    def test_router_spills_off_a_dead_home_shard(self, fleet):
        models, reference = fleet
        # Long heartbeat: the monitor must not resurrect the shard we
        # marked down while the router decision is under test.
        engine = ShardedEngine(2, heartbeat_interval=60.0)
        try:
            register_all(engine, models)
            name = next(
                name for name, home in engine.affinity().items() if home == 0
            )
            engine._shards[0].ready = False
            request = mixed_requests(1)[0]
            result = engine.submit(
                ServeRequest(sample=request.sample, adapter=name)
            ).result(30.0)
            assert result.status == OK
            engine._shards[0].ready = True
            spills = engine.stats().get("serve.router.spill")
            assert spills and spills["calls"] >= 1
        finally:
            engine.close(5.0)


class TestShardCrash:
    def test_crash_mid_load_yields_typed_results_then_recovers(self, sharded):
        engine, reference = sharded
        requests = mixed_requests(24, seed=3)
        futures = [engine.submit(request) for request in requests]
        engine._shards[0].process.kill()
        results = [future.result(60.0) for future in futures]  # never hangs
        statuses = {result.status for result in results}
        assert statuses <= {OK, ERROR, REJECTED}  # typed outcomes only
        errored = [result for result in results if result.status == ERROR]
        for result in errored:
            assert result.error  # every failure says why

        deadline = time.perf_counter() + 30.0
        while engine.healthy_shards() < 2 and time.perf_counter() < deadline:
            time.sleep(0.05)
        assert engine.healthy_shards() == 2  # the monitor restarted it

        # The restarted shard re-synced from the registry: requests serve
        # again, bit-identical to direct dispatch.
        assert_serves_match_direct(engine, reference, 9, seed=4)

        stats = engine.stats()
        assert stats["serve.shard.deaths"]["calls"] >= 1
        assert stats["serve.shard.restarts"]["calls"] >= 1


class TestShardRegistry:
    def test_swap_propagates_with_digest_verification(self):
        static, metas = _multi_tenant_models(2)
        reference = MultiTenantEngine(cache_size=0)
        engine = ShardedEngine(2)
        try:
            reference.register("m", metas[0])
            first = engine.register(
                "m", metas[0], builder=build_shard_tenant, args=("meta", 0)
            )
            sample = mixed_requests(1, seed=9)[0].sample
            before = engine.submit(
                ServeRequest(sample=sample, adapter="m")
            ).result(60.0).require()

            # A tenant-level fine-tune: perturb the mapping net in place.
            metas[0].trunk.weight.data[...] += 0.05
            second = engine.swap("m", metas[0])
            assert second != first  # the digest tracks the new weights
            after = engine.submit(
                ServeRequest(sample=sample, adapter="m")
            ).result(60.0).require()
            assert not np.array_equal(before, after)

            reference.swap("m", metas[0])
            direct = reference.serve(
                ServeRequest(sample=sample, adapter="m")
            ).require()
            assert np.array_equal(after, direct)  # every shard swapped
        finally:
            engine.close(5.0)
            reference.close()

    def test_swap_unknown_tenant_rejected(self, sharded):
        engine, __ = sharded
        static, __metas = _multi_tenant_models(2)
        with pytest.raises(ServeError, match="unknown tenant"):
            engine.swap("nope", static)

    def test_evicted_tenant_answers_typed_error(self, fleet):
        models, __ = fleet
        engine = ShardedEngine(2)
        try:
            register_all(engine, models)
            engine.evict("meta_1")
            assert "meta_1" not in engine.adapters()
            request = mixed_requests(1)[0]
            result = engine.submit(
                ServeRequest(sample=request.sample, adapter="meta_1")
            ).result(5.0)
            assert result.status == ERROR
            with pytest.raises(ServeError, match="unknown tenant"):
                engine.evict("meta_1")
        finally:
            engine.close(5.0)

    def test_builder_must_be_an_importable_module_level_callable(self, fleet):
        models, __ = fleet
        engine = ShardedEngine(1)
        try:
            with pytest.raises(ServeError, match="module-level"):
                engine.register(
                    "bad", models[0], builder=lambda: None
                )
        finally:
            engine.close(5.0)


class TestShardStats:
    def test_merged_counters_sum_over_per_shard_twins(self, sharded):
        from repro.obs.metrics import parse_name, render_name

        engine, __ = sharded
        results = flood(engine, 12, seed=5)
        assert all(result.status == OK for result in results)
        merged = engine.stats()
        # Within one snapshot, every bare counter that has ``{shard=i}``
        # twins must equal their sum — the 2-shard deployment's series
        # are exactly its single-shard equivalents added together.
        sums: dict[tuple, int] = {}
        for rendered, series in merged.items():
            name, labels = parse_name(rendered)
            if series.get("kind") != "counter":
                continue
            if not any(key == "shard" for key, __ in labels):
                continue
            base = (name, tuple(pair for pair in labels if pair[0] != "shard"))
            sums[base] = sums.get(base, 0) + int(series.get("calls", 0))
        assert sums  # the shard-labeled twins exist at all
        checked = 0
        for (name, labels), total in sums.items():
            bare = merged.get(render_name(name, labels))
            if bare is None:
                continue
            assert bare["calls"] == total, name
            checked += 1
        assert checked >= 3  # several series carry the invariant

    def test_shard_spans_absorb_only_while_tracing(self, sharded):
        from repro.obs import TRACER

        engine, __ = sharded
        results = flood(engine, 6, seed=10)
        assert all(result.status == OK for result in results)
        engine.stats()
        # Tracing off: worker-shipped spans must not pile up in the
        # global tracer (a long-lived server would leak them).
        assert TRACER.drain() == []
        TRACER.enable()
        try:
            results = flood(engine, 6, seed=11)
            assert all(result.status == OK for result in results)
            engine.stats()
            spans = TRACER.drain()
        finally:
            TRACER.disable()
        assert spans  # tracing on: the same path absorbs them...
        for span in spans:
            assert span["attrs"]["shard"] in (0, 1)  # ...tagged per shard

    def test_both_shards_served_work(self, sharded):
        engine, __ = sharded
        results = flood(engine, 16, seed=6)
        assert all(result.status == OK for result in results)
        per_shard = engine.shard_stats()
        for shard, snapshot in per_shard.items():
            batches = snapshot.get("serve.batches")
            assert batches and batches["calls"] >= 1, f"shard {shard} idle"

    def test_frontend_stats_op_exposes_the_shard_breakdown(self, sharded):
        engine, reference = sharded
        frontend = ServingFrontend(scheduler=engine)
        host, port = frontend.start_in_thread()
        try:
            with ServeClient(host, port) as client:
                request = mixed_requests(1, seed=8)[0]
                wire = client.serve(request.sample, adapter=request.adapter)
                direct = reference.serve(
                    mixed_requests(1, seed=8)[0]
                ).require()
                assert np.array_equal(wire.require(), direct)
                both = client.stats(per_shard=True)
                assert sorted(both["shards"]) == ["0", "1"]
                merged = both["merged"]
                assert "serve.router.affinity" in merged or (
                    "serve.router.spill" in merged
                )
        finally:
            # The frontend owns the scheduler surface but the fixture owns
            # the engine: stop the server without draining the shards.
            frontend.scheduler = type(
                "Noop", (), {"close": staticmethod(lambda *a, **k: None)}
            )()
            frontend.stop_in_thread()

    def test_recorded_batches_replay_bit_identically(self, sharded):
        engine, reference = sharded
        results = flood(engine, 12, seed=7)
        assert all(result.status == OK for result in results)
        recorded = engine.recorded_batches()
        replayed = 0
        for batches in recorded.values():
            for batch in batches:
                if not all(status == "ok" for status in batch["statuses"]):
                    continue
                direct = reference.serve(
                    [
                        ServeRequest(sample=sample, adapter=adapter)
                        for sample, adapter in zip(
                            batch["samples"], batch["adapters"]
                        )
                    ]
                )
                for embedding, expected in zip(batch["embeddings"], direct):
                    assert np.array_equal(embedding, expected.require())
                replayed += 1
        assert replayed >= 1
