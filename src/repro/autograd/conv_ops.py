"""Differentiable 2-D convolution and pooling.

Convolution is implemented with im2col: patches are unfolded into a matrix
so the convolution becomes a single matmul, which is the fastest approach
available in pure numpy.  The backward pass uses the exact adjoint
(col2im scatter-add), and is validated against finite differences in the
test suite.

Layout convention: activations are ``(N, C, H, W)`` and convolution
weights are ``(K_h, K_w, C_in, C_out)`` — the latter matches the paper's
``W ∈ R^{K×K×I×O}`` notation for Conv-LoRA (Eq. 5).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.perf import FLAGS
from repro.obs import OBS


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size would be {out} "
            f"(input {size}, kernel {kernel}, stride {stride}, padding {padding})"
        )
    return out


def _im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    _use_workspace: bool = False,
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N, out_h, out_w, C, kh, kw)`` patches.

    The returned array is a zero-copy strided view.  With
    ``_use_workspace`` the padded input is written into a pooled scratch
    buffer instead of a fresh allocation — only safe when the caller copies
    the patches out before the next convolution (conv2d's path does; the
    view must not escape the call).
    """
    n, c, h, w = x.shape
    out_h = _out_size(h, kh, stride, padding)
    out_w = _out_size(w, kw, stride, padding)
    if padding:
        if _use_workspace and FLAGS.conv_pad_workspace:
            x = _padded_workspace(x, padding)
        else:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    stride_n, stride_c, stride_h, stride_w = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, c, kh, kw),
        strides=(stride_n, stride_h * stride, stride_w * stride, stride_c, stride_h, stride_w),
        writeable=False,
    )
    return patches, out_h, out_w


# -- workspace + patch caches --------------------------------------------------
#
# Two flag-gated reuse layers sit in front of im2col:
#
# * a padded-input scratch buffer pooled by (shape, dtype), so repeated
#   same-shape convolutions stop reallocating (and re-zeroing) the pad
#   frame every call;
# * a small LRU of materialized patch matrices keyed on the *identity* of
#   the input array plus the convolution geometry.  MetaLoRA's conv
#   adapters convolve the same activations twice per layer (frozen base
#   conv + adapter conv, same kernel/stride/padding), so the second conv
#   reuses the first one's unfolded patches.
#
# Cache entries hold a strong reference to the keyed input array, so its
# ``id`` cannot be recycled while the entry is alive; entries are immutable
# once stored.  Identity alone is not enough — finite-difference gradient
# checking (and any caller doing in-place updates) perturbs the *same*
# array object between forwards — so each entry also stores a cheap
# content fingerprint (sum, sum-of-squares) that must match exactly for a
# hit.  Both reductions are single read passes, far cheaper than the
# kh*kw-amplified patch copy they guard.

_PAD_POOL: dict[tuple[tuple[int, ...], np.dtype], np.ndarray] = {}
_PATCH_CACHE: "OrderedDict[tuple, tuple[np.ndarray, tuple[float, float], np.ndarray, int, int]]" = (
    OrderedDict()
)
_PATCH_CACHE_CAPACITY = 8
_PATCH_CACHE_STATS = {"hits": 0, "misses": 0}


def conv_patch_cache_stats() -> dict[str, int]:
    """Hit/miss counters plus current size of the patches cache."""
    return dict(_PATCH_CACHE_STATS, size=len(_PATCH_CACHE))


def clear_conv_caches() -> None:
    """Drop pooled pad buffers and cached patch matrices (frees memory)."""
    _PAD_POOL.clear()
    _PATCH_CACHE.clear()
    _PATCH_CACHE_STATS["hits"] = 0
    _PATCH_CACHE_STATS["misses"] = 0


def _padded_workspace(x: np.ndarray, padding: int) -> np.ndarray:
    n, c, h, w = x.shape
    shape = (n, c, h + 2 * padding, w + 2 * padding)
    key = (shape, x.dtype)
    buffer = _PAD_POOL.get(key)
    if buffer is None:
        buffer = _PAD_POOL[key] = np.zeros(shape, dtype=x.dtype)
    else:
        # Interior is overwritten below; only the pad frame must be zero,
        # and it already is (nothing ever writes into it).
        pass
    buffer[:, :, padding : padding + h, padding : padding + w] = x
    return buffer


def _im2col_contiguous(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Materialized (contiguous) im2col patches, with the LRU fast path."""
    use_cache = FLAGS.conv_patches_cache
    if use_cache:
        key = (id(x), kh, kw, stride, padding)
        fingerprint = _fingerprint(x)
        entry = _PATCH_CACHE.get(key)
        if entry is not None and entry[0] is x and entry[1] == fingerprint:
            _PATCH_CACHE_STATS["hits"] += 1
            _PATCH_CACHE.move_to_end(key)
            if OBS.enabled:
                OBS.inc("conv2d.patches_cache.hit")
            return entry[2], entry[3], entry[4]
    patches, out_h, out_w = _im2col(x, kh, kw, stride, padding, _use_workspace=True)
    cols = np.ascontiguousarray(patches)
    if use_cache:
        _PATCH_CACHE_STATS["misses"] += 1
        if OBS.enabled:
            OBS.inc("conv2d.patches_cache.miss", bytes=cols.nbytes)
        _PATCH_CACHE[key] = (x, fingerprint, cols, out_h, out_w)
        if len(_PATCH_CACHE) > _PATCH_CACHE_CAPACITY:
            _PATCH_CACHE.popitem(last=False)
    return cols, out_h, out_w


def _fingerprint(x: np.ndarray) -> tuple[float, float]:
    """Cheap content check guarding the patch cache against in-place edits."""
    flat = x.reshape(-1)
    return float(flat.sum()), float(np.dot(flat, flat))


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add patches back into an image."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    out_h, out_w = cols.shape[1], cols.shape[2]
    for i in range(kh):
        for j in range(kw):
            padded[
                :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
            ] += cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if padding:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded


def fold_conv_weight(weight: np.ndarray) -> np.ndarray:
    """Reshape a ``(Kh, Kw, Cin, Cout)`` kernel into the im2col matmul matrix.

    This is the per-call weight layout work of :func:`conv2d`, exposed so
    the serve compiler can fold it once at compile time instead of on
    every request.
    """
    kh, kw, c_in, c_out = weight.shape
    return weight.transpose(2, 0, 1, 3).reshape(c_in * kh * kw, c_out)


def conv2d_forward(
    x: np.ndarray,
    w_mat: np.ndarray,
    bias: np.ndarray | None,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Graph-free convolution forward on raw arrays.

    ``w_mat`` is the pre-folded ``(Cin*kh*kw, Cout)`` matrix from
    :func:`fold_conv_weight`.  Returns ``(out, cols, out_h, out_w)`` —
    ``cols`` is the flattened patch matrix the backward pass (and nothing
    else) needs.  Both :func:`conv2d` and the serve compiler call this, so
    the two paths are bit-identical by construction and share the padded
    workspace / patch caches.
    """
    n, c_in = x.shape[0], x.shape[1]
    patches, out_h, out_w = _im2col_contiguous(x, kh, kw, stride, padding)
    # (N, oh, ow, C*kh*kw) @ (C*kh*kw, Cout) — patches are contiguous, so
    # this reshape is a view (the copy happened once, inside the cache).
    cols = patches.reshape(n, out_h, out_w, c_in * kh * kw)
    out = cols @ w_mat  # (N, oh, ow, Cout)
    out = out.transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.reshape(1, w_mat.shape[1], 1, 1)
    if OBS.enabled:
        OBS.inc("conv2d.forward", bytes=out.nbytes)
    return out, cols, out_h, out_w


def max_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Graph-free max-pool forward; returns ``(out, argmax, out_h, out_w)``."""
    patches, out_h, out_w = _im2col(x, kernel, kernel, stride, padding=0)
    n, c = x.shape[0], x.shape[1]
    windows = patches.reshape(n, out_h, out_w, c, kernel * kernel)
    arg = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]
    return out.transpose(0, 3, 1, 2), arg, out_h, out_w


def avg_pool2d_forward(x: np.ndarray, kernel: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Graph-free average-pool forward; returns ``(out, out_h, out_w)``."""
    patches, out_h, out_w = _im2col(x, kernel, kernel, stride, padding=0)
    n, c = x.shape[0], x.shape[1]
    out = patches.reshape(n, out_h, out_w, c, kernel * kernel).mean(axis=-1)
    return out.transpose(0, 3, 1, 2), out_h, out_w


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution of ``(N, C_in, H, W)`` with ``(K_h, K_w, C_in, C_out)``.

    Returns ``(N, C_out, H_out, W_out)``.  ``bias``, if given, has shape
    ``(C_out,)`` and is added per output channel.
    """
    if x.ndim != 4:
        raise ShapeError(f"conv2d expects 4-d input (N, C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ShapeError(f"conv2d expects 4-d weight (Kh, Kw, Cin, Cout), got {weight.shape}")
    kh, kw, c_in, c_out = weight.shape
    if x.shape[1] != c_in:
        raise ShapeError(
            f"input channels {x.shape[1]} do not match weight channels {c_in}"
        )

    n = x.shape[0]
    w_mat = fold_conv_weight(weight.data)
    out, cols, out_h, out_w = conv2d_forward(
        x.data, w_mat, bias.data if bias is not None else None, kh, kw, stride, padding
    )

    x_shape = x.shape

    def grad_x(g: np.ndarray) -> np.ndarray:
        g_cols = g.transpose(0, 2, 3, 1)  # (N, oh, ow, Cout)
        d_cols = g_cols @ w_mat.T  # (N, oh, ow, C*kh*kw)
        d_patches = d_cols.reshape(n, out_h, out_w, c_in, kh, kw)
        result = _col2im(d_patches, x_shape, kh, kw, stride, padding)
        if OBS.enabled:
            OBS.inc("conv2d.backward", bytes=result.nbytes)
        return result

    def grad_w(g: np.ndarray) -> np.ndarray:
        g_cols = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        cols_flat = cols.reshape(-1, c_in * kh * kw)
        d_w_mat = cols_flat.T @ g_cols  # (C*kh*kw, Cout)
        if OBS.enabled:
            OBS.inc("conv2d.backward", bytes=d_w_mat.nbytes)
        return d_w_mat.reshape(c_in, kh, kw, c_out).transpose(1, 2, 0, 3)

    parents: tuple[Tensor, ...]
    grad_fns: tuple
    if bias is not None:

        def grad_b(g: np.ndarray) -> np.ndarray:
            return g.sum(axis=(0, 2, 3))

        parents = (x, weight, bias)
        grad_fns = (grad_x, grad_w, grad_b)
    else:
        parents = (x, weight)
        grad_fns = (grad_x, grad_w)
    return Tensor._result(out, parents, grad_fns)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the spatial dimensions of a ``(N, C, H, W)`` tensor."""
    if padding < 0:
        raise ShapeError(f"padding must be non-negative, got {padding}")
    if padding == 0:
        return x
    out = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g[:, :, padding:-padding, padding:-padding]

    return Tensor._result(out, (x,), (grad_fn,))


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) spatial windows."""
    stride = stride or kernel
    n, c = x.shape[0], x.shape[1]
    out, arg, out_h, out_w = max_pool2d_forward(x.data, kernel, stride)
    x_shape = x.shape

    def grad_fn(g: np.ndarray) -> np.ndarray:
        g_windows = np.zeros((n, out_h, out_w, c, kernel * kernel), dtype=g.dtype)
        np.put_along_axis(
            g_windows, arg[..., None], g.transpose(0, 2, 3, 1)[..., None], axis=-1
        )
        d_patches = g_windows.reshape(n, out_h, out_w, c, kernel, kernel)
        return _col2im(d_patches, x_shape, kernel, kernel, stride, padding=0)

    return Tensor._result(out, (x,), (grad_fn,))


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over spatial windows."""
    stride = stride or kernel
    n, c = x.shape[0], x.shape[1]
    out, out_h, out_w = avg_pool2d_forward(x.data, kernel, stride)
    x_shape = x.shape
    scale = 1.0 / (kernel * kernel)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        g_spread = np.broadcast_to(
            (g.transpose(0, 2, 3, 1) * scale)[..., None, None],
            (n, out_h, out_w, c, kernel, kernel),
        )
        return _col2im(np.ascontiguousarray(g_spread), x_shape, kernel, kernel, stride, 0)

    return Tensor._result(out, (x,), (grad_fn,))
