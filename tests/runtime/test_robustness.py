"""Acceptance tests for the robustness grid: durability + the clean pin.

Mirrors the Table I resume acceptance (``test_resume.py``) on the
four-axis grid: a run killed mid-flight (deterministic fault injection,
key ``seed/method/corruption/severity``) must resume from its run
directory re-running only the missing cells, bit-identical to an
uninterrupted run.  On top, the robustness-specific structural pin:
severity-0 cells equal the clean Table I evaluation **exactly**.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import CheckpointError, ConfigError, WorkerError
from repro.eval.protocol import Table1Config, run_table1
from repro.eval.robustness import RobustnessConfig
from repro.perf import FAULTS_ENV
from repro.runtime import run_robustness_grid

#: A reduced grid keeps this file fast; the durability scheme is
#: key-generic and does not depend on the axis contents.
METHODS = ("original", "lora")
CORRUPTIONS = ("contrast",)
SEVERITIES = (0, 3)


@pytest.fixture(scope="module")
def config():
    return RobustnessConfig(
        table1=replace(Table1Config().quick(), methods=METHODS),
        corruptions=CORRUPTIONS,
        severities=SEVERITIES,
        stream_methods=("lora",),
    )


@pytest.fixture(scope="module")
def serial(config):
    return run_robustness_grid(config, (0,))


class TestCleanPin:
    def test_severity_zero_equals_table1(self, config, serial):
        clean = run_table1(config.table1, 0)
        for method in METHODS:
            cell = serial.cells[(0, method, "contrast", 0)]
            assert cell.accuracy_by_k == clean[method].accuracy_by_k

    def test_corruption_moves_accuracy_only_at_nonzero_severity(self, serial):
        # Not a strict inequality on accuracy (a corrupted set *can* tie),
        # but the grid must carry both rungs for every method.
        for method in METHODS:
            assert (0, method, "contrast", 0) in serial.cells
            assert (0, method, "contrast", 3) in serial.cells


class TestResume:
    def test_killed_run_resumes_bit_identical(
        self, config, serial, tmp_path, monkeypatch
    ):
        root = tmp_path / "run"
        monkeypatch.setenv(FAULTS_ENV, "crash:0/lora/contrast/3")
        with pytest.raises(WorkerError, match="lora/contrast/3"):
            run_robustness_grid(config, (0,), out_dir=root)
        monkeypatch.delenv(FAULTS_ENV)

        grid = run_robustness_grid(config, (0,), resume=root)
        assert grid.restored == sorted(
            key for key in serial.cells if key != (0, "lora", "contrast", 3)
        )
        # Only the missing cell's context group was rebuilt.
        assert [r.key for r in grid.cell_results] == [
            ("context", (0, "lora")),
            (0, "lora", "contrast", 3),
        ]
        assert set(grid.cells) == set(serial.cells)
        for key in serial.cells:
            assert grid.cells[key].accuracy_by_k == serial.cells[key].accuracy_by_k

    def test_parallel_matches_serial(self, config, serial):
        grid = run_robustness_grid(config, (0,), jobs=2)
        assert set(grid.cells) == set(serial.cells)
        for key in serial.cells:
            assert grid.cells[key].accuracy_by_k == serial.cells[key].accuracy_by_k

    def test_fully_completed_run_resumes_without_recompute(
        self, config, serial, tmp_path
    ):
        root = tmp_path / "run"
        run_robustness_grid(config, (0,), out_dir=root)
        grid = run_robustness_grid(config, (0,), resume=root)
        assert len(grid.restored) == len(serial.cells)
        assert grid.cell_results == []  # no contexts, no cells

    def test_resume_under_different_config_refused(self, config, tmp_path):
        root = tmp_path / "run"
        run_robustness_grid(config, (0,), out_dir=root)
        other = replace(config, severities=(0, 4))
        with pytest.raises(CheckpointError, match="different\\s+configuration"):
            run_robustness_grid(other, (0,), resume=root)

    def test_no_seeds_refused(self, config):
        with pytest.raises(ConfigError, match="at least one seed"):
            run_robustness_grid(config, ())
