"""Classic LoRA for linear layers (Hu et al., 2021).

``W' = W + (α/R) · A B`` with ``A ∈ R^{I×R}`` (small Gaussian init) and
``B ∈ R^{R×O}`` (zero init, so the adapter starts as the identity).  The
static baseline of Table I.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.peft.base import Adapter


class LoRALinear(Adapter):
    """LoRA adapter around a frozen :class:`~repro.nn.linear.Linear`."""

    def __init__(
        self,
        base: Linear,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(f"LoRALinear wraps Linear, got {type(base).__name__}")
        if rank <= 0:
            raise AdapterError(f"LoRA rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.alpha = float(alpha if alpha is not None else rank)
        self.scaling = self.alpha / rank
        self.lora_a = Parameter(init.normal(rng, (base.in_features, rank), std=0.02))
        self.lora_b = Parameter(init.zeros((rank, base.out_features)))

    def forward(self, x: Tensor) -> Tensor:
        return self.base(x) + (x @ self.lora_a @ self.lora_b) * self.scaling

    def delta_weight(self) -> np.ndarray:
        return (self.lora_a.data @ self.lora_b.data) * self.scaling

    def extra_parameter_count(self) -> int:
        """Trainable scalars this adapter adds on top of the frozen base."""
        return self.lora_a.size + self.lora_b.size
