"""``repro.obs`` — the unified observability layer: metrics + tracing.

One subsystem replaces the three reporting surfaces that grew up around
the flat profiler (``PROFILER.snapshot()``, ``EmbeddingEngine.stats()``
and the per-bench JSON ``counters`` sections):

- :data:`OBS` (:class:`~repro.obs.metrics.MetricsRegistry`) — the typed
  metrics registry (counter / timer / gauge / histogram, dotted names,
  optional labels).  Hot paths guard with ``if OBS.enabled:`` — a single
  attribute check while disabled, the same contract the legacy profiler
  guaranteed.
- :data:`TRACER` (:class:`~repro.obs.trace.Tracer`) — hierarchical
  context-manager spans with events and per-span metric deltas,
  exported as ``trace.jsonl`` into run directories and rendered by
  ``repro trace``.
- :func:`observed` — enable both for a block, restoring prior state.

The legacy ``repro.utils.profiling.PROFILER`` still works as a thin
shim over :data:`OBS`; new code should import from here.  See
``docs/observability.md`` for the API, the naming conventions, and the
snapshot / trace schemas.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.obs.metrics import KINDS, METRICS, MetricSeries, MetricsRegistry
from repro.obs.report import render_trace_report, render_trace_target, resolve_trace_path
from repro.obs.trace import (
    TRACE_FILE,
    TRACER,
    Span,
    Tracer,
    build_trees,
    flatten_spans,
    load_trace,
    write_trace,
)

#: Canonical short name for the process-wide metrics registry.
OBS = METRICS


@contextlib.contextmanager
def observed(metrics: bool = True, trace: bool = True) -> Iterator[tuple]:
    """Enable the metrics registry and/or tracer for a block.

    Prior enabled-state is restored on exit; accumulated series and
    finished spans are kept (``OBS.reset()`` / ``TRACER.reset()`` first
    for a clean window).
    """
    previous = (METRICS.enabled, TRACER.enabled)
    if metrics:
        METRICS.enabled = True
    if trace:
        TRACER.enabled = True
    try:
        yield METRICS, TRACER
    finally:
        METRICS.enabled, TRACER.enabled = previous


__all__ = [
    "KINDS",
    "METRICS",
    "MetricSeries",
    "MetricsRegistry",
    "OBS",
    "Span",
    "TRACE_FILE",
    "TRACER",
    "Tracer",
    "build_trees",
    "flatten_spans",
    "load_trace",
    "observed",
    "render_trace_report",
    "render_trace_target",
    "resolve_trace_path",
    "write_trace",
]
