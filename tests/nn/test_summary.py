"""Tests for the model summary."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models import resnet_small
from repro.nn import Conv2d, Linear, summarize
from repro.nn.summary import collect_rows
from repro.peft import attach


class TestSummary:
    def test_lists_leaf_layers(self, rng):
        model = resnet_small(4, rng)
        text = summarize(model)
        assert "Conv2d" in text
        assert "Linear" in text
        assert "total:" in text

    def test_parameter_totals_match_model(self, rng):
        model = resnet_small(4, rng)
        rows = collect_rows(model)
        assert sum(r.parameters for r in rows) == model.parameter_count()

    def test_dry_run_forward_validates_wiring(self, rng):
        model = resnet_small(4, rng)
        text = summarize(model, input_shape=(3, 16, 16))
        assert "total" in text

    def test_dry_run_fails_on_wrong_shape(self, rng):
        model = resnet_small(4, rng)
        with pytest.raises(ShapeError):
            summarize(model, input_shape=(5, 16, 16))

    def test_adapters_marked(self, rng):
        model = resnet_small(4, rng)
        attach(model, "lora", rank=2, rng=rng)
        rows = collect_rows(model)
        assert any(r.is_adapter for r in rows)
        text = summarize(model)
        assert "ConvLoRA" in text
        assert "(* = adapter)" in text

    def test_trainable_fraction_in_footer(self, rng):
        model = resnet_small(4, rng)
        model.freeze()
        assert "(0.00%)" in summarize(model)
