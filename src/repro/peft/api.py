"""The public PEFT surface: ``attach`` / ``AttachResult``.

``attach`` is the single entry point for putting adapters on a model::

    result = attach(backbone, method="meta_tr", rank=4, rng=rng)
    ... train result.trainable_parameters() ...
    result.merge()     # static methods: bake ΔW into the base layers
    result.detach()    # or: restore the original, un-adapted layers

Methods are resolved by name through :data:`PEFT_METHODS`, a
:class:`~repro.utils.registry.Registry` — third-party adapters register a
factory and immediately work everywhere ``attach`` is used (the Table I
protocol, the auto-planner, the examples).  A factory receives the layer
being wrapped plus ``rank`` / ``rng`` / any extra keyword options and
returns an :class:`~repro.peft.base.Adapter`.

``attach`` also accepts a *callable* in place of a method name for
callers that need full control (e.g. per-layer ranks in
:func:`repro.peft.auto.apply_plan`); the callable receives each target
layer and returns the adapter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import AdapterError
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.peft.base import Adapter, get_module, set_module
from repro.peft.bottleneck import BottleneckAdapter
from repro.peft.conv_lora import ConvLoRA
from repro.peft.dora import DoRALinear
from repro.peft.lora import LoRALinear
from repro.peft.meta_cp import MetaLoRACPConv, MetaLoRACPLinear
from repro.peft.meta_tr import MetaLoRATRConv, MetaLoRATRLinear
from repro.peft.moe_lora import MoELoRALinear
from repro.peft.multi_lora import MultiLoRAConv, MultiLoRALinear
from repro.peft.tt_lora import TTLoRALinear
from repro.utils.registry import Registry
from repro.utils.rng import new_rng

#: Name -> adapter factory.  Factories take ``(layer, *, rank, rng,
#: **options)`` and must raise :class:`AdapterError` for layer types they
#: cannot wrap — ``attach`` surfaces that with the offending layer's name.
PEFT_METHODS: Registry[Adapter] = Registry("peft method")


def _linear_only(name: str, cls: type, layer: Module, **kwargs: object) -> Adapter:
    if isinstance(layer, Linear):
        return cls(layer, **kwargs)
    raise AdapterError(
        f"method {name!r} adapts Linear layers only, got {type(layer).__name__} "
        f"(pass targets=(Linear,) to attach)"
    )


@PEFT_METHODS.register("lora")
def _build_lora(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    if isinstance(layer, Conv2d):
        return ConvLoRA(layer, rank, rng=rng, **options)
    return _linear_only("lora", LoRALinear, layer, rank=rank, rng=rng, **options)


@PEFT_METHODS.register("multi_lora")
def _build_multi_lora(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    if isinstance(layer, Conv2d):
        return MultiLoRAConv(layer, rank, rng=rng, **options)
    return _linear_only("multi_lora", MultiLoRALinear, layer, rank=rank, rng=rng, **options)


def _build_meta_cp(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    if isinstance(layer, Conv2d):
        return MetaLoRACPConv(layer, rank, rng=rng, **options)
    return _linear_only("meta_cp", MetaLoRACPLinear, layer, rank=rank, rng=rng, **options)


def _build_meta_tr(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    if isinstance(layer, Conv2d):
        return MetaLoRATRConv(layer, rank, rng=rng, **options)
    return _linear_only("meta_tr", MetaLoRATRLinear, layer, rank=rank, rng=rng, **options)


# The paper's two formats under both their short names and the method
# names the Table I protocol has always used.
PEFT_METHODS.register("meta_cp")(_build_meta_cp)
PEFT_METHODS.register("meta_lora_cp")(_build_meta_cp)
PEFT_METHODS.register("meta_tr")(_build_meta_tr)
PEFT_METHODS.register("meta_lora_tr")(_build_meta_tr)


@PEFT_METHODS.register("moe_lora")
def _build_moe_lora(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    return _linear_only("moe_lora", MoELoRALinear, layer, rank=rank, rng=rng, **options)


@PEFT_METHODS.register("dora")
def _build_dora(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    return _linear_only("dora", DoRALinear, layer, rank=rank, rng=rng, **options)


@PEFT_METHODS.register("tt_lora")
def _build_tt_lora(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    return _linear_only("tt_lora", TTLoRALinear, layer, rank=rank, rng=rng, **options)


@PEFT_METHODS.register("bottleneck")
def _build_bottleneck(layer: Module, *, rank: int, rng: np.random.Generator, **options) -> Adapter:
    # The bottleneck width plays the role rank does elsewhere.
    return _linear_only("bottleneck", BottleneckAdapter, layer, bottleneck=rank, rng=rng, **options)


@dataclass
class AttachResult:
    """Handle over one ``attach`` call: the adapted model plus lifecycle.

    Iterating yields ``(dotted_name, adapter)`` pairs in injection order,
    which is also the deterministic head order
    :class:`~repro.peft.meta_model.MetaLoRAModel` builds from.
    """

    model: Module
    method: str
    adapters: dict[str, Adapter]
    originals: dict[str, Module] = field(repr=False)
    _prior_trainable: list[Parameter] = field(repr=False)
    _state: str = field(default="attached", repr=False)

    def __iter__(self) -> Iterator[tuple[str, Adapter]]:
        return iter(self.adapters.items())

    def __len__(self) -> int:
        return len(self.adapters)

    @property
    def state(self) -> str:
        """``"attached"``, ``"detached"`` or ``"merged"``."""
        return self._state

    @property
    def is_meta(self) -> bool:
        """True if any attached adapter is input-conditioned."""
        return any(adapter.is_meta for adapter in self.adapters.values())

    def named_adapters(self) -> Iterator[tuple[str, Adapter]]:
        yield from self.adapters.items()

    def trainable_parameters(self) -> Iterator[Parameter]:
        yield from self.model.trainable_parameters()

    def _require_attached(self, verb: str) -> None:
        if self._state != "attached":
            raise AdapterError(
                f"cannot {verb}: adapters already {self._state} "
                f"(each AttachResult supports one detach() or merge())"
            )

    def detach(self) -> Module:
        """Restore every original layer; exact inverse of ``attach``.

        The parameters that were trainable before ``attach`` froze the
        model get their gradients back — nothing more, so layers the
        caller had deliberately frozen beforehand stay frozen.
        """
        self._require_attached("detach")
        for name, original in self.originals.items():
            set_module(self.model, name, original)
        for param in self._prior_trainable:
            param.requires_grad = True
        self._state = "detached"
        return self.model

    def merge(self) -> Module:
        """Bake every adapter's ΔW into its base layer, in place.

        Refuses meta (input-conditioned) adapters before touching any
        weight, so a failed merge never leaves the model half-baked.
        Merged base layers are trainable again afterwards — they are
        ordinary layers once the adapter is gone.
        """
        self._require_attached("merge")
        for name, adapter in self.adapters.items():
            if adapter.is_meta:
                raise AdapterError(
                    f"adapter {name!r} is input-conditioned (meta) and cannot "
                    f"be merged; use detach() to recover the original layers"
                )
        for name, adapter in self.adapters.items():
            merged = adapter.merge()
            set_module(self.model, name, merged)
            merged.unfreeze()
        self._state = "merged"
        return self.model

    def digest(self) -> str:
        """Stable SHA-256 identity: adapter families, ranks and weights.

        Computed by :func:`repro.peft.checkpoint.state_digest` — the same
        function adapter-checkpoint manifests embed and the serve
        registry's program-cache keys use — over the model's full weight
        state (parameters and buffers).  Two results digest equal iff
        they would serve identically; any weight mutation (training,
        merge, checkpoint load) changes it.
        """
        from repro.peft.checkpoint import model_digest  # local: avoid cycle

        return model_digest(self.model)

    def serving_model(self, merge: bool = True) -> Module:
        """The model the serve compiler should lower for inference.

        With ``merge=True`` (and only while still attached), static
        adapters are baked into their base layers via :meth:`merge` so the
        compiled program carries no adapter ops.  Meta adapters cannot
        merge — the model is returned as-is and the compiler uses their
        pre-planned einsum fast paths instead.  Already-merged or detached
        results just return the model.
        """
        if merge and self._state == "attached" and not self.is_meta:
            return self.merge()
        return self.model


def attach(
    model: Module,
    method: str | Callable[[Module], Adapter] = "meta_tr",
    rank: int = 4,
    *,
    targets: Sequence[type] = (Linear, Conv2d),
    skip: Sequence[str] = (),
    rng: np.random.Generator | None = None,
    **options: object,
) -> AttachResult:
    """Freeze ``model`` and wrap every target layer with ``method``'s adapter.

    ``method`` is a :data:`PEFT_METHODS` name (``"lora"``, ``"meta_tr"``,
    ...) or a callable ``layer -> Adapter``.  ``targets`` lists the layer
    types to wrap; ``skip`` lists dotted names to leave untouched (e.g.
    the classifier head).  Extra keyword ``options`` (``alpha``,
    ``branches``, ``experts``, ...) are forwarded to the method factory.

    Returns an :class:`AttachResult` whose :meth:`~AttachResult.detach` /
    :meth:`~AttachResult.merge` undo or finalize the surgery.
    """
    if isinstance(method, str) and method not in PEFT_METHODS:
        raise AdapterError(
            f"unknown peft method {method!r}; registered: "
            f"{', '.join(PEFT_METHODS.names())}"
        )
    if callable(method):
        factory = method
        method_name = getattr(method, "__name__", type(method).__name__)
    else:
        method_rng = rng if rng is not None else new_rng(0)

        def factory(layer: Module) -> Adapter:
            return PEFT_METHODS.create(
                method, layer, rank=rank, rng=method_rng, **options
            )

        method_name = method

    adapter_prefixes = [
        name for name, module in model.named_modules() if isinstance(module, Adapter)
    ]
    target_names = []
    for name, module in model.named_modules():
        if not (isinstance(module, tuple(targets)) and name and name not in skip):
            continue
        owner = next(
            (p for p in adapter_prefixes if name.startswith(p + ".")), None
        )
        if owner is not None:
            raise AdapterError(
                f"layer {name!r} is already adapted (inside {owner!r}); "
                "detach() or merge() the existing adapters first"
            )
        target_names.append(name)
    if not target_names:
        raise AdapterError(
            f"no layers of type {[t.__name__ for t in targets]} found to adapt"
        )

    prior_trainable = [p for p in model.parameters() if p.requires_grad]
    model.freeze()
    adapters: dict[str, Adapter] = {}
    originals: dict[str, Module] = {}
    for name in target_names:
        layer = get_module(model, name)
        if isinstance(layer, Adapter):
            raise AdapterError(f"layer {name!r} already adapted")
        try:
            adapter = factory(layer)
        except AdapterError as exc:
            raise AdapterError(f"layer {name!r}: {exc}") from exc
        set_module(model, name, adapter)
        adapters[name] = adapter
        originals[name] = layer
    return AttachResult(
        model=model,
        method=method_name,
        adapters=adapters,
        originals=originals,
        _prior_trainable=prior_trainable,
    )
