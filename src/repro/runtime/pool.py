"""Generic process-pool execution of independent experiment cells.

The experiment grids this library runs — Table I ``(method, seed)``
pairs, significance-test repeats, the rank/format ablation sweeps — are
embarrassingly parallel: every cell is a pure function of its key.
:func:`run_cells` shards such cells across a ``fork`` process pool with

- **determinism**: a cell must derive all randomness from its own key
  (see :func:`repro.eval.protocol.method_rng` for the Table I scheme),
  so results are bit-identical however cells land on workers;
- **a serial fallback**: ``jobs=1``, a single cell, or a platform
  without ``fork`` all run the exact same code in-process;
- **crash isolation**: a worker exception is caught *inside* the worker
  and shipped back as a structured :class:`CellFailure` (type, message,
  remote traceback) on its :class:`CellResult` — one bad cell neither
  hangs the pool nor takes down its siblings;
- **profiler aggregation**: when the parent's profiler is enabled, each
  worker records into its own profiler and the snapshot is merged back
  into the parent's (:meth:`repro.utils.profiling.Profiler.merge_counters`).

Workers execute cells under ``perf_overrides(**perf)`` — the Table I
grid uses this to enable the autograd memory diet
(``backward_release``), which is safe there because training steps never
backpropagate the same graph twice.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigError, WorkerError
from repro.perf import perf_overrides
from repro.utils.profiling import PROFILER


@dataclass(frozen=True)
class CellFailure:
    """A structured record of one cell's exception."""

    key: object
    error_type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return f"cell {self.key!r}: {self.error_type}: {self.message}"


@dataclass
class CellResult:
    """Outcome of one cell: either ``value`` or a ``failure``, plus timing."""

    key: object
    value: object = None
    failure: CellFailure | None = None
    seconds: float = 0.0
    counters: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failure is None


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean one CPU's worth."""
    if jobs is None or jobs == 0:
        return multiprocessing.cpu_count()
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _execute_cell(
    fn: Callable[[object], object],
    key: object,
    cell: object,
    perf: dict[str, bool] | None,
    profile: bool,
) -> CellResult:
    """Run one cell, capturing exceptions and (optionally) profiler counters.

    Module-level so it pickles for the pool; runs verbatim on the serial
    fallback path.
    """
    start = time.perf_counter()
    counters: dict = {}
    try:
        if profile:
            PROFILER.reset()
            PROFILER.enable()
        try:
            with perf_overrides(**(perf or {})):
                value = fn(cell)
        finally:
            if profile:
                PROFILER.disable()
                counters = PROFILER.as_dict()
        return CellResult(
            key, value=value, seconds=time.perf_counter() - start, counters=counters
        )
    except Exception as exc:  # crash isolation: ship, don't hang the pool
        failure = CellFailure(
            key=key,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )
        return CellResult(
            key, failure=failure, seconds=time.perf_counter() - start, counters=counters
        )


def run_cells(
    fn: Callable[[object], object],
    cells: Sequence[object],
    *,
    jobs: int = 1,
    keys: Sequence[object] | None = None,
    perf: dict[str, bool] | None = None,
) -> list[CellResult]:
    """Execute ``fn(cell)`` for every cell, in order, possibly in parallel.

    ``keys`` (default: the cells themselves) label results and failures.
    ``perf`` is a set of :class:`repro.perf.PerfFlags` overrides applied
    around each cell.  Results always come back in input order.
    """
    if keys is None:
        keys = list(cells)
    elif len(keys) != len(cells):
        raise ConfigError(f"{len(keys)} keys for {len(cells)} cells")
    jobs = resolve_jobs(jobs)
    parallel = jobs > 1 and len(cells) > 1 and fork_available()

    # In-process cells record straight into the parent profiler; pool
    # workers snapshot their own and the parent merges the counters back,
    # so `profiled()` spans a parallel region either way.
    profile_workers = PROFILER.enabled and parallel
    tasks = [(fn, key, cell, perf, profile_workers) for key, cell in zip(keys, cells)]

    if not parallel:
        results = [_execute_cell(*task) for task in tasks]
    else:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(jobs, len(cells))) as pool:
            results = pool.starmap(_execute_cell, tasks)
        for result in results:
            PROFILER.merge_counters(result.counters)
    return results


def raise_failures(results: Sequence[CellResult]) -> None:
    """Raise :class:`WorkerError` summarizing every failed cell, if any."""
    failures = [r.failure for r in results if not r.ok]
    if not failures:
        return
    summary = "; ".join(str(f) for f in failures[:5])
    if len(failures) > 5:
        summary += f"; ... ({len(failures) - 5} more)"
    detail = "\n\n".join(f.traceback for f in failures[:3])
    raise WorkerError(
        f"{len(failures)}/{len(results)} cells failed: {summary}\n"
        f"first tracebacks:\n{detail}"
    )
