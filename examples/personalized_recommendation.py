"""Personalized recommendation with MetaLoRA (Sec. III-E).

The paper singles out recommendation as a natural fit for MetaLoRA:
"models need to adapt to individual user preferences".  Here each *user*
plays the role of a task:

- a shared scoring MLP is pre-trained on pooled interaction data,
- each user's taste rotates the item-feature space differently
  (the per-user analogue of the per-task color direction in the vision
  experiments),
- a static LoRA must serve all users with one update; MetaLoRA generates
  a per-interaction seed from the input profile and specializes.

This example exercises the PEFT API on plain feature vectors — no images,
no convolutions — showing the adapters are architecture-agnostic.

Run:  python examples/personalized_recommendation.py
"""

import numpy as np

from repro.autograd import Tensor
from repro.models.feature_extractor import FeatureExtractor
from repro.nn import Linear, Module, ReLU, Sequential
from repro.peft import MetaLoRAModel, attach
from repro.train import Adam, Trainer, cross_entropy
from repro.utils.rng import spawn_rngs

FEATURE_DIM = 12
NUM_USERS = 8
RANK = 2


class ScoringNet(Module):
    """Interaction features -> like/dislike logits, with an embedding head."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.body = Sequential(
            Linear(FEATURE_DIM, 24, rng=rng), ReLU(), Linear(24, 16, rng=rng), ReLU()
        )
        self.head = Linear(16, 2, rng=rng)
        self.embedding_dim = 16

    def features(self, x: Tensor) -> Tensor:
        return self.body(x)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.features(x))


def make_user_rotations(rng: np.random.Generator) -> list[np.ndarray]:
    """Each user perceives item features through their own rotation."""
    rotations = []
    for __ in range(NUM_USERS):
        q, __r = np.linalg.qr(rng.normal(size=(FEATURE_DIM, FEATURE_DIM)))
        rotations.append(q.astype(np.float32))
    return rotations


def sample_interactions(
    user: int,
    rotations: list[np.ndarray],
    taste: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Items a user saw, with like/dislike labels from their latent taste.

    The user's id is softly encoded in the profile bias (first feature
    block), mirroring how real systems concatenate user covariates — this
    is the signal MetaLoRA's extractor can exploit.
    """
    items = rng.normal(size=(n, FEATURE_DIM)).astype(np.float32)
    scores = items @ taste
    labels = (scores > 0).astype(np.int64)
    observed = items @ rotations[user].T
    observed[:, :2] += user * 0.5  # user signature visible in the input
    return observed.astype(np.float32), labels


def main() -> None:
    rng_model, rng_data, rng_adapt = spawn_rngs(seed=0, count=3)
    rotations = make_user_rotations(rng_data)
    taste = rng_data.normal(size=FEATURE_DIM)

    # Pre-train the shared scorer on user 0 only (the "pooled" model).
    x0, y0 = sample_interactions(0, rotations, taste, 800, rng_data)
    scorer = ScoringNet(rng_model)
    Trainer(scorer, Adam(scorer.parameters(), lr=3e-3)).fit(
        x0, y0, epochs=8, batch_size=32, rng=rng_data
    )
    state = scorer.state_dict()

    # Training mixture over all users; evaluation held out per user.
    train_x, train_y = [], []
    eval_sets = []
    for user in range(NUM_USERS):
        x, y = sample_interactions(user, rotations, taste, 120, rng_data)
        train_x.append(x[:80])
        train_y.append(y[:80])
        eval_sets.append((user, x[80:], y[80:]))
    mixture_x = np.concatenate(train_x)
    mixture_y = np.concatenate(train_y)

    def fresh(method: str) -> Module:
        model = ScoringNet(rng_model)
        model.load_state_dict(state)
        if method == "frozen":
            model.freeze()
            return model
        if method == "lora":
            attach(model, "lora", rank=RANK, targets=(Linear,), rng=rng_adapt)
            return model
        # meta: a frozen copy of the pooled scorer provides profile features.
        result = attach(model, method, rank=RANK, targets=(Linear,), rng=rng_adapt)
        extractor_net = ScoringNet(rng_model)
        extractor_net.load_state_dict(state)
        return MetaLoRAModel(
            model, FeatureExtractor(extractor_net), rng=rng_adapt, adapters=result
        )

    print(f"{'method':<12} {'mean acc':>9}   per-user accuracy")
    for method in ("frozen", "lora", "meta_lora_tr"):
        model = fresh(method)
        trainable = list(model.trainable_parameters())
        if trainable:
            trainer = Trainer(model, Adam(trainable, lr=5e-3))
            trainer.fit(mixture_x, mixture_y, epochs=12, batch_size=32, rng=rng_adapt)
        else:
            trainer = Trainer(model, Adam([p for p in model.parameters()][:1], lr=1e-9))
        accs = [trainer.evaluate(x, y) for __, x, y in eval_sets]
        per_user = " ".join(f"{100 * a:4.0f}" for a in accs)
        print(f"{method:<12} {100 * float(np.mean(accs)):8.1f}%   {per_user}")
    print(
        "\nMetaLoRA reads the user signature from the input profile and "
        "generates a per-interaction weight update; static LoRA serves all "
        "users with one compromise update."
    )


if __name__ == "__main__":
    main()
