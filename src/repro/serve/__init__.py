"""Graph-free compiled inference for embedding serving.

``compile_features`` lowers a model's ``features()`` into a flat program
of raw-numpy kernels (no Tensor wrapping, no autograd bookkeeping);
``EmbeddingEngine`` serves one program with micro-batching and an LRU
result cache, while ``AdapterRegistry`` + ``MultiTenantEngine`` serve a
fleet of *named* adapters — hot register/swap/evict, a shared LRU of
compiled programs, and cross-tenant micro-batching.  ``optimize``
supplies the compile-time pass pipeline: precision tiers
(f64/f32/int8), elementwise-chain fusion, the per-run arena allocator
and the thread-parallel slot scheduler.  See docs/serving.md.
"""

from repro.serve.optimize import (
    PRECISIONS,
    Arena,
    fuse_program,
    quantize_weight,
    resolve_precision,
)
from repro.serve.compile import (
    CompiledProgram,
    ProgramBuilder,
    compile_features,
    compile_forward,
    compile_seed_mapping,
    compiles,
    compiles_features,
)
from repro.serve.engine import (
    ENGINES,
    EmbeddingEngine,
    Engines,
    build_engine,
    clear_shared_engines,
    shared_engine,
)
from repro.serve.registry import (
    AdapterEntry,
    AdapterRegistry,
    MultiTenantEngine,
    ProgramCache,
    ProgramKey,
    program_key,
)

__all__ = [
    "AdapterEntry",
    "AdapterRegistry",
    "Arena",
    "CompiledProgram",
    "EmbeddingEngine",
    "ENGINES",
    "Engines",
    "MultiTenantEngine",
    "PRECISIONS",
    "ProgramBuilder",
    "ProgramCache",
    "ProgramKey",
    "build_engine",
    "clear_shared_engines",
    "compile_features",
    "compile_forward",
    "compile_seed_mapping",
    "compiles",
    "compiles_features",
    "fuse_program",
    "program_key",
    "quantize_weight",
    "resolve_precision",
    "shared_engine",
]
