"""Tests for the TensorNetwork graph and contraction planning (Fig. 1)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensornet import TensorNetwork, random_tr, tr_to_tensor
from repro.tensornet.diagrams import describe_order, render_diagram


def lora_network(rng):
    net = TensorNetwork()
    net.add("A", rng.normal(size=(6, 2)), ("i", "r"))
    net.add("B", rng.normal(size=(2, 7)), ("r", "o"))
    return net


class TestConstruction:
    def test_duplicate_name_rejected(self, rng):
        net = lora_network(rng)
        with pytest.raises(ShapeError, match="already"):
            net.add("A", rng.normal(size=(2, 2)), ("x", "y"))

    def test_label_count_must_match_order(self, rng):
        net = TensorNetwork()
        with pytest.raises(ShapeError):
            net.add("T", rng.normal(size=(2, 3)), ("i",))

    def test_bond_dimension_must_agree(self, rng):
        net = TensorNetwork()
        net.add("A", rng.normal(size=(3, 4)), ("i", "r"))
        with pytest.raises(ShapeError, match="dimension"):
            net.add("B", rng.normal(size=(5, 2)), ("r", "o"))

    def test_bond_joins_at_most_two(self, rng):
        net = TensorNetwork()
        net.add("A", rng.normal(size=(2,)), ("r",))
        net.add("B", rng.normal(size=(2,)), ("r",))
        with pytest.raises(ShapeError, match="at most two"):
            net.add("C", rng.normal(size=(2,)), ("r",))

    def test_repeated_label_on_one_tensor_rejected(self, rng):
        net = TensorNetwork()
        with pytest.raises(ShapeError, match="repeats"):
            net.add("A", rng.normal(size=(2, 2)), ("r", "r"))


class TestStructure:
    def test_free_and_bond_labels(self, rng):
        net = lora_network(rng)
        assert net.free_labels() == ["i", "o"]
        assert net.bond_labels() == ["r"]

    def test_graph_export(self, rng):
        g = lora_network(rng).graph()
        assert set(g.nodes) == {"A", "B"}
        assert g.edges["A", "B"]["label"] == "r"
        assert g.edges["A", "B"]["dim"] == 2

    def test_order_query(self, rng):
        net = lora_network(rng)
        assert net.order("A") == 2


class TestContraction:
    def test_lora_contracts_to_matmul(self, rng):
        net = lora_network(rng)
        a = net._tensors["A"]
        b = net._tensors["B"]
        assert np.allclose(net.contract(), a @ b)

    def test_schedule_matches_one_shot(self, rng):
        tr = random_tr((3, 4, 5), 2, rng)
        net = TensorNetwork()
        net.add("G1", tr.cores[0], ("r0", "i", "r1"))
        net.add("G2", tr.cores[1], ("r1", "j", "r2"))
        net.add("G3", tr.cores[2], ("r2", "k", "r0"))
        one_shot = net.contract()
        stepwise, schedule = net.contract_with_schedule()
        assert np.allclose(one_shot, stepwise)
        assert len(schedule) == 2
        assert np.allclose(one_shot, tr_to_tensor(tr))

    def test_greedy_prefers_small_intermediates(self, rng):
        # Chain a(i,r) - b(r,s) - c(s,j) with huge j: greedy must contract
        # a-b first (small result) rather than b-c (huge result).
        net = TensorNetwork()
        net.add("a", rng.normal(size=(2, 3)), ("i", "r"))
        net.add("b", rng.normal(size=(3, 4)), ("r", "s"))
        net.add("c", rng.normal(size=(4, 500)), ("s", "j"))
        schedule = net.greedy_schedule()
        assert {schedule[0].left, schedule[0].right} == {"a", "b"}

    def test_disconnected_network_outer_product(self, rng):
        net = TensorNetwork()
        net.add("u", rng.normal(size=3), ("i",))
        net.add("v", rng.normal(size=4), ("j",))
        u, v = net._tensors["u"], net._tensors["v"]
        assert np.allclose(net.contract(), np.outer(u, v))
        stepwise, __ = net.contract_with_schedule()
        assert np.allclose(stepwise, np.outer(u, v))

    def test_empty_network_raises(self):
        with pytest.raises(ShapeError):
            TensorNetwork().contract()

    def test_scalar_result(self, rng):
        net = TensorNetwork()
        net.add("u", rng.normal(size=5), ("i",))
        net.add("v", rng.normal(size=5), ("i",))
        u, v = net._tensors["u"], net._tensors["v"]
        assert net.contract() == pytest.approx(u @ v)


class TestDiagrams:
    def test_render_mentions_bonds_and_free_legs(self, rng):
        text = render_diagram(lora_network(rng))
        assert "A ──r(2)── B" in text
        assert "──i(6)──○" in text

    def test_describe_order_fig1_roles(self, rng):
        net = TensorNetwork()
        net.add("v", rng.normal(size=3), ("i",))
        net.add("M", rng.normal(size=(3, 4)), ("i", "j"))
        net.add("T", rng.normal(size=(4, 2, 2)), ("j", "k", "l"))
        roles = describe_order(net)
        assert roles["v"].startswith("vector")
        assert roles["M"].startswith("matrix")
        assert "3th-order" in roles["T"]
