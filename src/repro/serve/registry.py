"""Multi-tenant adapter serving: named adapters behind one engine.

One serving process, many tasks: :class:`AdapterRegistry` manages *named*
adapters — register, hot-swap, evict at runtime — on top of
``peft.attach`` / ``AttachResult.serving_model()``, and
:class:`MultiTenantEngine` serves them behind a tenant-aware API
(``submit(sample, adapter="name")`` / ``embed(images, adapter=...)``).

Three design points carry the throughput story:

- **Program sharing.**  Compiled slot-programs live in a process-wide-ish
  LRU (:class:`ProgramCache`) keyed by :class:`ProgramKey` — a
  ``(backbone_digest, families, ranks, weights_digest)`` tuple built from
  :func:`repro.peft.checkpoint.state_digest`, the same function checkpoint
  manifests and ``AttachResult.digest()`` use.  Tenants whose merged
  static graphs coincide share one program; counters
  ``serve.program_cache.{hit,miss,evict}`` record the traffic.

- **Split compilation for MetaLoRA tenants.**  A seed-slot tenant
  compiles to *three* programs — extractor (``x → features``), mapping
  (``features → stacked seeds``) and body (``(x, seeds) → embeddings``) —
  keyed independently, so tenants sharing a backbone+extractor but
  trained to different mapping weights share two of the three.

- **Heterogeneous micro-batching.**  The dispatcher groups queued
  requests by adapter: static tenants sharing a program are stacked into
  one run, and seed-slot tenants sharing a body are stacked *across
  tenants* — extractor once over the union, mapping per tenant (its
  float64 GEMMs are the one stage whose BLAS results depend on row
  count, so per-tenant batches keep rows bit-identical to single-tenant
  serving), then one body run consuming every tenant's seeds.

Metrics mirror :class:`~repro.serve.engine.EmbeddingEngine`'s
(``serve.requests``, ``serve.batches``, ``serve.batch.size``,
``serve.queue_wait``, ``serve.cache.*``, ``serve.run``), with two
additions: a ``serve.batch.tenants`` histogram (distinct adapters per
dispatch group) and — when ``tenant_labels`` is on — a ``{tenant=name}``
labeled twin of each per-request series next to the bare aggregate.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ServeError
from repro.nn.module import Module
from repro.obs import OBS, TRACER
from repro.obs.metrics import MetricsRegistry
from repro.peft.meta_model import MetaLoRAModel
from repro.serve.compile import (
    CompiledProgram,
    compile_features,
    compile_forward,
    compile_seed_mapping,
)
from repro.serve.optimize import resolve_precision

#: Label used on ``serve.run`` when one program execution serves rows
#: from more than one tenant (the cross-tenant stacked runs).
SHARED_TENANT = "(shared)"


def _ingest(sample: object) -> np.ndarray:
    """Mirror ``Tensor.__init__``'s dtype policy for raw request payloads."""
    array = np.asarray(sample)
    if not np.issubdtype(array.dtype, np.floating):
        array = array.astype(np.float32)
    return array


def _digest(array: np.ndarray) -> bytes:
    """Content digest for the result cache (shape + dtype + bytes)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((array.shape, array.dtype.str)).encode())
    h.update(np.ascontiguousarray(array).tobytes())
    return h.digest()


class _Request:
    __slots__ = ("adapter", "sample", "key", "future", "enqueued_at")

    def __init__(
        self,
        adapter: str,
        sample: np.ndarray,
        key: tuple | None,
        future: Future,
    ) -> None:
        self.adapter = adapter
        self.sample = sample
        self.key = key
        self.future = future
        self.enqueued_at = time.perf_counter()


# -- program identity ---------------------------------------------------------


class ProgramKey(tuple):
    """Identity of one compiled slot-program.

    A ``(backbone, families, ranks, weights, precision)`` tuple: the
    architecture digest (module-tree class names + state shapes/dtypes,
    prefixed with the program role), the adapter families and ranks
    present, the :func:`~repro.peft.checkpoint.state_digest` of the
    weights the program folds, and the precision tier the program was
    compiled at.  Equal keys ⇒ compiling would produce programs with
    identical outputs, so the cache may hand out one program to many
    tenants; byte-identical tenants compiled at *different* tiers get
    distinct keys (an f32 tenant must never be served an f64 program and
    vice versa).
    """

    __slots__ = ()

    def __new__(
        cls,
        backbone: str,
        families: tuple[str, ...],
        ranks: tuple[int, ...],
        weights: str,
        precision: str = "f64",
    ) -> "ProgramKey":
        return tuple.__new__(
            cls,
            (backbone, tuple(families), tuple(ranks), weights, str(precision)),
        )

    @property
    def backbone(self) -> str:
        return self[0]

    @property
    def families(self) -> tuple[str, ...]:
        return self[1]

    @property
    def ranks(self) -> tuple[int, ...]:
        return self[2]

    @property
    def weights(self) -> str:
        return self[3]

    @property
    def precision(self) -> str:
        return self[4]


def _architecture_digest(role: str, model: Module, state: Mapping[str, np.ndarray]) -> str:
    hasher = hashlib.sha256()
    for name, module in model.named_modules():
        hasher.update(f"{name}={type(module).__name__};".encode())
    for name in sorted(state):
        array = np.asarray(state[name])
        hasher.update(f"{name}:{array.shape}:{array.dtype.str};".encode())
    return f"{role}:{hasher.hexdigest()}"


def program_key(
    model: Module,
    *,
    role: str = "features",
    extra: Mapping | None = None,
    precision: str | None = None,
) -> ProgramKey:
    """The :class:`ProgramKey` compiling ``model`` (in ``role``) would get.

    ``extra`` folds additional compile-time inputs into the weights
    digest — e.g. the mapping programs fold ``FLAGS.batched_seeds``,
    which freezes the seed-generation strategy at compile time.
    ``precision`` resolves like the compile entry points (explicit tier,
    else ``REPRO_SERVE_PRECISION``, else ``f64``).
    """
    from repro.peft.checkpoint import _adapter_meta, state_digest

    state = model.state_dict()
    meta = _adapter_meta(model)
    payload = dict(meta)
    if extra:
        payload.update(extra)
    return ProgramKey(
        backbone=_architecture_digest(role, model, state),
        families=tuple(meta["families"]),
        ranks=tuple(int(rank) for rank in meta["ranks"]),
        weights=state_digest(state, extra=payload),
        precision=resolve_precision(precision),
    )


def _mapping_key(model: MetaLoRAModel, precision: str | None = None) -> ProgramKey:
    """Key for the mapping program: trunk + heads + gains only.

    Deliberately excludes the backbone and extractor, so tenants that
    share them but were trained to different mapping weights get
    distinct mapping programs while sharing the other two.
    """
    from repro.peft.checkpoint import state_digest
    from repro.perf import FLAGS

    state: dict[str, np.ndarray] = {"head_gains": model.head_gains.data}
    for name, param in model.trunk.named_parameters():
        state[f"trunk.{name}"] = param.data
    for name, param in model.heads.named_parameters():
        state[f"heads.{name}"] = param.data
    hasher = hashlib.sha256()
    for name in sorted(state):
        array = state[name]
        hasher.update(f"{name}:{array.shape}:{array.dtype.str};".encode())
    return ProgramKey(
        backbone=f"mapping:{hasher.hexdigest()}",
        families=(),
        ranks=(),
        weights=state_digest(state, extra={"batched_seeds": bool(FLAGS.batched_seeds)}),
        precision=resolve_precision(precision),
    )


# -- the compiled-program LRU -------------------------------------------------


class ProgramCache:
    """LRU of compiled slot-programs keyed by :class:`ProgramKey`.

    ``get`` compiles on miss; tenants whose keys coincide receive the
    *same* program object, which is what lets the dispatcher stack their
    requests into one run (grouping is by program identity).  Counters:
    ``serve.program_cache.hit`` / ``.miss`` / ``.evict``.
    """

    def __init__(self, capacity: int = 64, metrics: MetricsRegistry | None = None) -> None:
        if capacity < 1:
            raise ServeError(f"program cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._programs: "OrderedDict[ProgramKey, CompiledProgram]" = OrderedDict()
        self._metrics = metrics if metrics is not None else MetricsRegistry(enabled=True)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def __contains__(self, key: ProgramKey) -> bool:
        with self._lock:
            return key in self._programs

    def _count(self, name: str, precision: str | None = None) -> None:
        """Bare counter plus a ``{precision=tier}`` labeled twin.

        The bare series keeps the pre-tier exact-count contract; the
        labeled twin splits the same traffic by precision tier.
        """
        self._metrics.inc(name)
        OBS.enabled and OBS.inc(name)
        if precision is not None:
            self._metrics.inc(name, precision=precision)
            OBS.enabled and OBS.inc(name, precision=precision)

    def get(self, key: ProgramKey, compile_fn: Callable[[], CompiledProgram]) -> CompiledProgram:
        precision = getattr(key, "precision", None)
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self._programs.move_to_end(key)
                self._count("serve.program_cache.hit", precision)
                return program
            self._count("serve.program_cache.miss", precision)
            program = compile_fn()
            self._programs[key] = program
            while len(self._programs) > self.capacity:
                evicted_key, __ = self._programs.popitem(last=False)
                self._count(
                    "serve.program_cache.evict",
                    getattr(evicted_key, "precision", None),
                )
            return program

    def stats(self) -> dict[str, dict]:
        return self._metrics.snapshot()


# -- named adapter entries ----------------------------------------------------


class AdapterEntry:
    """One registered adapter: compiled program(s), identity, version.

    ``kind`` is ``"static"`` (one ``program``) or ``"seeded"`` (the
    extractor / mapping / body triple).  ``version`` bumps on every
    hot-swap, which is what invalidates result-cache rows keyed under
    the old weights.
    """

    __slots__ = (
        "name",
        "kind",
        "digest",
        "version",
        "program",
        "extractor",
        "mapping",
        "body",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        digest: str | None,
        *,
        program: CompiledProgram | None = None,
        extractor: CompiledProgram | None = None,
        mapping: CompiledProgram | None = None,
        body: CompiledProgram | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.digest = digest
        self.version = 1
        self.program = program
        self.extractor = extractor
        self.mapping = mapping
        self.body = body

    def run(self, batch: np.ndarray) -> np.ndarray:
        """This tenant's full pipeline on one batch (no cross-tenant work)."""
        if self.kind == "static":
            assert self.program is not None
            return self.program.run(batch)
        assert self.extractor is not None and self.mapping is not None
        assert self.body is not None
        features = self.extractor.run(batch)
        return self.body.run(batch, self.mapping.run(features))


class AdapterRegistry:
    """Named adapters plus the shared :class:`ProgramCache`.

    ``register`` compiles (or cache-hits) the adapter's programs;
    ``swap`` replaces an existing name's weights hot — queued requests
    resolve their entry at dispatch time, so they serve the new weights;
    ``evict`` removes a name.  All three are safe under concurrent
    serving.
    """

    def __init__(self, *, program_cache_size: int = 64) -> None:
        self._metrics = MetricsRegistry(enabled=True)
        self.programs = ProgramCache(program_cache_size, metrics=self._metrics)
        self._entries: "OrderedDict[str, AdapterEntry]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def names(self) -> list[str]:
        """Registered adapter names, in registration order."""
        with self._lock:
            return list(self._entries)

    def get(self, name: str) -> AdapterEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise ServeError(f"unknown adapter {name!r}; registered: {known}")
        return entry

    def register(
        self,
        name: str,
        model_or_result: object,
        *,
        merge: bool = True,
        replace: bool = False,
        precision: str | None = None,
    ) -> AdapterEntry:
        """Compile and install ``name``; ``replace=True`` allows hot-swap.

        Accepts a :class:`~repro.nn.module.Module` or anything exposing
        ``serving_model(merge=...)`` (an ``AttachResult``).  MetaLoRA
        models compile to the extractor/mapping/body split; everything
        else compiles to one ``features()`` program.  ``precision``
        picks the tenant's tier (explicit, else ``REPRO_SERVE_PRECISION``,
        else ``f64``); tenants at different tiers never share a program.
        """
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and not replace:
                raise ServeError(
                    f"adapter {name!r} is already registered; "
                    f"use swap() (or replace=True) to hot-swap it"
                )
            entry = self._compile_entry(
                name, model_or_result, merge=merge, precision=precision
            )
            if previous is not None:
                entry.version = previous.version + 1
            self._entries[name] = entry
            return entry

    def swap(
        self,
        name: str,
        model_or_result: object,
        *,
        merge: bool = True,
        precision: str | None = None,
    ) -> AdapterEntry:
        """Hot-swap ``name``'s weights; the name must already be registered."""
        with self._lock:
            if name not in self._entries:
                known = ", ".join(sorted(self._entries)) or "(none)"
                raise ServeError(
                    f"cannot swap unknown adapter {name!r} (registered: {known}); "
                    f"use register() to add it"
                )
            self._metrics.inc("serve.registry.swap")
            OBS.enabled and OBS.inc("serve.registry.swap")
            return self.register(
                name, model_or_result, merge=merge, replace=True, precision=precision
            )

    def evict(self, name: str) -> AdapterEntry:
        """Remove ``name``; returns the evicted entry."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise ServeError(f"cannot evict unknown adapter {name!r}; registered: {known}")
        return entry

    def register_program(
        self, name: str, program: CompiledProgram, *, replace: bool = False
    ) -> AdapterEntry:
        """Install a pre-compiled program under ``name`` (bypasses the cache).

        This is how the single-tenant :class:`~repro.serve.engine.EmbeddingEngine`
        wrapper mounts the program it was handed.
        """
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and not replace:
                raise ServeError(
                    f"adapter {name!r} is already registered; "
                    f"use swap() (or replace=True) to hot-swap it"
                )
            entry = AdapterEntry(name, "static", None, program=program)
            if previous is not None:
                entry.version = previous.version + 1
            self._entries[name] = entry
            return entry

    def register_checkpoint(
        self,
        name: str,
        model: Module,
        path: object,
        *,
        merge: bool = True,
        replace: bool = False,
        precision: str | None = None,
    ) -> AdapterEntry:
        """Load an adapter checkpoint into ``model`` and register the result.

        The checkpoint (written by :func:`repro.peft.save_adapter`) is
        validated against its manifest and against ``model``, then the
        restored model is compiled under ``name`` — the straight
        checkpoint-file → serving-tenant path.
        """
        from repro.peft.checkpoint import load_adapter

        load_adapter(model, path)
        return self.register(
            name, model, merge=merge, replace=replace, precision=precision
        )

    def stats(self) -> dict[str, dict]:
        """Registry counters (program cache + swaps) as a metrics snapshot."""
        self._metrics.gauge("serve.registry.size", len(self))
        return self._metrics.snapshot()

    def program_counters(self) -> dict[str, object]:
        """Optimizer counters summed over every distinct in-use program.

        Programs are deduplicated by identity (shared programs count
        once); histogram buckets are merged.  Feeds the
        ``serve.fusion.steps_eliminated`` / ``serve.arena.*`` /
        ``serve.parallel.slots`` series the engines fold into
        ``stats()``.
        """
        totals = {
            "fusion_eliminated": 0,
            "quantized": 0,
            "arena_hits": 0,
            "arena_allocs": 0,
        }
        buckets: dict[str, int] = {}
        seen: set[int] = set()
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            for program in (entry.program, entry.extractor, entry.mapping, entry.body):
                if program is None or id(program) in seen:
                    continue
                seen.add(id(program))
                counters = program.counters()
                for field in totals:
                    totals[field] += int(counters[field])
                for bucket, count in counters["parallel_slots"].items():
                    buckets[bucket] = buckets.get(bucket, 0) + int(count)
        totals["parallel_slots"] = buckets
        return totals

    # -- compilation ----------------------------------------------------------

    def _compile_entry(
        self,
        name: str,
        model_or_result: object,
        merge: bool,
        precision: str | None = None,
    ) -> AdapterEntry:
        model = model_or_result
        if not isinstance(model, Module):
            serving_model = getattr(model, "serving_model", None)
            if serving_model is None or not callable(serving_model):
                raise ServeError(
                    f"register() expects a Module or AttachResult, "
                    f"got {type(model_or_result).__name__}"
                )
            model = serving_model(merge=merge)
            if not isinstance(model, Module):
                raise ServeError(
                    f"serving_model() on {type(model_or_result).__name__} returned "
                    f"{type(model).__name__}, not a Module"
                )
        precision = resolve_precision(precision)
        if isinstance(model, MetaLoRAModel):
            return self._compile_seeded(name, model, precision)
        key = program_key(model, precision=precision)
        program = self.programs.get(
            key, lambda: compile_features(model, precision=precision)
        )
        return AdapterEntry(name, "static", key.weights, program=program)

    def _compile_seeded(
        self, name: str, model: MetaLoRAModel, precision: str
    ) -> AdapterEntry:
        from repro.peft.checkpoint import model_digest

        extractor_key = program_key(model.extractor, role="extractor", precision=precision)
        body_key = program_key(model.backbone, role="body", precision=precision)
        mapping_key = _mapping_key(model, precision)
        # The extractor feeds the mapping net's f64 trunk: quantizing it
        # would perturb the seeds and break fused==split at int8.
        extractor = self.programs.get(
            extractor_key,
            lambda: compile_forward(model.extractor, precision=precision, quantize=False),
        )
        mapping = self.programs.get(
            mapping_key, lambda: compile_seed_mapping(model, precision=precision)
        )
        body = self.programs.get(
            body_key,
            lambda: compile_features(model, external_seeds=True, precision=precision),
        )
        return AdapterEntry(
            name,
            "seeded",
            model_digest(model),
            extractor=extractor,
            mapping=mapping,
            body=body,
        )


# -- the tenant-aware engine --------------------------------------------------


class MultiTenantEngine:
    """Serve many named adapters behind one submit/embed/dispatch API.

    Parameters
    ----------
    registry:
        An :class:`AdapterRegistry` to serve from; omitted, the engine
        owns a fresh one (``program_cache_size`` sizes its LRU).
    max_batch / max_delay / cache_size:
        Micro-batcher and result-cache limits, exactly as on
        :class:`~repro.serve.engine.EmbeddingEngine`.  The result cache
        is keyed by ``(adapter, version, sample digest)``, so hot-swaps
        never serve stale rows.
    tenant_labels:
        When true (default), per-request metrics also record a
        ``{tenant=name}`` labeled series next to the bare aggregate.
    precision:
        Default tier for ``register``/``swap`` calls that don't pick one
        (explicit, else ``REPRO_SERVE_PRECISION``, else ``f64``).
    """

    def __init__(
        self,
        registry: AdapterRegistry | None = None,
        *,
        max_batch: int = 32,
        max_delay: float = 0.002,
        cache_size: int = 256,
        tenant_labels: bool = True,
        program_cache_size: int = 64,
        precision: str | None = None,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ServeError(f"max_delay must be >= 0, got {max_delay}")
        if cache_size < 0:
            raise ServeError(f"cache_size must be >= 0, got {cache_size}")
        self.precision = resolve_precision(precision)
        self.registry = (
            registry
            if registry is not None
            else AdapterRegistry(program_cache_size=program_cache_size)
        )
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.cache_size = int(cache_size)
        self.tenant_labels = bool(tenant_labels)
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._metrics = MetricsRegistry(enabled=True)
        self._stats_lock = threading.Lock()
        self._run_lock = threading.Lock()
        self._queue: "queue.Queue[_Request]" = queue.Queue()
        self._worker: threading.Thread | None = None
        self._worker_lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False

    # -- registry passthroughs ------------------------------------------------

    def register(self, name: str, model_or_result: object, **kwargs: object) -> AdapterEntry:
        kwargs.setdefault("precision", self.precision)
        return self.registry.register(name, model_or_result, **kwargs)

    def swap(self, name: str, model_or_result: object, **kwargs: object) -> AdapterEntry:
        kwargs.setdefault("precision", self.precision)
        return self.registry.swap(name, model_or_result, **kwargs)

    def evict(self, name: str) -> AdapterEntry:
        return self.registry.evict(name)

    def adapters(self) -> list[str]:
        return self.registry.names()

    # -- metric recording -----------------------------------------------------

    def _inc(
        self, name: str, n: int = 1, *, seconds: float = 0.0, tenant: str | None = None
    ) -> None:
        with self._stats_lock:
            self._metrics.inc(name, n, seconds=seconds)
            if self.tenant_labels and tenant is not None:
                self._metrics.inc(name, n, seconds=seconds, tenant=tenant)
        OBS.enabled and OBS.inc(name, n, seconds=seconds)
        if self.tenant_labels and tenant is not None:
            OBS.enabled and OBS.inc(name, n, seconds=seconds, tenant=tenant)

    def _hist(self, name: str, value: object) -> None:
        with self._stats_lock:
            self._metrics.hist(name, value)
        OBS.enabled and OBS.hist(name, value)

    def _observe(
        self, name: str, seconds: float, nbytes: int = 0, *, tenant: str | None = None
    ) -> None:
        with self._stats_lock:
            self._metrics.observe(name, seconds, bytes=nbytes)
            if self.tenant_labels and tenant is not None:
                self._metrics.observe(name, seconds, bytes=nbytes, tenant=tenant)
        OBS.enabled and OBS.observe(name, seconds, bytes=nbytes)
        if self.tenant_labels and tenant is not None:
            OBS.enabled and OBS.observe(name, seconds, bytes=nbytes, tenant=tenant)

    # -- synchronous bulk path ------------------------------------------------

    def embed(self, images: np.ndarray, adapter: str, batch_size: int = 64) -> np.ndarray:
        """Embeddings for ``images`` under the named adapter.

        Chunk boundaries match ``extract_embeddings``, so rows are
        bit-identical to the reference path under that adapter's model.
        """
        if self._closed:
            raise ServeError("embed() on a closed MultiTenantEngine")
        entry = self.registry.get(adapter)
        images = _ingest(images)
        with TRACER.span(
            "serve.request", kind="bulk", tenant=adapter, samples=int(images.shape[0])
        ):
            chunks = []
            for start in range(0, images.shape[0], batch_size):
                chunks.append(self._run_entry(entry, images[start : start + batch_size]))
            return np.concatenate(chunks, axis=0)

    def _run_program(
        self,
        program: CompiledProgram,
        inputs: tuple[np.ndarray, ...],
        tenant: str,
    ) -> np.ndarray:
        with self._run_lock:
            start = time.perf_counter()
            out = program.run(*inputs)
            elapsed = time.perf_counter() - start
        self._observe("serve.run", elapsed, out.nbytes, tenant=tenant)
        return out

    def _run_entry(self, entry: AdapterEntry, batch: np.ndarray) -> np.ndarray:
        """One tenant's pipeline on one batch, with per-program metrics."""
        if entry.kind == "static":
            return self._run_program(entry.program, (batch,), entry.name)
        features = self._run_program(entry.extractor, (batch,), entry.name)
        seeds = self._run_program(entry.mapping, (features,), entry.name)
        return self._run_program(entry.body, (batch, seeds), entry.name)

    # -- request path: heterogeneous micro-batching ---------------------------

    def submit(self, sample: np.ndarray, adapter: str) -> "Future[np.ndarray]":
        """Queue one sample for the named adapter; resolves to its row."""
        if self._closed:
            raise ServeError("submit() on a closed MultiTenantEngine")
        entry = self.registry.get(adapter)  # fail unknown names fast
        sample = _ingest(sample)
        key = (adapter, entry.version, _digest(sample)) if self.cache_size else None
        future: "Future[np.ndarray]" = Future()
        if key is not None:
            cached = self._cache_get(key)
            if cached is not None:
                self._inc("serve.requests", tenant=adapter)
                self._inc("serve.cache.hit", tenant=adapter)
                future.set_result(cached)
                return future
            self._inc("serve.cache.miss", tenant=adapter)
        self._ensure_worker()
        self._queue.put(_Request(adapter, sample, key, future))
        return future

    def dispatch(self, batch: Sequence[tuple[str, np.ndarray]]) -> list[np.ndarray]:
        """Serve one heterogeneous batch synchronously.

        ``batch`` is ``(adapter_name, sample)`` pairs; the result is one
        embedding row per pair, in request order.  This is the same
        grouping the micro-batcher worker applies to queued requests —
        exposed directly so callers (and the multi-tenant bench) can
        drive cross-tenant stacking without the queue.
        """
        if self._closed:
            raise ServeError("dispatch() on a closed MultiTenantEngine")
        entries = [self.registry.get(name) for name, __ in batch]
        samples = [_ingest(sample) for __, sample in batch]
        rows: list[np.ndarray | None] = [None] * len(entries)
        for indices in self._group_indices(entries):
            group_rows = self._serve_group(
                [entries[i] for i in indices], [samples[i] for i in indices]
            )
            for j, i in enumerate(indices):
                rows[i] = group_rows[j]
        return rows  # type: ignore[return-value]

    @staticmethod
    def _group_indices(entries: Sequence[AdapterEntry]) -> list[list[int]]:
        """Group request indices by runnable unit: static tenants by
        program identity, seeded tenants by body-program identity."""
        groups: "OrderedDict[tuple, list[int]]" = OrderedDict()
        for index, entry in enumerate(entries):
            if entry.kind == "static":
                key = ("static", id(entry.program))
            else:
                key = ("seeded", id(entry.body))
            groups.setdefault(key, []).append(index)
        return list(groups.values())

    def _serve_group(
        self, entries: list[AdapterEntry], samples: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Run one homogeneous group; returns fresh per-request rows.

        Static group: one stacked run.  Seeded group: extractor once per
        distinct extractor program over the stacked union, mapping per
        tenant on its own rows (keeping mapping batch shapes identical
        to single-tenant serving), then one body run over the union with
        every tenant's seeds stacked in request order.
        """
        count = len(entries)
        tenants = {entry.name for entry in entries}
        label = next(iter(tenants)) if len(tenants) == 1 else SHARED_TENANT
        if entries[0].kind == "static":
            out = self._run_program(entries[0].program, (np.stack(samples),), label)
            return [np.ascontiguousarray(out[i]) for i in range(count)]
        x = np.stack(samples)
        feature_rows: list[np.ndarray | None] = [None] * count
        by_extractor: "OrderedDict[int, list[int]]" = OrderedDict()
        for index, entry in enumerate(entries):
            by_extractor.setdefault(id(entry.extractor), []).append(index)
        for indices in by_extractor.values():
            sub = {entries[i].name for i in indices}
            sub_label = next(iter(sub)) if len(sub) == 1 else SHARED_TENANT
            features = self._run_program(
                entries[indices[0]].extractor,
                (x[np.asarray(indices)] if len(indices) < count else x,),
                sub_label,
            )
            for j, i in enumerate(indices):
                feature_rows[i] = features[j]
        seed_rows: list[np.ndarray | None] = [None] * count
        by_mapping: "OrderedDict[int, list[int]]" = OrderedDict()
        for index, entry in enumerate(entries):
            by_mapping.setdefault(id(entry.mapping), []).append(index)
        for indices in by_mapping.values():
            entry = entries[indices[0]]
            features = np.stack([feature_rows[i] for i in indices])
            seeds = self._run_program(entry.mapping, (features,), entry.name)
            for j, i in enumerate(indices):
                seed_rows[i] = seeds[j]
        out = self._run_program(
            entries[0].body, (x, np.stack(seed_rows)), label
        )
        return [np.ascontiguousarray(out[i]) for i in range(count)]

    # -- worker ---------------------------------------------------------------

    def _ensure_worker(self) -> None:
        with self._worker_lock:
            if self._worker is not None and self._worker.is_alive():
                return
            self._stop.clear()
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-serve-batcher", daemon=True
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            self._process(self._gather(first))

    def _gather(self, first: _Request) -> list[_Request]:
        """Coalesce queued requests after ``first``, bounded by
        ``max_batch`` and by ``max_delay`` seconds since the first."""
        batch = [first]
        deadline = time.perf_counter() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _process(self, requests: list[_Request]) -> None:
        queued = time.perf_counter()
        # Resolve entries at dispatch time: a swap() between submit and
        # dispatch serves the *new* weights; an evict fails the request.
        resolved: list[tuple[_Request, AdapterEntry]] = []
        for request in requests:
            try:
                resolved.append((request, self.registry.get(request.adapter)))
            except ServeError as exc:
                request.future.set_exception(exc)
        if not resolved:
            return
        entries = [entry for __, entry in resolved]
        with TRACER.span("serve.batch", size=len(resolved)):
            for indices in self._group_indices(entries):
                group = [resolved[i] for i in indices]
                group_entries = [entry for __, entry in group]
                try:
                    rows = self._serve_group(
                        group_entries, [request.sample for request, __ in group]
                    )
                except BaseException as exc:  # surface kernel errors to callers
                    for request, __ in group:
                        request.future.set_exception(exc)
                    continue
                for request, __ in group:
                    self._inc("serve.requests", tenant=request.adapter)
                self._inc("serve.batches")
                self._hist("serve.batch.size", len(group))
                self._hist(
                    "serve.batch.tenants", len({entry.name for entry in group_entries})
                )
                waited = sum(queued - request.enqueued_at for request, __ in group)
                self._inc("serve.queue_wait", len(group), seconds=waited)
                for (request, __), row in zip(group, rows):
                    if request.key is not None:
                        self._cache_put(request.key, row)
                        row = row.copy()
                    request.future.set_result(row)

    # -- LRU result cache -----------------------------------------------------

    def _cache_get(self, key: tuple) -> np.ndarray | None:
        with self._stats_lock:
            row = self._cache.get(key)
            if row is None:
                return None
            self._cache.move_to_end(key)
            return row.copy()

    def _cache_put(self, key: tuple, row: np.ndarray) -> None:
        with self._stats_lock:
            self._cache[key] = row
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self._metrics.inc("serve.cache.evict")
                OBS.enabled and OBS.inc("serve.cache.evict")

    # -- lifecycle ------------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        """Engine + registry counters in the unified snapshot schema.

        The engine's own series (bare names, plus ``{tenant=...}``
        labeled twins when ``tenant_labels`` is on) are merged with its
        registry's (``serve.program_cache.*``, ``serve.registry.*``) and
        with the optimizer counters summed over every in-use compiled
        program (``serve.fusion.steps_eliminated``, ``serve.arena.*``,
        ``serve.parallel.slots``) — merged, not inc'd, so the series
        appear even at zero.
        """
        with self._stats_lock:
            self._metrics.gauge("serve.cache.size", len(self._cache))
            snapshot = self._metrics.snapshot()
        merged = MetricsRegistry(enabled=True)
        merged.merge(snapshot)
        merged.merge(self.registry.stats())
        programs = self.registry.program_counters()
        merged.merge(
            {
                "serve.fusion.steps_eliminated": {
                    "kind": "counter",
                    "calls": int(programs["fusion_eliminated"]),
                },
                "serve.quantized.weights": {
                    "kind": "counter",
                    "calls": int(programs["quantized"]),
                },
                "serve.arena.hit": {
                    "kind": "counter",
                    "calls": int(programs["arena_hits"]),
                },
                "serve.arena.alloc": {
                    "kind": "counter",
                    "calls": int(programs["arena_allocs"]),
                },
                "serve.parallel.slots": {
                    "kind": "histogram",
                    "calls": sum(programs["parallel_slots"].values()),
                    "buckets": dict(programs["parallel_slots"]),
                },
            }
        )
        return merged.snapshot()

    def close(self) -> None:
        """Stop the worker (after draining queued work) and reject new calls."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=10.0)
        while True:  # belt and braces: fail anything the worker left behind
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.future.set_exception(ServeError("MultiTenantEngine closed"))

    def __enter__(self) -> "MultiTenantEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
