"""Minibatching."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import DataError


def batches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(images, labels)`` minibatches, shuffled when ``rng`` is given."""
    if batch_size <= 0:
        raise DataError(f"batch_size must be positive, got {batch_size}")
    count = images.shape[0]
    if labels.shape[0] != count:
        raise DataError(f"images ({count}) and labels ({labels.shape[0]}) disagree")
    order = rng.permutation(count) if rng is not None else np.arange(count)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        if drop_last and index.shape[0] < batch_size:
            return
        yield images[index], labels[index]
