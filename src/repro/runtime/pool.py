"""Generic process-pool execution of independent experiment cells.

The experiment grids this library runs — Table I ``(method, seed)``
pairs, significance-test repeats, the rank/format ablation sweeps — are
embarrassingly parallel: every cell is a pure function of its key.
:func:`run_cells` shards such cells across a ``fork`` process pool with

- **determinism**: a cell must derive all randomness from its own key
  (see :func:`repro.eval.protocol.method_rng` for the Table I scheme),
  so results are bit-identical however cells land on workers;
- **a serial fallback**: ``jobs=1``, a single cell, or a platform
  without ``fork`` all run the exact same code in-process;
- **crash isolation**: a worker exception is caught *inside* the worker
  and shipped back as a structured :class:`CellFailure` (type, message,
  remote traceback) on its :class:`CellResult` — one bad cell neither
  hangs the pool nor takes down its siblings;
- **retry with deterministic backoff**: with ``max_retries > 0``, failed
  cells are re-executed up to that many times, sleeping
  ``retry_backoff * 2**attempt`` between rounds — transient faults are
  absorbed without surfacing; cells that fail every attempt come back as
  failures exactly as before (``raise_failures`` turns them into one
  :class:`~repro.errors.WorkerError`).  Because every cell derives its
  randomness from its key, a retried cell recomputes the *identical*
  result a first-try success would have produced;
- **per-cell soft timeouts**: ``cell_timeout`` arms a SIGALRM-based
  alarm inside the worker — a stalled cell raises
  :class:`~repro.errors.CellTimeoutError`, becomes an ordinary
  :class:`CellFailure` (so it is retryable), and frees its worker
  instead of hanging the grid.  "Soft" because it interrupts Python
  execution, not the OS process; platforms without ``SIGALRM`` run
  without enforcement;
- **streaming results**: ``on_result`` is invoked in the parent for each
  cell as it *finally* completes (successes as they land, failures only
  once retries are exhausted) — the hook run directories use to persist
  every finished cell before the grid is done, so a killed run loses at
  most the in-flight cells;
- **observability aggregation**: when the parent's metrics registry
  (:data:`repro.obs.OBS`) is enabled, each worker records into its own
  registry and the unified snapshot is merged back into the parent's
  (:meth:`repro.obs.metrics.MetricsRegistry.merge`); when the parent's
  tracer is enabled, each worker traces its cell execution into its own
  tracer and the finished spans ship back on the :class:`CellResult`
  and re-attach under the parent's open span
  (:meth:`repro.obs.trace.Tracer.absorb`) — so worker cell spans land
  in the parent's trace tree exactly where in-process cells would.
  Retries and timeouts bump ``retry.attempt`` / ``retry.backoff`` /
  ``retry.recovered`` / ``retry.exhausted`` / ``timeout.cell`` in the
  parent and attach matching events to the open span.

Workers execute cells under ``perf_overrides(**perf)`` — the Table I
grid uses this to enable the autograd memory diet
(``backward_release``), which is safe there because training steps never
backpropagate the same graph twice.  Deterministic fault injection
(``REPRO_FAULTS``, :func:`repro.perf.fire_faults`) hooks in at the top
of every cell execution so all of the above is testable.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.errors import CellTimeoutError, ConfigError, WorkerError
from repro.perf import fire_faults, perf_overrides
from repro.obs import OBS, TRACER

#: How long the parent sleeps between completion polls of the pool.
_POLL_SECONDS = 0.005


@dataclass(frozen=True)
class CellFailure:
    """A structured record of one cell's exception."""

    key: object
    error_type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return f"cell {self.key!r}: {self.error_type}: {self.message}"


@dataclass
class CellResult:
    """Outcome of one cell: either ``value`` or a ``failure``, plus timing.

    ``attempts`` counts executions (1 = first try succeeded or no retries
    were allowed); ``seconds`` is the wall time of the *final* attempt.
    """

    key: object
    value: object = None
    failure: CellFailure | None = None
    seconds: float = 0.0
    counters: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.failure is None


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_start_method(method: str | None = None) -> str:
    """Pick a multiprocessing start method for worker processes.

    Explicit ``method`` wins (validated against the platform), then the
    ``REPRO_SHARD_START`` environment variable, then ``fork`` where
    available (cheapest: workers inherit the parent's imports), else
    ``spawn``.  Long-lived serving shards honour this so CI can force
    the portable ``spawn`` path.
    """
    import os

    if method is None:
        method = os.environ.get("REPRO_SHARD_START", "").strip() or None
    available = multiprocessing.get_all_start_methods()
    if method is not None:
        if method not in available:
            raise ConfigError(
                f"start method {method!r} unavailable here; choose one of "
                f"{', '.join(available)}"
            )
        return method
    return "fork" if "fork" in available else "spawn"


def merge_worker_obs(counters: dict, spans: list, **attrs: object) -> None:
    """Fold one worker's shipped observability back into the parent.

    The merge-back half of the pool contract: the worker recorded into
    its own registry/tracer and shipped the snapshot + finished spans;
    this merges the counters into :data:`repro.obs.OBS` and re-attaches
    the spans under the parent's open span
    (:meth:`repro.obs.trace.Tracer.absorb`).  ``attrs`` tag the absorbed
    root spans — long-lived workers (serving shards) use this to label
    everything they ship with ``shard=<id>``.
    """
    OBS.merge(counters)
    TRACER.absorb(spans, **attrs)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` means one CPU's worth.

    Anything below 1 is rejected outright — a worker count of zero is
    always a caller bug, and silently mapping it to something else has
    historically hidden misconfigured sweeps.
    """
    if jobs is None:
        return multiprocessing.cpu_count()
    if jobs < 1:
        raise ConfigError(
            f"jobs must be >= 1, got {jobs} (pass None for one worker per CPU)"
        )
    return jobs


@contextlib.contextmanager
def _soft_timeout(seconds: float | None, key: object) -> Iterator[None]:
    """Arm a SIGALRM alarm that raises :class:`CellTimeoutError`.

    Only effective in the main thread of a process on platforms with
    ``SIGALRM`` (pool workers qualify: ``fork`` workers run tasks in
    their main thread).  Elsewhere the block runs unguarded — the
    timeout is a soft contract, not an OS-level kill.
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):  # pragma: no cover - trivially exercised via raise
        raise CellTimeoutError(
            f"cell {key!r} exceeded its {seconds:g}s soft timeout"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_cell(
    fn: Callable[[object], object],
    key: object,
    cell: object,
    perf: dict[str, bool] | None,
    profile: bool,
    attempt: int = 0,
    timeout: float | None = None,
    trace: bool = False,
    span_name: str = "pool.cell",
) -> CellResult:
    """Run one cell, capturing exceptions and (optionally) observability.

    Module-level so it pickles for the pool; runs verbatim on the serial
    fallback path.  ``attempt`` is supplied by the parent so injected
    faults (and any attempt-aware cell) behave identically wherever the
    retry lands.  ``profile`` / ``trace`` are set only for pool workers:
    they reset the worker's inherited registry/tracer, record locally,
    and ship the snapshot/spans back on the result.  In-process (serial)
    cells record straight into the live parent registry and open their
    span inside the parent's tree instead.
    """
    start = time.perf_counter()
    counters: dict = {}
    spans: list = []
    try:
        if profile:
            OBS.reset()
            OBS.enable()
        if trace:
            # The fork copied the parent's open spans; drop them so the
            # cell span is this worker's root and drains cleanly.
            TRACER.reset()
            TRACER.enable()
        try:
            with perf_overrides(**(perf or {})), _soft_timeout(timeout, key),                     TRACER.span(span_name, key=str(key), attempt=attempt):
                fire_faults(key, attempt)
                value = fn(cell)
        finally:
            if profile:
                OBS.disable()
                counters = OBS.as_dict()
            if trace:
                TRACER.disable()
                spans = TRACER.drain()
        return CellResult(
            key,
            value=value,
            seconds=time.perf_counter() - start,
            counters=counters,
            spans=spans,
            attempts=attempt + 1,
        )
    except Exception as exc:  # crash isolation: ship, don't hang the pool
        failure = CellFailure(
            key=key,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )
        return CellResult(
            key,
            failure=failure,
            seconds=time.perf_counter() - start,
            counters=counters,
            spans=spans,
            attempts=attempt + 1,
        )


def _run_batch(
    tasks: list[tuple],
    jobs: int,
    parallel: bool,
    emit: Callable[[int, CellResult], None],
) -> dict[int, CellResult]:
    """Execute one batch of ``(index, task)`` pairs, streaming completions.

    ``emit(index, result)`` fires in the parent as each cell finishes —
    in completion order when parallel, submission order when serial.
    Returns results keyed by their original index.
    """
    results: dict[int, CellResult] = {}
    if not parallel:
        for index, task in tasks:
            result = _execute_cell(*task)
            results[index] = result
            emit(index, result)
        return results

    context = multiprocessing.get_context("fork")
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        handles = [
            (index, pool.apply_async(_execute_cell, task)) for index, task in tasks
        ]
        pending = list(handles)
        while pending:
            still_pending = []
            progressed = False
            for index, handle in pending:
                if handle.ready():
                    result = handle.get()
                    results[index] = result
                    merge_worker_obs(result.counters, result.spans)
                    emit(index, result)
                    progressed = True
                else:
                    still_pending.append((index, handle))
            pending = still_pending
            if pending and not progressed:
                time.sleep(_POLL_SECONDS)
    return results


def run_cells(
    fn: Callable[[object], object],
    cells: Sequence[object],
    *,
    jobs: int = 1,
    keys: Sequence[object] | None = None,
    perf: dict[str, bool] | None = None,
    max_retries: int = 0,
    retry_backoff: float = 0.05,
    cell_timeout: float | None = None,
    on_result: Callable[[CellResult], None] | None = None,
    span_name: str = "pool.cell",
) -> list[CellResult]:
    """Execute ``fn(cell)`` for every cell, in order, possibly in parallel.

    ``keys`` (default: the cells themselves) label results and failures.
    ``perf`` is a set of :class:`repro.perf.PerfFlags` overrides applied
    around each cell.  ``max_retries`` re-runs failed cells with
    deterministic exponential backoff (``retry_backoff * 2**attempt``
    seconds between rounds); ``cell_timeout`` arms the per-cell soft
    timeout.  ``on_result`` fires in the parent once per cell when its
    outcome is final.  ``span_name`` labels the per-cell trace span when
    the tracer is enabled.  Results always come back in input order.
    """
    if keys is None:
        keys = list(cells)
    elif len(keys) != len(cells):
        raise ConfigError(f"{len(keys)} keys for {len(cells)} cells")
    if max_retries < 0:
        raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0:
        raise ConfigError(f"retry_backoff must be >= 0, got {retry_backoff}")
    jobs = resolve_jobs(jobs)
    parallel = jobs > 1 and len(cells) > 1 and fork_available()

    # In-process cells record straight into the parent registry/tracer;
    # pool workers snapshot their own and the parent merges back, so an
    # enabled observability window spans a parallel region either way.
    profile_workers = OBS.enabled and parallel
    trace_workers = TRACER.enabled and parallel

    def task_for(index: int, attempt: int) -> tuple:
        return (
            fn,
            keys[index],
            cells[index],
            perf,
            profile_workers,
            attempt,
            cell_timeout,
            trace_workers,
            span_name,
        )

    def emit(index: int, result: CellResult) -> None:
        if result.ok:
            if on_result is not None:
                on_result(result)
        elif result.failure.error_type == CellTimeoutError.__name__:
            OBS.inc("timeout.cell")
            TRACER.event("timeout.cell", key=str(result.key))

    results: dict[int, CellResult] = {}
    pending = list(range(len(cells)))
    for attempt in range(max_retries + 1):
        if attempt > 0:
            delay = retry_backoff * 2 ** (attempt - 1)
            OBS.observe("retry.backoff", delay)
            OBS.inc("retry.attempt", len(pending))
            TRACER.event(
                "retry", attempt=attempt, cells=len(pending), backoff=delay
            )
            if delay > 0:
                time.sleep(delay)
        batch = _run_batch(
            [(index, task_for(index, attempt)) for index in pending],
            jobs,
            parallel,
            emit,
        )
        recovered = [
            index for index in pending if attempt > 0 and batch[index].ok
        ]
        OBS.inc("retry.recovered", len(recovered))
        results.update(batch)
        pending = [index for index in pending if not batch[index].ok]
        if not pending:
            break
    if pending:
        OBS.inc("retry.exhausted", len(pending) if max_retries else 0)
        if on_result is not None:
            for index in pending:
                on_result(results[index])
    return [results[index] for index in range(len(cells))]


def raise_failures(results: Sequence[CellResult]) -> None:
    """Raise :class:`WorkerError` summarizing every failed cell, if any."""
    failures = [r.failure for r in results if not r.ok]
    if not failures:
        return
    summary = "; ".join(str(f) for f in failures[:5])
    if len(failures) > 5:
        summary += f"; ... ({len(failures) - 5} more)"
    detail = "\n\n".join(f.traceback for f in failures[:3])
    raise WorkerError(
        f"{len(failures)}/{len(results)} cells failed: {summary}\n"
        f"first tracebacks:\n{detail}"
    )
