"""Tests for the KNN classifier."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import KNNClassifier


def two_blobs(rng, n=40, dim=8, gap=6.0):
    a = rng.normal(size=(n, dim)) + gap
    b = rng.normal(size=(n, dim)) - gap
    x = np.concatenate([a, b])
    y = np.concatenate([np.zeros(n, np.int64), np.ones(n, np.int64)])
    return x, y


class TestKNN:
    def test_separable_blobs_perfect(self, rng):
        x, y = two_blobs(rng)
        knn = KNNClassifier(metric="euclidean").fit(x, y)
        assert knn.score(x, y, k=5) == 1.0

    def test_cosine_metric(self, rng):
        # Classes separated by direction, not magnitude.
        a = np.abs(rng.normal(size=(30, 4))) * [1, 1, 0.01, 0.01]
        b = np.abs(rng.normal(size=(30, 4))) * [0.01, 0.01, 1, 1]
        x = np.concatenate([a, b])
        y = np.concatenate([np.zeros(30, np.int64), np.ones(30, np.int64)])
        knn = KNNClassifier(metric="cosine").fit(x, y)
        assert knn.score(x, y, k=5) == 1.0

    def test_k_larger_than_support_clamped(self, rng):
        x, y = two_blobs(rng, n=3)
        knn = KNNClassifier().fit(x, y)
        predictions = knn.predict(x, k=100)
        assert predictions.shape == (6,)

    def test_k1_nearest_neighbour_on_train_is_self(self, rng):
        x, y = two_blobs(rng, n=10)
        knn = KNNClassifier(metric="euclidean").fit(x, y)
        assert np.array_equal(knn.predict(x, k=1), y)

    def test_majority_vote(self):
        # 3 supports of class 0 near origin, 2 of class 1 slightly closer.
        support = np.array([[1.0], [1.1], [1.2], [0.8], [0.9]])
        labels = np.array([0, 0, 0, 1, 1])
        knn = KNNClassifier(metric="euclidean").fit(support, labels)
        assert knn.predict(np.array([[1.0]]), k=5)[0] == 0

    def test_tie_broken_by_distance(self):
        support = np.array([[0.0], [0.2], [10.0], [10.2]])
        labels = np.array([0, 0, 1, 1])
        knn = KNNClassifier(metric="euclidean").fit(support, labels)
        # k=4: two votes each; class 0 is much closer.
        assert knn.predict(np.array([[0.1]]), k=4)[0] == 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(EvaluationError):
            KNNClassifier().predict(np.zeros((1, 2)), k=1)

    def test_invalid_metric(self):
        with pytest.raises(EvaluationError):
            KNNClassifier(metric="manhattan")

    def test_invalid_k(self, rng):
        x, y = two_blobs(rng, n=5)
        knn = KNNClassifier().fit(x, y)
        with pytest.raises(EvaluationError):
            knn.predict(x, k=0)

    def test_fit_validation(self, rng):
        with pytest.raises(EvaluationError):
            KNNClassifier().fit(np.zeros((3, 2, 2)), np.zeros(3))
        with pytest.raises(EvaluationError):
            KNNClassifier().fit(np.zeros((3, 2)), np.zeros(4))

def _reference_predict(knn, queries, k):
    """The pre-vectorization per-query vote loop, kept verbatim as the
    behavioural reference the fast path must match prediction-for-prediction
    (same majority vote, same distance-sum tie-break, same class-value
    preference on exact total ties)."""
    queries = np.asarray(queries, dtype=np.float64)
    k = min(k, knn._embeddings.shape[0])
    distances = knn._distances(queries)
    nearest = np.argsort(distances, axis=1)[:, :k]
    predictions = np.empty(queries.shape[0], dtype=knn._labels.dtype)
    for i in range(queries.shape[0]):
        neighbour_labels = knn._labels[nearest[i]]
        neighbour_distances = distances[i, nearest[i]]
        classes, votes = np.unique(neighbour_labels, return_counts=True)
        best = classes[votes == votes.max()]
        if best.shape[0] == 1:
            predictions[i] = best[0]
        else:
            totals = [
                neighbour_distances[neighbour_labels == c].sum() for c in best
            ]
            predictions[i] = best[int(np.argmin(totals))]
    return predictions


class TestVectorizedRegression:
    """The argpartition/bincount fast path must reproduce the original
    per-query loop exactly — predictions are pinned, not just accuracy."""

    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    @pytest.mark.parametrize("k", [1, 3, 4, 10])
    def test_predictions_match_reference_loop(self, rng, metric, k):
        # Overlapping clusters with non-contiguous labels, so votes tie
        # regularly and the class-index remapping is exercised.
        x = rng.normal(size=(60, 6)) + rng.integers(0, 3, size=(60, 1)) * 1.5
        y = np.array([2, 5, 9])[rng.integers(0, 3, size=60)]
        queries = rng.normal(size=(25, 6)) + 1.0
        knn = KNNClassifier(metric=metric).fit(x, y)
        assert np.array_equal(
            knn.predict(queries, k=k), _reference_predict(knn, queries, k)
        )

    def test_vote_tie_with_exact_total_tie_prefers_smaller_class(self):
        # One neighbour of each class at identical distance: votes tie AND
        # distance totals tie, so the smaller class value must win — the
        # original loop's np.argmin-over-sorted-classes behaviour.
        support = np.array([[1.0], [-1.0]])
        labels = np.array([7, 3])
        knn = KNNClassifier(metric="euclidean").fit(support, labels)
        assert knn.predict(np.array([[0.0]]), k=2)[0] == 3

    def test_euclidean_expansion_matches_naive_differences(self, rng):
        # ||q||² − 2·q·sᵀ + ||s||² vs materializing the (Q, S, D) diff.
        support = rng.normal(size=(40, 8)) * 3.0
        queries = rng.normal(size=(15, 8)) * 3.0
        knn = KNNClassifier(metric="euclidean").fit(support, np.zeros(40, np.int64))
        diff = queries[:, None, :] - support[None, :, :]
        naive = np.sqrt((diff**2).sum(axis=2))
        np.testing.assert_allclose(knn._distances(queries), naive, atol=1e-9)

    def test_euclidean_zero_distance_not_nan(self):
        # Cancellation can drive the expansion slightly negative; the
        # clamp must keep sqrt off the nan path for exact duplicates.
        support = np.array([[1e8, -1e8], [3.0, 4.0]])
        knn = KNNClassifier(metric="euclidean").fit(
            support, np.array([0, 1], np.int64)
        )
        distances = knn._distances(support.copy())
        assert np.all(np.isfinite(distances))
        assert distances[0, 0] == 0.0 and distances[1, 1] == 0.0


class TestKNNDegradation:
    def test_noisy_clusters_degrade_with_large_k(self, rng):
        """With small class counts, K > class size forces errors —
        the effect behind the K=5 vs K=10 columns of Table I."""
        x = rng.normal(size=(12, 4))
        y = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3])
        knn = KNNClassifier(metric="euclidean").fit(x, y)
        acc_k3 = knn.score(x, y, k=3)
        acc_k12 = knn.score(x, y, k=12)
        assert acc_k12 <= acc_k3
