"""Retrieval metrics over embeddings.

A second, classifier-free view of embedding quality alongside the KNN
protocol: treat every query embedding as a retrieval probe against the
support set and score whether same-class items come back first.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


def _ranked_matches(
    queries: np.ndarray,
    query_labels: np.ndarray,
    support: np.ndarray,
    support_labels: np.ndarray,
) -> np.ndarray:
    """Boolean matrix: row i = same-class flags of supports ranked by
    ascending cosine distance to query i."""
    queries = np.asarray(queries, dtype=np.float64)
    support = np.asarray(support, dtype=np.float64)
    if queries.ndim != 2 or support.ndim != 2:
        raise EvaluationError("embeddings must be 2-d")
    if queries.shape[1] != support.shape[1]:
        raise EvaluationError(
            f"dimension mismatch: queries {queries.shape[1]}, "
            f"support {support.shape[1]}"
        )
    query_labels = np.asarray(query_labels)
    support_labels = np.asarray(support_labels)
    if query_labels.shape != (queries.shape[0],):
        raise EvaluationError("query labels shape mismatch")
    if support_labels.shape != (support.shape[0],):
        raise EvaluationError("support labels shape mismatch")

    q = queries / (np.linalg.norm(queries, axis=1, keepdims=True) + 1e-12)
    s = support / (np.linalg.norm(support, axis=1, keepdims=True) + 1e-12)
    distances = 1.0 - q @ s.T
    order = np.argsort(distances, axis=1)
    return support_labels[order] == query_labels[:, None]


def recall_at_k(
    queries: np.ndarray,
    query_labels: np.ndarray,
    support: np.ndarray,
    support_labels: np.ndarray,
    k: int,
) -> float:
    """Fraction of queries with at least one same-class hit in the top k."""
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    matches = _ranked_matches(queries, query_labels, support, support_labels)
    k = min(k, matches.shape[1])
    return float(matches[:, :k].any(axis=1).mean())


def mean_average_precision(
    queries: np.ndarray,
    query_labels: np.ndarray,
    support: np.ndarray,
    support_labels: np.ndarray,
) -> float:
    """Mean (over queries) of average precision over the full ranking.

    Queries whose class has no support items are skipped; if none remain,
    an :class:`EvaluationError` is raised.
    """
    matches = _ranked_matches(queries, query_labels, support, support_labels)
    scores = []
    for row in matches:
        relevant = row.sum()
        if relevant == 0:
            continue
        hits = np.flatnonzero(row)
        precision_at_hit = (np.arange(1, relevant + 1)) / (hits + 1)
        scores.append(float(precision_at_hit.mean()))
    if not scores:
        raise EvaluationError("no query has a same-class support item")
    return float(np.mean(scores))
