"""Continual task streams.

The paper's abstract motivates MetaLoRA with "dynamic task requirements":
deployment sees a *stream* of tasks, including gradual drift between
styles, not a fixed training mixture.  :class:`TaskStream` generates such
a stream — steps interpolate smoothly between anchor tasks of a
:class:`~repro.data.tasks.TaskDistribution` — so the continual-adaptation
example and bench can measure how each method tracks moving styles
without retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.synthetic import SyntheticTaskData, generate_task_data
from repro.data.tasks import TaskDistribution, TaskSpec
from repro.errors import DataError


def interpolate_tasks(a: TaskSpec, b: TaskSpec, weight: float, task_id: int) -> TaskSpec:
    """A task whose style lies ``weight`` of the way from ``a`` to ``b``.

    Color directions are slerped (stay unit-norm); tints and offsets are
    linear; integer shifts round toward the nearer anchor.
    """
    if not 0.0 <= weight <= 1.0:
        raise DataError(f"interpolation weight must be in [0, 1], got {weight}")
    u = a.color_vector().astype(np.float64)
    v = b.color_vector().astype(np.float64)
    dot = float(np.clip(u @ v, -1.0, 1.0))
    theta = np.arccos(dot)
    if theta < 1e-8:
        direction = u
    else:
        direction = (
            np.sin((1 - weight) * theta) * u + np.sin(weight * theta) * v
        ) / np.sin(theta)
    direction = direction / np.linalg.norm(direction)
    tint = (1 - weight) * a.tint_vector() + weight * b.tint_vector()
    shift = (
        int(round((1 - weight) * a.shift[0] + weight * b.shift[0])),
        int(round((1 - weight) * a.shift[1] + weight * b.shift[1])),
    )
    offset = (1 - weight) * a.orientation_offset + weight * b.orientation_offset
    noise = (1 - weight) * a.noise_level + weight * b.noise_level
    return TaskSpec(
        task_id=task_id,
        color_direction=tuple(float(x) for x in direction),
        tint=tuple(float(x) for x in tint),
        shift=shift,
        orientation_offset=float(offset),
        noise_level=float(noise),
    )


@dataclass
class StreamStep:
    """One step of the stream: the (possibly interpolated) task and its data."""

    step: int
    task: TaskSpec
    data: SyntheticTaskData


class TaskStream:
    """An infinite drift stream over a task distribution's shifted tasks.

    Each segment of ``segment_length`` steps drifts linearly from one
    anchor task to the next (anchors are visited in a random order drawn
    from ``rng``), so the style is almost never exactly a training task —
    the regime where per-input adaptation should shine.
    """

    def __init__(
        self,
        tasks: TaskDistribution,
        num_classes: int,
        samples_per_step: int,
        segment_length: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if segment_length <= 0:
            raise DataError(f"segment_length must be positive, got {segment_length}")
        anchors = tasks.shifted_tasks()
        if len(anchors) < 2:
            raise DataError("a stream needs at least two shifted anchor tasks")
        self.tasks = tasks
        self.anchors = anchors
        self.num_classes = num_classes
        self.samples_per_step = samples_per_step
        self.segment_length = segment_length
        self.rng = rng or np.random.default_rng()

    def steps(self, count: int) -> Iterator[StreamStep]:
        """Yield ``count`` stream steps."""
        if count <= 0:
            raise DataError(f"count must be positive, got {count}")
        current = self.anchors[int(self.rng.integers(len(self.anchors)))]
        produced = 0
        while produced < count:
            target = self.anchors[int(self.rng.integers(len(self.anchors)))]
            for k in range(self.segment_length):
                if produced >= count:
                    return
                weight = k / max(self.segment_length - 1, 1)
                task = interpolate_tasks(
                    current, target, weight, task_id=10_000 + produced
                )
                data = generate_task_data(
                    task,
                    self.samples_per_step,
                    self.num_classes,
                    self.tasks.image_size,
                    self.rng,
                )
                yield StreamStep(step=produced, task=task, data=data)
                produced += 1
            current = target
