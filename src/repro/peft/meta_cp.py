"""MetaLoRA (CP) adapters (Sec. III-C Eq. 6 and Sec. III-D).

The weight update is a CP tensor whose λ-weights are the meta-generated
seed ``c``:

    linear:  ΔW(c) = Σ_r A[:, r] B[r, :] c_r        (Eq. 6)
    conv:    ΔW(c) = Σ_r A[:, :, :, r] B[r, :] c_r   (Sec. III-D)

``c`` is installed per batch by :class:`~repro.peft.meta_model.MetaLoRAModel`
via :meth:`set_seed` and has one row per sample, so *every sample gets its
own weight update* — the dynamic adaptation static LoRA lacks.  When no
seed is installed the adapter falls back to a learned static ``c`` (the
"static-seed" ablation, which collapses MetaLoRA to a CP-factored LoRA).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.conv_ops import conv2d
from repro.autograd.ops import einsum
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError, ShapeError
from repro.nn import init
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.peft.base import Adapter


class MetaLoRACPLinear(Adapter):
    """MetaLoRA (CP) around a frozen linear layer; seed shape ``(R,)``."""

    is_meta = True

    def __init__(
        self,
        base: Linear,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(
                f"MetaLoRACPLinear wraps Linear, got {type(base).__name__}"
            )
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.scaling = float(alpha if alpha is not None else rank) / rank
        self.factor_a = Parameter(init.normal(rng, (base.in_features, rank), std=0.02))
        self.factor_b = Parameter(init.zeros((rank, base.out_features)))
        self.static_seed = Parameter(init.ones((rank,)))
        self._seed: Tensor | None = None

    @property
    def seed_shape(self) -> tuple[int, ...]:
        return (self.rank,)

    def set_seed(self, seed: Tensor | None) -> None:
        if seed is not None and seed.shape[1:] != self.seed_shape:
            raise ShapeError(
                f"seed must be (N, {self.rank}), got {seed.shape}"
            )
        self._seed = seed

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        squeeze = x.ndim == 2
        x3 = x.reshape(x.shape[0], 1, x.shape[1]) if squeeze else x
        mid = einsum("nti,ir->ntr", x3, self.factor_a)
        if self._seed is None:
            mid = mid * self.static_seed.reshape(1, 1, self.rank)
        else:
            if self._seed.shape[0] != x.shape[0]:
                raise ShapeError(
                    f"seed batch {self._seed.shape[0]} != input batch {x.shape[0]}"
                )
            mid = mid * self._seed.reshape(self._seed.shape[0], 1, self.rank)
        delta = einsum("ntr,ro->nto", mid, self.factor_b) * self.scaling
        if squeeze:
            delta = delta.reshape(x.shape[0], self.base.out_features)
        return out + delta

    def delta_weight(self) -> np.ndarray:
        """ΔW for the *static* seed (Eq. 6 with learned c); meta ΔW is per-sample."""
        return (
            np.einsum(
                "ir,ro,r->io", self.factor_a.data, self.factor_b.data, self.static_seed.data
            )
            * self.scaling
        )

    def extra_parameter_count(self) -> int:
        return self.factor_a.size + self.factor_b.size + self.static_seed.size


class MetaLoRACPConv(Adapter):
    """MetaLoRA (CP) around a frozen conv layer; seed shape ``(R,)``.

    Computation follows Fig. 3: the rank-R factor ``A`` acts as a small
    convolution, the seed scales its channels per sample, and ``B`` is the
    1×1 channel-recovery map.
    """

    is_meta = True

    def __init__(
        self,
        base: Conv2d,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Conv2d):
            raise AdapterError(f"MetaLoRACPConv wraps Conv2d, got {type(base).__name__}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.scaling = float(alpha if alpha is not None else rank) / rank
        k = base.kernel_size
        fan_in = base.in_channels * k * k
        self.factor_a = Parameter(
            init.normal(rng, (k, k, base.in_channels, rank), std=1.0 / np.sqrt(fan_in))
        )
        self.factor_b = Parameter(init.zeros((rank, base.out_channels)))
        self.static_seed = Parameter(init.ones((rank,)))
        self._seed: Tensor | None = None

    @property
    def seed_shape(self) -> tuple[int, ...]:
        return (self.rank,)

    def set_seed(self, seed: Tensor | None) -> None:
        if seed is not None and seed.shape[1:] != self.seed_shape:
            raise ShapeError(f"seed must be (N, {self.rank}), got {seed.shape}")
        self._seed = seed

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        mid = conv2d(x, self.factor_a, stride=self.base.stride, padding=self.base.padding)
        if self._seed is None:
            delta = einsum("nrhw,r,ro->nohw", mid, self.static_seed, self.factor_b)
        else:
            if self._seed.shape[0] != x.shape[0]:
                raise ShapeError(
                    f"seed batch {self._seed.shape[0]} != input batch {x.shape[0]}"
                )
            delta = einsum("nrhw,nr,ro->nohw", mid, self._seed, self.factor_b)
        return out + delta * self.scaling

    def delta_weight(self) -> np.ndarray:
        """Static-seed ΔW of shape ``(K, K, I, O)``."""
        return (
            np.einsum(
                "abir,ro,r->abio",
                self.factor_a.data,
                self.factor_b.data,
                self.static_seed.data,
            )
            * self.scaling
        )

    def extra_parameter_count(self) -> int:
        return self.factor_a.size + self.factor_b.size + self.static_seed.size
