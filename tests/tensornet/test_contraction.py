"""Tests for generalized contraction (Eq. 1), mode products, matricization."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensornet import contract, fold, mode_product, unfold
from repro.tensornet.contraction import khatri_rao


class TestContract:
    def test_matches_tensordot(self, rng):
        a = rng.normal(size=(3, 4, 5))
        b = rng.normal(size=(5, 4, 6))
        out = contract(a, b, (1, 2), (1, 0))
        assert np.allclose(out, np.tensordot(a, b, axes=((1, 2), (1, 0))))

    def test_order_reduction_eq1(self, rng):
        """Contracting S shared modes yields order N + M - 2S."""
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        out = contract(a, b, 2, 0)
        assert out.ndim == 3 + 2 - 2

    def test_single_int_modes(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        assert np.allclose(contract(a, b, 1, 0), a @ b)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ShapeError, match="differ"):
            contract(rng.normal(size=(3, 4)), rng.normal(size=(5, 2)), 1, 0)

    def test_mode_count_mismatch(self, rng):
        with pytest.raises(ShapeError):
            contract(rng.normal(size=(3, 4)), rng.normal(size=(4, 3)), (0, 1), (1,))

    def test_mode_out_of_range(self, rng):
        with pytest.raises(ShapeError, match="out of range"):
            contract(rng.normal(size=(3, 4)), rng.normal(size=(4, 3)), 5, 0)


class TestModeProduct:
    def test_matches_einsum_each_mode(self, rng):
        x = rng.normal(size=(3, 4, 5))
        specs = ["ib,ajk->ijk", "jb,aik->iak", "kb,aij->ija"]
        for mode in range(3):
            m = rng.normal(size=(x.shape[mode], 7))
            out = mode_product(x, m, mode)
            expected = np.moveaxis(
                np.tensordot(x, m, axes=(mode, 0)), -1, mode
            )
            assert np.allclose(out, expected), mode

    def test_preserves_other_modes(self, rng):
        x = rng.normal(size=(3, 4, 5))
        m = rng.normal(size=(4, 9))
        assert mode_product(x, m, 1).shape == (3, 9, 5)

    def test_requires_matrix(self, rng):
        with pytest.raises(ShapeError):
            mode_product(rng.normal(size=(3, 4)), rng.normal(size=(4, 2, 2)), 1)

    def test_dim_mismatch(self, rng):
        with pytest.raises(ShapeError):
            mode_product(rng.normal(size=(3, 4)), rng.normal(size=(5, 2)), 1)


class TestUnfoldFold:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_roundtrip(self, rng, mode):
        x = rng.normal(size=(2, 3, 4, 5))
        assert np.allclose(fold(unfold(x, mode), mode, x.shape), x)

    def test_unfold_shape(self, rng):
        x = rng.normal(size=(2, 3, 4))
        assert unfold(x, 1).shape == (3, 8)

    def test_fold_validates_rows(self, rng):
        with pytest.raises(ShapeError):
            fold(rng.normal(size=(5, 6)), 0, (4, 6))

    def test_unfold_rank_identity(self, rng):
        """A rank-1 tensor has rank-1 unfoldings in every mode."""
        a, b, c = rng.normal(size=3), rng.normal(size=4), rng.normal(size=5)
        x = np.einsum("i,j,k->ijk", a, b, c)
        for mode in range(3):
            s = np.linalg.svd(unfold(x, mode), compute_uv=False)
            assert s[1] < 1e-10 * s[0]


class TestKhatriRao:
    def test_two_matrices(self, rng):
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        kr = khatri_rao([a, b])
        assert kr.shape == (12, 2)
        for r in range(2):
            assert np.allclose(kr[:, r], np.kron(a[:, r], b[:, r]))

    def test_rank_mismatch(self, rng):
        with pytest.raises(ShapeError):
            khatri_rao([rng.normal(size=(3, 2)), rng.normal(size=(4, 3))])

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            khatri_rao([])
