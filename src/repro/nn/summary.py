"""Model summaries.

``summarize(model, input_shape)`` runs a forward pass with shape hooks
and renders a per-layer table (type, output shape, parameters, frozen
state) — the torchsummary-style view, adapter-aware: rows mark which
layers are wrapped by adapters and how many parameters each adds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module


@dataclass
class LayerRow:
    """One leaf module's summary entry."""

    name: str
    kind: str
    parameters: int
    trainable: int
    is_adapter: bool


def collect_rows(model: Module) -> list[LayerRow]:
    """Per-module rows for every *leaf* module (no children)."""
    from repro.peft.base import Adapter  # local import: nn must not need peft

    rows = []
    for name, module in model.named_modules():
        if not name or list(module.children()):
            continue
        params = sum(p.size for p in module._parameters.values())
        trainable = sum(
            p.size for p in module._parameters.values() if p.requires_grad
        )
        rows.append(
            LayerRow(
                name=name,
                kind=type(module).__name__,
                parameters=params,
                trainable=trainable,
                is_adapter=isinstance(module, Adapter),
            )
        )
    # Adapters are not leaves (they contain the base); add their own rows.
    for name, module in model.named_modules():
        if name and isinstance(module, Adapter):
            own = sum(p.size for p in module._parameters.values())
            trainable = sum(
                p.size for p in module._parameters.values() if p.requires_grad
            )
            rows.append(
                LayerRow(
                    name=name,
                    kind=type(module).__name__,
                    parameters=own,
                    trainable=trainable,
                    is_adapter=True,
                )
            )
    rows.sort(key=lambda r: r.name)
    return rows


def summarize(
    model: Module, input_shape: tuple[int, ...] | None = None
) -> str:
    """A printable summary table; optionally checks a forward pass.

    ``input_shape`` (without the batch axis) triggers a dry-run forward
    with batch size 2 so the summary fails loudly on a mis-wired model.
    """
    if input_shape is not None:
        x = Tensor(np.zeros((2,) + tuple(input_shape), dtype=np.float32))
        was_training = model.training
        model.eval()
        with no_grad():
            model(x)
        model.train(was_training)

    rows = collect_rows(model)
    name_width = max([len(r.name) for r in rows] + [5])
    kind_width = max([len(r.kind) for r in rows] + [4])
    lines = [
        f"{'layer'.ljust(name_width)}  {'type'.ljust(kind_width)}  "
        f"{'params':>9}  {'trainable':>9}",
        "-" * (name_width + kind_width + 24),
    ]
    for row in rows:
        marker = "*" if row.is_adapter else " "
        lines.append(
            f"{row.name.ljust(name_width)}{marker} {row.kind.ljust(kind_width)}  "
            f"{row.parameters:>9,}  {row.trainable:>9,}"
        )
    total = model.parameter_count()
    trainable = model.parameter_count(trainable_only=True)
    lines.append("-" * (name_width + kind_width + 24))
    lines.append(
        f"total: {total:,}   trainable: {trainable:,} "
        f"({100 * trainable / total if total else 0:.2f}%)   "
        f"(* = adapter)"
    )
    return "\n".join(lines)
