"""Continuous batching over :class:`~repro.serve.registry.MultiTenantEngine`.

:class:`BatchScheduler` is the serving frontend's brain: a bounded
admission queue drained by one scheduler thread into micro-batches.
Unlike the engine's own micro-batcher (which coalesces on a fixed
``max_delay`` window), the scheduler batches *continuously* — the next
batch forms from whatever arrived while the current batch was running,
so the batch size adapts to load with no idle waiting:

- **Admission control.**  ``submit`` is non-blocking; when the queue
  holds ``queue_limit`` requests the new arrival is answered immediately
  with a ``rejected`` result (the 429-style outcome) and
  ``serve.request.rejected`` is bumped.  Nothing is ever silently
  dropped.

- **SLO-aware ordering.**  The queue drains highest ``priority`` first,
  ties broken earliest-deadline-first, then arrival order.  Requests
  whose deadline lapsed while queued are answered ``deadline_missed``
  without touching a kernel.

- **Cost-aware sizing.**  The scheduler keeps a per-adapter EMA of
  per-sample run seconds and packs each batch greedily until the
  predicted batch cost reaches ``target_batch_seconds`` (bounded by
  ``max_batch``) — cheap tenants get big batches, expensive tenants
  short ones, and tail latency stays bounded under mixed load.

- **Graceful drain.**  ``close()`` stops admission (late ``submit`` is
  rejected), then serves what is queued for up to ``drain_timeout``
  seconds; whatever remains is failed with a typed ``error`` result.

Every batch execution runs under a ``serve.batch`` span and fires the
``REPRO_FAULTS`` hook under the ``serve.batch`` key (attempt = batch
index), so stall/crash injection works exactly like the runtime pool's.
Metrics: ``serve.queue.depth`` (histogram, sampled at batch formation),
``serve.request.rejected``, ``serve.request.deadline_missed``,
``serve.batch.size``, ``serve.batches`` — all in the unified snapshot
schema via :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

from repro.errors import ServeError
from repro.obs import OBS, TRACER
from repro.obs.metrics import MetricsRegistry
from repro.perf import fire_faults
from repro.serve.api import (
    DEADLINE_MISSED,
    ERROR,
    REJECTED,
    ServeRequest,
    ServeResult,
    Timings,
)
from repro.serve.registry import MultiTenantEngine

__all__ = ["BatchScheduler"]

#: Per-sample cost assumed before *any* batch has been measured
#: (seconds); only shapes the very first batch the scheduler ever
#: packs.  Once one batch has run, unknown adapters are seeded from the
#: first observed batch instead — a new tenant on a fast host is not
#: mis-packed against this flat prior.
DEFAULT_SAMPLE_SECONDS = 0.005

#: EMA smoothing for per-adapter sample-cost estimates.
EMA_ALPHA = 0.3


class _Pending:
    """One admitted request awaiting a batch slot."""

    __slots__ = ("request", "adapter", "future", "seq")

    def __init__(
        self, request: ServeRequest, adapter: str, future: "Future[ServeResult]", seq: int
    ) -> None:
        self.request = request
        self.adapter = adapter
        self.future = future
        self.seq = seq

    def sort_key(self) -> tuple:
        # Highest priority first, then earliest deadline, then arrival.
        return (-self.request.priority, self.request.deadline_at(), self.seq)


class BatchScheduler:
    """Bounded admission queue + continuous micro-batching worker.

    Parameters
    ----------
    engine:
        The :class:`MultiTenantEngine` batches execute on (via its
        synchronous ``serve``, so cross-tenant grouping applies).
    queue_limit:
        Admission bound; arrival ``queue_limit + 1`` is rejected.
    max_batch:
        Largest micro-batch (default: the engine's ``max_batch``).
    target_batch_seconds:
        Cost budget one batch aims for; the packer stops adding requests
        once predicted cost crosses it.  Also the upper bound one
        admitted request waits when the queue is otherwise empty.
    drain_timeout:
        Default ``close()`` drain budget (seconds); ``None`` adopts the
        engine's ``drain_timeout``.
    record_batches:
        Keep the first N dispatched batches — ``(requests, results)``
        pairs — on :attr:`recorded` for bit-identity replay against
        direct engine dispatch (the load bench's identity check).
    """

    def __init__(
        self,
        engine: MultiTenantEngine,
        *,
        queue_limit: int = 256,
        max_batch: int | None = None,
        target_batch_seconds: float = 0.025,
        drain_timeout: float | None = None,
        record_batches: int = 0,
    ) -> None:
        if queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {queue_limit}")
        resolved_max = engine.max_batch if max_batch is None else int(max_batch)
        if resolved_max < 1:
            raise ServeError(f"max_batch must be >= 1, got {resolved_max}")
        if target_batch_seconds <= 0:
            raise ServeError(
                f"target_batch_seconds must be > 0, got {target_batch_seconds}"
            )
        self.engine = engine
        self.queue_limit = int(queue_limit)
        self.max_batch = resolved_max
        self.target_batch_seconds = float(target_batch_seconds)
        self.drain_timeout = (
            engine.drain_timeout if drain_timeout is None else float(drain_timeout)
        )
        self.record_batches = int(record_batches)
        #: First ``record_batches`` dispatched batches, as
        #: ``(list[ServeRequest], list[ServeResult])`` pairs.
        self.recorded: list[tuple[list[ServeRequest], list[ServeResult]]] = []
        self._pending: list[_Pending] = []
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._seq = 0
        self._batches = 0
        self._costs: dict[str, float] = {}
        #: Per-sample seconds of the first measured batch; the cold-start
        #: prior for adapters with no EMA entry yet (None until then).
        self._default_cost: float | None = None
        self._metrics = MetricsRegistry(enabled=True)
        self._closed = False
        self._worker: threading.Thread | None = None

    # -- metrics --------------------------------------------------------------

    def _inc(self, name: str, n: int = 1) -> None:
        self._metrics.inc(name, n)
        OBS.enabled and OBS.inc(name, n)

    def _hist(self, name: str, value: object) -> None:
        self._metrics.hist(name, value)
        OBS.enabled and OBS.hist(name, value)

    # -- admission ------------------------------------------------------------

    def submit(self, request: ServeRequest) -> "Future[ServeResult]":
        """Admit one single-sample request; never blocks, never hangs.

        Returns a future resolving to the request's
        :class:`ServeResult`; a full queue or a closed scheduler
        resolves it immediately with ``rejected``.
        """
        if not isinstance(request, ServeRequest):
            raise ServeError(
                f"submit() takes a ServeRequest, got {type(request).__name__}"
            )
        if request.batched:
            raise ServeError(
                "submit() takes single-sample requests; batching is the "
                "scheduler's job"
            )
        future: "Future[ServeResult]" = Future()
        try:
            adapter = self.engine._resolve_adapter(request)
        except ServeError as exc:
            future.set_result(ServeResult.failure(ERROR, str(exc)))
            return future
        with self._lock:
            if self._closed:
                self._inc("serve.request.rejected")
                future.set_result(
                    ServeResult.failure(REJECTED, "scheduler is shutting down")
                )
                return future
            if len(self._pending) >= self.queue_limit:
                self._inc("serve.request.rejected")
                future.set_result(
                    ServeResult.failure(
                        REJECTED,
                        f"admission queue full ({self.queue_limit} requests)",
                    )
                )
                return future
            self._pending.append(_Pending(request, adapter, future, self._seq))
            self._seq += 1
            self._ensure_worker_locked()
            self._work.notify()
        return future

    def depth(self) -> int:
        """Current admission-queue depth."""
        with self._lock:
            return len(self._pending)

    # -- the scheduler loop ---------------------------------------------------

    def _ensure_worker_locked(self) -> None:
        if self._worker is not None and self._worker.is_alive():
            return
        self._worker = threading.Thread(
            target=self._loop, name="repro-serve-scheduler", daemon=True
        )
        self._worker.start()

    def _take_batch(self) -> list[_Pending] | None:
        """Pop the next micro-batch (None when closed and drained)."""
        with self._lock:
            while not self._pending:
                if self._closed:
                    return None
                self._work.wait(timeout=0.05)
            self._hist("serve.queue.depth", len(self._pending))
            self._pending.sort(key=_Pending.sort_key)
            batch: list[_Pending] = []
            cost = 0.0
            taken = 0
            unknown = (
                DEFAULT_SAMPLE_SECONDS
                if self._default_cost is None
                else self._default_cost
            )
            for item in self._pending:
                if len(batch) >= self.max_batch:
                    break
                predicted = self._costs.get(item.adapter, unknown)
                if batch and cost + predicted > self.target_batch_seconds:
                    break
                batch.append(item)
                cost += predicted
                taken += 1
            del self._pending[:taken]
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: list[_Pending]) -> None:
        index = self._batches
        self._batches += 1
        now = time.perf_counter()
        live: list[_Pending] = []
        for item in batch:
            if item.request.expired(now):
                self._inc("serve.request.deadline_missed")
                elapsed = now - item.request.created_at
                item.future.set_result(
                    ServeResult.failure(
                        DEADLINE_MISSED,
                        f"SLO budget of {item.request.deadline}s lapsed in queue",
                        Timings(queue_seconds=elapsed, total_seconds=elapsed),
                    )
                )
            else:
                live.append(item)
        if not live:
            return
        self._inc("serve.batches")
        self._hist("serve.batch.size", len(live))
        started = time.perf_counter()
        with TRACER.span("serve.batch", size=len(live), index=index):
            # Deterministic stall/crash injection, keyed like pool cells.
            fire_faults("serve.batch", attempt=index)
            try:
                results = self.engine.serve([item.request for item in live])
            except BaseException as exc:
                for item in live:
                    item.future.set_result(
                        ServeResult.failure(ERROR, f"serving failed: {exc}")
                    )
                return
        elapsed = time.perf_counter() - started
        per_sample = elapsed / max(len(live), 1)
        if self._default_cost is None:
            self._default_cost = per_sample
        for item in live:
            previous = self._costs.get(item.adapter)
            self._costs[item.adapter] = (
                per_sample
                if previous is None
                else (1.0 - EMA_ALPHA) * previous + EMA_ALPHA * per_sample
            )
        if self.record_batches and len(self.recorded) < self.record_batches:
            self.recorded.append(([item.request for item in live], list(results)))
        for item, result in zip(live, results):
            item.future.set_result(result)

    # -- per-adapter cost model ----------------------------------------------

    def sample_costs(self) -> dict[str, float]:
        """Current per-adapter EMA of per-sample run seconds."""
        with self._lock:
            return dict(self._costs)

    def default_sample_cost(self) -> float:
        """Predicted per-sample cost for an adapter never batched before.

        The flat :data:`DEFAULT_SAMPLE_SECONDS` prior only until the
        first batch is measured; the first observed batch's per-sample
        seconds afterwards.
        """
        with self._lock:
            if self._default_cost is None:
                return DEFAULT_SAMPLE_SECONDS
            return self._default_cost

    # -- lifecycle ------------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        """Scheduler + engine counters in the unified snapshot schema."""
        merged = MetricsRegistry(enabled=True)
        merged.merge(self.engine.stats())
        merged.merge(self._metrics.snapshot())
        return merged.snapshot()

    def close(self, drain_timeout: float | None = None) -> None:
        """Stop admission, drain queued work, fail whatever remains.

        Waits up to ``drain_timeout`` seconds (default: the constructor
        knob) for the scheduler thread to serve the queue; requests
        still pending afterwards resolve to typed ``error`` results.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
            self._work.notify_all()
        timeout = self.drain_timeout if drain_timeout is None else float(drain_timeout)
        if worker is not None and worker.is_alive():
            worker.join(timeout=timeout)
        with self._lock:
            leftover, self._pending = self._pending, []
        for item in leftover:
            item.future.set_result(
                ServeResult.failure(
                    ERROR, "scheduler closed before serving this request"
                )
            )

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
