"""Embedding cluster-quality metrics.

Table I measures embedding quality indirectly through KNN accuracy;
these metrics measure it directly (no classifier in the loop), and back
the ablation analyses: the meta variants should *tighten* per-class
clusters within each task, which is exactly what higher silhouette /
lower intra-over-inter ratios capture.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


def _validate(embeddings: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    if embeddings.ndim != 2:
        raise EvaluationError(f"embeddings must be 2-d, got {embeddings.shape}")
    if labels.shape != (embeddings.shape[0],):
        raise EvaluationError(
            f"labels shape {labels.shape} does not match {embeddings.shape[0]} rows"
        )
    if np.unique(labels).size < 2:
        raise EvaluationError("cluster metrics need at least two classes")
    return embeddings, labels


def silhouette_score(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over samples (euclidean), in [-1, 1]."""
    embeddings, labels = _validate(embeddings, labels)
    n = embeddings.shape[0]
    distances = np.sqrt(
        ((embeddings[:, None, :] - embeddings[None, :, :]) ** 2).sum(axis=2)
    )
    classes = np.unique(labels)
    scores = np.zeros(n)
    for i in range(n):
        own = labels[i]
        same = (labels == own) & (np.arange(n) != i)
        if not same.any():
            scores[i] = 0.0  # singleton cluster, silhouette undefined -> 0
            continue
        a = distances[i, same].mean()
        b = min(
            distances[i, labels == other].mean()
            for other in classes
            if other != own
        )
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def intra_inter_ratio(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Mean intra-class distance over mean inter-class distance (lower = tighter)."""
    embeddings, labels = _validate(embeddings, labels)
    distances = np.sqrt(
        ((embeddings[:, None, :] - embeddings[None, :, :]) ** 2).sum(axis=2)
    )
    same = labels[:, None] == labels[None, :]
    off_diagonal = ~np.eye(labels.shape[0], dtype=bool)
    intra = distances[same & off_diagonal]
    inter = distances[~same]
    if intra.size == 0 or inter.size == 0:
        raise EvaluationError("need both intra- and inter-class pairs")
    return float(intra.mean() / inter.mean())


def class_centroid_separation(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Minimum pairwise distance between class centroids (higher = better)."""
    embeddings, labels = _validate(embeddings, labels)
    classes = np.unique(labels)
    centroids = np.stack([embeddings[labels == c].mean(axis=0) for c in classes])
    gaps = [
        float(np.linalg.norm(centroids[i] - centroids[j]))
        for i in range(len(classes))
        for j in range(i)
    ]
    return min(gaps)
