"""Tests for rng, registry, serialization and timing utilities."""

import numpy as np
import pytest

from repro.utils import Registry, Timer, load_arrays, new_rng, save_arrays, spawn_rngs
from repro.utils.rng import RngMixin


class TestRng:
    def test_new_rng_deterministic(self):
        assert new_rng(5).integers(1000) == new_rng(5).integers(1000)

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(0, 3)
        draws = [g.integers(10**9) for g in streams]
        assert len(set(draws)) == 3

    def test_spawn_rngs_reproducible(self):
        a = [g.integers(10**9) for g in spawn_rngs(1, 2)]
        b = [g.integers(10**9) for g in spawn_rngs(1, 2)]
        assert a == b

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_mixin_reseed(self):
        class Thing(RngMixin):
            pass

        thing = Thing()
        thing.reseed(7)
        first = thing.rng.integers(1000)
        thing.reseed(7)
        assert thing.rng.integers(1000) == first


class TestRegistry:
    def test_register_and_create(self):
        reg: Registry[str] = Registry("thing")

        @reg.register("a")
        def make_a():
            return "A"

        assert reg.create("a") == "A"
        assert "a" in reg
        assert reg.names() == ["a"]
        assert len(reg) == 1

    def test_create_with_args(self):
        reg: Registry[int] = Registry("adder")
        reg.register("add")(lambda x, y: x + y)
        assert reg.create("add", 2, y=3) == 5

    def test_duplicate_name_rejected(self):
        reg: Registry[str] = Registry("thing")
        reg.register("x")(lambda: "x")
        with pytest.raises(KeyError, match="already"):
            reg.register("x")(lambda: "y")

    def test_unknown_name_lists_known(self):
        reg: Registry[str] = Registry("thing")
        reg.register("known")(lambda: "k")
        with pytest.raises(KeyError, match="known"):
            reg.create("unknown")

    def test_iteration_sorted(self):
        reg: Registry[str] = Registry("thing")
        reg.register("b")(lambda: "b")
        reg.register("a")(lambda: "a")
        assert list(reg) == ["a", "b"]


class TestSerialization:
    def test_roundtrip(self, tmp_path, rng):
        arrays = {
            "weight": rng.normal(size=(3, 4)).astype(np.float32),
            "bias": rng.normal(size=4),
        }
        path = tmp_path / "state.npz"
        save_arrays(path, arrays)
        loaded = load_arrays(path)
        assert set(loaded) == {"weight", "bias"}
        for key in arrays:
            assert np.array_equal(loaded[key], arrays[key])
            assert loaded[key].dtype == arrays[key].dtype

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_arrays(tmp_path / "x.npz", {})

    def test_model_state_roundtrip(self, tmp_path, rng):
        from repro.models import resnet_small

        model = resnet_small(3, rng)
        path = tmp_path / "model.npz"
        save_arrays(path, model.state_dict())
        model2 = resnet_small(3, np.random.default_rng(999))
        model2.load_state_dict(load_arrays(path))
        from repro.autograd import Tensor

        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        model.eval()
        model2.eval()
        assert np.allclose(model(x).data, model2(x).data, atol=1e-6)


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            __ = sum(range(100))
        assert t.elapsed >= 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            __ = sum(range(10000))
        assert t.elapsed >= 0.0
        assert isinstance(first, float)
