"""Adapter zoo: every PEFT method in the library on one model.

A guided tour of the adapter API: ``peft.attach`` resolves each method by
its registry name, a short adaptation run follows, then the parameter
budget and (for static adapters) merging back into the base via the
returned :class:`AttachResult`.  Useful as a template when wiring a new
adapter into your own model — register a factory in ``PEFT_METHODS`` and
it slots straight into this loop.

Run:  python examples/adapter_zoo.py   (~1 min)
"""

import numpy as np

from repro.autograd import Tensor
from repro.data import TaskDistribution, generate_task_data, merge_tasks
from repro.models import resnet_small
from repro.nn import Conv2d, Linear
from repro.peft import attach, count_parameters, save_adapter
from repro.train import Adam, Trainer
from repro.utils.rng import spawn_rngs

NUM_CLASSES = 4

#: registry method name -> (rank, extra options, target types, mergeable)
ZOO = {
    "lora": (2, {}, (Conv2d, Linear), True),
    "multi_lora": (2, {"branches": 2}, (Conv2d, Linear), True),
    "meta_lora_cp": (2, {}, (Conv2d, Linear), False),  # input-conditioned
    "moe_lora": (2, {"experts": 3}, (Linear,), False),
    "tt_lora": (2, {}, (Linear,), True),
    "dora": (2, {}, (Linear,), True),
    "bottleneck": (4, {}, (Linear,), False),  # rank = bottleneck width
}


def main() -> None:
    rng_model, rng_data, rng_adapt = spawn_rngs(0, 3)
    tasks = TaskDistribution(4, seed=0)
    train = [generate_task_data(t, 48, NUM_CLASSES, 16, rng_data) for t in tasks]
    images, labels, __ = merge_tasks(train)

    pretrained = resnet_small(NUM_CLASSES, rng_model)
    Trainer(pretrained, Adam(pretrained.parameters(), lr=3e-3)).fit(
        images, labels, epochs=2, batch_size=32, rng=rng_data
    )
    state = pretrained.state_dict()
    x = Tensor(rng_data.normal(size=(4, 3, 16, 16)).astype(np.float32))

    print(f"{'adapter':<14} {'trainable':>10} {'fraction':>9}  {'merged?':>8}")
    for name, (rank, options, targets, mergeable) in ZOO.items():
        model = resnet_small(NUM_CLASSES, rng_model)
        model.load_state_dict(state)
        result = attach(model, name, rank=rank, targets=targets, rng=rng_adapt, **options)

        trainer = Trainer(
            model, Adam(list(result.trainable_parameters()), lr=3e-3), grad_clip=5.0
        )
        for __ in range(5):
            index = rng_adapt.choice(images.shape[0], 32, replace=False)
            trainer.train_step(images[index], labels[index])

        counts = count_parameters(model)
        merged_note = "-"
        if mergeable:
            before = model.eval()(x).data.copy()
            result.merge()
            after = model(x).data
            merged_note = "exact" if np.allclose(before, after, atol=1e-3) else "DRIFT"
        print(
            f"{name:<14} {counts.trainable:>10,} "
            f"{100 * counts.trainable_fraction:>8.2f}%  {merged_note:>8}"
        )

    # Adapter-only checkpointing: the PEFT deployment story.
    model = resnet_small(NUM_CLASSES, rng_model)
    model.load_state_dict(state)
    attach(model, "lora", rank=2, rng=rng_adapt)
    scalars = save_adapter(model, "/tmp/repro_adapter_demo.npz")
    print(
        f"\nadapter checkpoint: {scalars:,} scalars "
        f"(vs {model.parameter_count():,} in the full model)"
    )


if __name__ == "__main__":
    main()
