"""Tests for static adapters: LoRA, Conv-LoRA (Eq. 5), Multi-LoRA."""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d
from repro.errors import AdapterError
from repro.nn import Conv2d, Linear
from repro.peft import ConvLoRA, LoRALinear, MultiLoRAConv, MultiLoRALinear


def randomize(param, rng):
    param.data[...] = rng.normal(size=param.shape).astype(np.float32)


class TestLoRALinear:
    def test_identity_at_init(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = LoRALinear(base, rank=3, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)

    def test_delta_weight_matches_forward(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = LoRALinear(base, rank=3, rng=rng)
        randomize(adapter.lora_b, rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        expected = base(x).data + x.data @ adapter.delta_weight()
        assert np.allclose(adapter(x).data, expected, atol=1e-5)

    def test_scaling_alpha_over_rank(self, rng):
        base = Linear(4, 4, rng=rng)
        adapter = LoRALinear(base, rank=2, alpha=8.0, rng=rng)
        assert adapter.scaling == pytest.approx(4.0)

    def test_rank_bounds(self, rng):
        with pytest.raises(AdapterError):
            LoRALinear(Linear(4, 4, rng=rng), rank=0)

    def test_wrong_base_type(self, rng):
        with pytest.raises(AdapterError):
            LoRALinear(Conv2d(3, 3, 3, rng=rng), rank=2)

    def test_only_adapter_params_trainable(self, rng):
        adapter = LoRALinear(Linear(6, 5, rng=rng), rank=2, rng=rng)
        trainable = {n for n, p in adapter.named_parameters() if p.requires_grad}
        assert trainable == {"lora_a", "lora_b"}

    def test_extra_parameter_count(self, rng):
        adapter = LoRALinear(Linear(6, 5, rng=rng), rank=2, rng=rng)
        assert adapter.extra_parameter_count() == 6 * 2 + 2 * 5

    def test_gradients_flow_to_adapter_only(self, rng):
        adapter = LoRALinear(Linear(6, 5, rng=rng), rank=2, rng=rng)
        x = Tensor(rng.normal(size=(3, 6)).astype(np.float32))
        adapter(x).sum().backward()
        assert adapter.lora_a.grad is not None
        assert adapter.lora_b.grad is not None
        assert adapter.base.weight.grad is None


class TestConvLoRA:
    def test_identity_at_init(self, rng):
        base = Conv2d(3, 5, 3, padding=1, rng=rng)
        adapter = ConvLoRA(base, rank=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)

    def test_fig3_identity_small_conv_then_1x1(self, rng):
        """Forward (small conv + 1×1) equals base + conv with materialized ΔW."""
        base = Conv2d(3, 5, 3, padding=1, rng=rng)
        adapter = ConvLoRA(base, rank=2, rng=rng)
        randomize(adapter.lora_b, rng)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        delta = Tensor(adapter.delta_weight().astype(np.float32))
        expected = base(x).data + conv2d(x, delta, stride=1, padding=1).data
        assert np.allclose(adapter(x).data, expected, atol=1e-4)

    def test_respects_stride_and_padding(self, rng):
        base = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        adapter = ConvLoRA(base, rank=2, rng=rng)
        randomize(adapter.lora_b, rng)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert adapter(x).shape == base(x).shape

    def test_delta_weight_shape_eq5(self, rng):
        base = Conv2d(3, 5, 3, rng=rng)
        adapter = ConvLoRA(base, rank=2, rng=rng)
        assert adapter.delta_weight().shape == (3, 3, 3, 5)  # (K, K, I, O)

    def test_parameter_budget_below_full_delta(self, rng):
        base = Conv2d(16, 32, 3, rng=rng)
        adapter = ConvLoRA(base, rank=2, rng=rng)
        full_delta = 3 * 3 * 16 * 32
        assert adapter.extra_parameter_count() < full_delta / 4

    def test_wrong_base_type(self, rng):
        with pytest.raises(AdapterError):
            ConvLoRA(Linear(4, 4, rng=rng), rank=2)


class TestMultiLoRA:
    def test_identity_at_init(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MultiLoRALinear(base, rank=2, branches=3, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)

    def test_delta_weight_sums_gated_branches(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MultiLoRALinear(base, rank=2, branches=3, rng=rng)
        for branch in adapter.lora_branches:
            randomize(branch.lora_b, rng)
        randomize(adapter.gates, rng)
        manual = sum(
            float(adapter.gates.data[k]) * adapter.scaling * b.delta_weight()
            for k, b in enumerate(adapter.lora_branches)
        )
        assert np.allclose(adapter.delta_weight(), manual, atol=1e-6)

    def test_forward_matches_delta_weight(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MultiLoRALinear(base, rank=2, branches=2, rng=rng)
        for branch in adapter.lora_branches:
            randomize(branch.lora_b, rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        expected = base(x).data + x.data @ adapter.delta_weight()
        assert np.allclose(adapter(x).data, expected, atol=1e-5)

    def test_conv_variant_matches_delta_weight(self, rng):
        base = Conv2d(3, 4, 3, padding=1, rng=rng)
        adapter = MultiLoRAConv(base, rank=2, branches=2, rng=rng)
        for branch in adapter.lora_branches:
            randomize(branch.lora_b, rng)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        delta = Tensor(adapter.delta_weight().astype(np.float32))
        expected = base(x).data + conv2d(x, delta, stride=1, padding=1).data
        assert np.allclose(adapter(x).data, expected, atol=1e-4)

    def test_gates_receive_gradients(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MultiLoRALinear(base, rank=2, branches=3, rng=rng)
        for branch in adapter.lora_branches:
            randomize(branch.lora_b, rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        adapter(x).sum().backward()
        assert adapter.gates.grad is not None

    def test_branch_count_validation(self, rng):
        with pytest.raises(AdapterError):
            MultiLoRALinear(Linear(4, 4, rng=rng), rank=2, branches=0)

    def test_more_branches_more_parameters(self, rng):
        base = Linear(6, 5, rng=rng)
        two = MultiLoRALinear(base, rank=2, branches=2, rng=rng)
        four = MultiLoRALinear(base, rank=2, branches=4, rng=rng)
        assert four.extra_parameter_count() > two.extra_parameter_count()
