"""Smoke test for the ``repro bench`` harness and its JSON schema."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    format_bench_record,
    run_autograd_bench,
    validate_bench_record,
    write_bench_records,
)

pytestmark = pytest.mark.bench_smoke


class TestBenchSmoke:
    def test_write_bench_records_emits_valid_json(self, tmp_path):
        paths = write_bench_records(str(tmp_path), scale="tiny", repeats=1)
        assert sorted(p.rsplit("/", 1)[-1] for p in paths) == [
            "BENCH_autograd.json",
            "BENCH_table1.json",
        ]
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
            validate_bench_record(record)  # schema round-trips through JSON
            assert record["schema"] == SCHEMA
            for entry in record["entries"]:
                assert entry["optimized_seconds"] > 0
                assert entry["max_abs_diff"] < 1e-8  # optimized matches reference

    def test_optimized_paths_report_cache_activity(self):
        record = run_autograd_bench(scale="tiny", repeats=1)
        counters = {name for e in record["entries"] for name in e["counters"]}
        assert "einsum.plan_cache.hit" in counters
        assert "conv2d.patches_cache.hit" in counters

    def test_format_is_human_readable(self):
        record = run_autograd_bench(scale="tiny", repeats=1)
        text = format_bench_record(record)
        assert "speedup" in text
        assert "geomean" in text

    def test_validate_rejects_corrupt_records(self):
        record = run_autograd_bench(scale="tiny", repeats=1)
        for corrupt in (
            {**record, "schema": "wrong/v0"},
            {**record, "kind": "nope"},
            {**record, "entries": []},
            {**record, "summary": {}},
        ):
            with pytest.raises(ValueError, match="invalid bench record"):
                validate_bench_record(corrupt)
        broken_entry = json.loads(json.dumps(record))
        broken_entry["entries"][0]["speedup"] = float("nan")
        with pytest.raises(ValueError, match="speedup"):
            validate_bench_record(broken_entry)
