"""The full MetaLoRA architecture (Fig. 4).

:class:`MetaLoRAModel` ties together the three modules of the paper's
design:

1. **feature extraction** — a frozen backbone embeds the input;
2. **parameter space mapping net** — a shared MLP trunk plus one small
   head per adapted layer maps the embedding to that layer's seed
   (``c ∈ R^R`` for CP, ``C ∈ R^{R×R}`` for TR);
3. **tensor-based parameter integration** — each adapter contracts its
   seed with its learned factors to form a *per-sample* ΔW during the
   backbone forward pass.

Seeds are installed on the adapters just before the forward and removed
right after, so the adapted backbone can still be used standalone (it then
falls back to its static seeds).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.models.feature_extractor import FeatureExtractor
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.peft.base import Adapter, iter_adapters
from repro.perf import FLAGS


class MetaLoRAModel(Module):
    """Backbone with meta adapters + extractor + mapping nets, end to end."""

    def __init__(
        self,
        backbone: Module,
        extractor: FeatureExtractor,
        mapping_hidden: int = 32,
        rng: np.random.Generator | None = None,
        adapters: Iterable[tuple[str, Adapter]] | Mapping[str, Adapter] | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.backbone = backbone
        self.extractor = extractor
        self._meta_names: list[str] = []
        self._meta_adapters: list[Adapter] = []
        # ``adapters`` is typically the AttachResult from peft.attach (it
        # iterates as (name, adapter) pairs in injection order); a mapping
        # works too.  Without it, fall back to re-walking the backbone.
        if adapters is None:
            named = iter_adapters(backbone)
        elif isinstance(adapters, Mapping):
            named = adapters.items()
        else:
            named = adapters
        for name, adapter in named:
            if adapter.is_meta:
                self._meta_names.append(name)
                self._meta_adapters.append(adapter)
        if not self._meta_adapters:
            raise AdapterError(
                "MetaLoRAModel needs at least one meta adapter in the backbone"
            )
        feature_dim = extractor.output_dim
        self.trunk = Linear(feature_dim, mapping_hidden, rng=rng)
        heads = []
        for adapter in self._meta_adapters:
            out_dim = int(np.prod(adapter.seed_shape))
            head = Linear(mapping_hidden, out_dim, rng=rng)
            # Neutral start: constant seed 1 for every sample (CP) or a
            # constant matrix (TR), so meta adaptation grows from a
            # LoRA-like initialization instead of injecting noise.
            head.weight.data[...] = 0.0
            head.bias.data[...] = 1.0
            heads.append(head)
        self.heads = ModuleList(heads)
        # Per-layer learned gain: tanh bounds each seed entry to (-1, 1),
        # which starves CP's diagonal modulation of dynamic range; the gain
        # lets training widen it per adapter.
        self.head_gains = Parameter(np.ones(len(heads), dtype=np.float32))
        # Layout for the fused-head fast path: column span of each head in
        # the concatenated output, and which gain each column belongs to.
        sizes = [int(np.prod(a.seed_shape)) for a in self._meta_adapters]
        self._seed_offsets = np.concatenate([[0], np.cumsum(sizes)]).tolist()
        self._gain_index = np.repeat(np.arange(len(sizes)), sizes)

    @property
    def adapter_names(self) -> list[str]:
        """Dotted names of the meta-adapted layers, in traversal order."""
        return list(self._meta_names)

    def generate_seeds(self, x: Tensor) -> list[Tensor]:
        """Run feature extraction + mapping nets; one seed tensor per adapter.

        With ``FLAGS.batched_seeds`` the per-head loop is replaced by one
        matmul against the heads' concatenated weights: every head shares
        the same ``hidden`` input, so the per-head GEMMs are just column
        blocks of a single larger GEMM.  Each output column is the same
        dot product either way, so the two paths agree to float precision;
        ``perf_overrides(batched_seeds=False)`` recovers the loop.
        """
        features = self.extractor(x)
        hidden = ops.relu(self.trunk(features))
        if FLAGS.batched_seeds and len(self._meta_adapters) > 1:
            return self._generate_seeds_fused(x, hidden)
        seeds = []
        for i, (adapter, head) in enumerate(zip(self._meta_adapters, self.heads)):
            raw = ops.tanh(head(hidden)) * self.head_gains[i]
            seeds.append(raw.reshape(x.shape[0], *adapter.seed_shape))
        return seeds

    def _generate_seeds_fused(self, x: Tensor, hidden: Tensor) -> list[Tensor]:
        fused_w = ops.concat([head.weight for head in self.heads], axis=1)
        fused_b = ops.concat([head.bias for head in self.heads], axis=0)
        scaled = ops.tanh(hidden @ fused_w + fused_b) * self.head_gains[self._gain_index]
        seeds = []
        for i, adapter in enumerate(self._meta_adapters):
            lo, hi = self._seed_offsets[i], self._seed_offsets[i + 1]
            seeds.append(scaled[:, lo:hi].reshape(x.shape[0], *adapter.seed_shape))
        return seeds

    def _install(self, seeds: list[Tensor] | None) -> None:
        for i, adapter in enumerate(self._meta_adapters):
            adapter.set_seed(None if seeds is None else seeds[i])

    def forward(self, x: Tensor) -> Tensor:
        seeds = self.generate_seeds(x)
        self._install(seeds)
        try:
            return self.backbone(x)
        finally:
            self._install(None)

    def features(self, x: Tensor) -> Tensor:
        """Task-adapted embedding of ``x`` (what the KNN protocol consumes)."""
        seeds = self.generate_seeds(x)
        self._install(seeds)
        try:
            return self.backbone.features(x)
        finally:
            self._install(None)

    @property
    def embedding_dim(self) -> int:
        return int(self.backbone.embedding_dim)
