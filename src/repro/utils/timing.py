"""Wall-clock timing helper used by the benchmark harnesses."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     __ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start
