"""Extension bench: MetaLoRA on a transformer (Sec. III-E future work).

The paper's discussion points at transformer architectures as the natural
next target.  This bench quantifies the extension: the same Table-1-style
protocol on a TinyViT, comparing static LoRA, prefix tuning (the classic
transformer PEFT), and MetaLoRA (TR) on attention + MLP projections.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PAPER
from repro.data.synthetic import generate_task_data
from repro.data.tasks import TaskDistribution
from repro.eval.protocol import _adapt, _knn_accuracy
from repro.models import FeatureExtractor, MultiHeadSelfAttention, vit_small
from repro.nn.linear import Linear
from repro.peft import MetaLoRAModel, PrefixTuningAttention, attach
from repro.train import Adam, Trainer
from repro.utils.rng import spawn_rngs


@pytest.mark.benchmark(group="extension")
def test_extension_metalora_on_vit(benchmark, scale):
    config = replace(
        PAPER,
        num_tasks=7 if scale == "quick" else 11,
        adapt_episodes=100 if scale == "quick" else 300,
        support_per_task=32 if scale == "quick" else PAPER.support_per_task,
        query_per_task=32 if scale == "quick" else PAPER.query_per_task,
    )

    def run():
        rng_pre, rng_tasks, rng_eval, rng_lora, rng_prefix, rng_meta = spawn_rngs(0, 6)
        tasks = TaskDistribution(
            config.num_tasks, image_size=config.image_size,
            seed=3, noise_level=config.noise_level,
        )
        base_data = generate_task_data(
            tasks.base_task, config.pretrain_samples, config.num_classes,
            config.image_size, rng_pre,
        )
        vit = vit_small(config.num_classes, rng_pre)
        Trainer(vit, Adam(vit.parameters(), lr=config.pretrain_lr)).fit(
            base_data.images, base_data.labels,
            epochs=config.pretrain_epochs, batch_size=config.pretrain_batch,
            rng=rng_pre,
        )
        state = vit.state_dict()

        train_sets = [
            generate_task_data(
                t, config.adapt_samples_per_task, config.num_classes,
                config.image_size, rng_tasks,
            )
            for t in tasks.shifted_tasks()
        ]
        eval_sets = []
        for t in tasks.shifted_tasks():
            support = generate_task_data(
                t, config.support_per_task, config.num_classes, config.image_size, rng_eval
            )
            query = generate_task_data(
                t, config.query_per_task, config.num_classes, config.image_size, rng_eval
            )
            eval_sets.append((support, query))

        def fresh():
            model = vit_small(config.num_classes, rng_pre)
            model.load_state_dict(state)
            return model

        results = {}

        frozen = fresh()
        frozen.freeze()
        results["frozen"] = _knn_accuracy(frozen, eval_sets, 5, config.knn_metric)

        lora = fresh()
        attach(lora, "lora", rank=config.rank, targets=(Linear,), rng=rng_lora)
        _adapt(lora, train_sets, config, rng_lora)
        results["lora"] = _knn_accuracy(lora, eval_sets, 5, config.knn_metric)

        prefix = fresh()
        # Prefix tuning has no rank: attach with an explicit factory.
        attach(
            prefix,
            lambda m: PrefixTuningAttention(m, prefix_length=4, rng=rng_prefix),
            targets=(MultiHeadSelfAttention,),
        )
        _adapt(prefix, train_sets, config, rng_prefix)
        results["prefix"] = _knn_accuracy(prefix, eval_sets, 5, config.knn_metric)

        meta_backbone = fresh()
        meta_result = attach(
            meta_backbone, "meta_tr", rank=config.rank, targets=(Linear,), rng=rng_meta
        )
        extractor_backbone = fresh()
        meta = MetaLoRAModel(
            meta_backbone, FeatureExtractor(extractor_backbone),
            mapping_hidden=config.mapping_hidden, rng=rng_meta, adapters=meta_result,
        )
        _adapt(meta, train_sets, config, rng_meta)
        results["meta_lora_tr"] = _knn_accuracy(meta, eval_sets, 5, config.knn_metric)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'method':<14} {'KNN@5':>7}")
    for name, accuracy in results.items():
        print(f"{name:<14} {100 * accuracy:>6.1f}%")
    assert results["meta_lora_tr"] > results["frozen"]
    assert results["lora"] > results["frozen"]
