"""Prefix tuning (Li & Liang, 2021) for transformer attention.

The second classic PEFT baseline Sec. V lists.  A learned prefix of
``prefix_length`` key/value pairs is prepended to every attention head:
queries attend over ``[prefix ; tokens]``, so the prefix steers attention
without touching any base weight.  Wraps
:class:`~repro.models.tiny_vit.MultiHeadSelfAttention`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd import ops
from repro.autograd.ops import concat
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.models.tiny_vit import MultiHeadSelfAttention
from repro.nn import init
from repro.nn.module import Parameter
from repro.peft.base import Adapter


class PrefixTuningAttention(Adapter):
    """Attention with ``prefix_length`` learned key/value slots per head."""

    def __init__(
        self,
        base: MultiHeadSelfAttention,
        prefix_length: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, MultiHeadSelfAttention):
            raise AdapterError(
                f"PrefixTuningAttention wraps MultiHeadSelfAttention, "
                f"got {type(base).__name__}"
            )
        if prefix_length <= 0:
            raise AdapterError(f"prefix_length must be positive, got {prefix_length}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.prefix_length = prefix_length
        heads, head_dim = base.heads, base.head_dim
        self.prefix_keys = Parameter(
            init.normal(rng, (1, heads, prefix_length, head_dim), std=0.02)
        )
        self.prefix_values = Parameter(
            init.zeros((1, heads, prefix_length, head_dim))
        )

    def forward(self, x: Tensor) -> Tensor:
        base = self.base
        n, t, __ = x.shape
        q = base._split_heads(base.q_proj(x))  # (N, H, T, D)
        k = base._split_heads(base.k_proj(x))
        v = base._split_heads(base.v_proj(x))
        # Broadcast the learned prefix across the batch.
        ones = Tensor(np.ones((n, 1, 1, 1), dtype=np.float32))
        pk = self.prefix_keys * ones  # (N, H, P, D)
        pv = self.prefix_values * ones
        k = concat([pk, k], axis=2)  # (N, H, P+T, D)
        v = concat([pv, v], axis=2)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(base.head_dim))
        weights = ops.softmax(scores, axis=-1)
        attended = weights @ v  # (N, H, T, D)
        merged = attended.transpose(0, 2, 1, 3).reshape(n, t, base.dim)
        return base.out_proj(merged)

    def extra_parameter_count(self) -> int:
        return self.prefix_keys.size + self.prefix_values.size
