"""Property-based tests for the convolution operator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, conv2d

SETTINGS = dict(max_examples=25, deadline=None)
seeds = st.integers(0, 2**31 - 1)


def _conv(x, w, stride=1, padding=0):
    return conv2d(
        Tensor(np.asarray(x, dtype=np.float64)),
        Tensor(np.asarray(w, dtype=np.float64)),
        stride=stride,
        padding=padding,
    ).data


class TestConvProperties:
    @given(seeds)
    @settings(**SETTINGS)
    def test_linearity_in_input(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(1, 2, 6, 6))
        b = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 3, 2, 4))
        assert np.allclose(_conv(a + b, w), _conv(a, w) + _conv(b, w), atol=1e-10)

    @given(seeds)
    @settings(**SETTINGS)
    def test_linearity_in_weight(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 6, 6))
        w1 = rng.normal(size=(3, 3, 2, 4))
        w2 = rng.normal(size=(3, 3, 2, 4))
        assert np.allclose(
            _conv(x, w1 + w2), _conv(x, w1) + _conv(x, w2), atol=1e-10
        )

    @given(seeds, st.integers(1, 3))
    @settings(**SETTINGS)
    def test_translation_equivariance(self, seed, shift):
        """Rolling the (periodically padded) input rolls the output —
        convolution's defining symmetry.  Checked with circular inputs by
        comparing interior regions unaffected by boundary effects."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 1, 12, 12))
        w = rng.normal(size=(3, 3, 1, 1))
        out = _conv(x, w, padding=0)
        shifted_out = _conv(np.roll(x, shift, axis=3), w, padding=0)
        # interior columns of the shifted output equal shifted interior
        interior = out[:, :, :, : out.shape[3] - shift]
        assert np.allclose(shifted_out[:, :, :, shift:], interior, atol=1e-10)

    @given(seeds)
    @settings(**SETTINGS)
    def test_delta_kernel_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 3, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        for c in range(3):
            w[0, 0, c, c] = 1.0
        assert np.allclose(_conv(x, w), x, atol=1e-12)

    @given(seeds, st.integers(1, 2), st.integers(0, 2))
    @settings(**SETTINGS)
    def test_batch_independence(self, seed, stride, padding):
        """conv(batch) row n == conv(single sample n)."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(3, 2, 7, 7))
        w = rng.normal(size=(3, 3, 2, 4))
        full = _conv(x, w, stride=stride, padding=padding)
        for n in range(3):
            single = _conv(x[n : n + 1], w, stride=stride, padding=padding)
            assert np.allclose(full[n : n + 1], single, atol=1e-10)
