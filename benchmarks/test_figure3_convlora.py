"""Bench: **Figure 3** — LoRA and Conv-LoRA as tensor networks.

Figure 3's claim: Conv-LoRA's update ``ΔW = A ×₄ B`` (Eq. 5) *is* a small
convolution followed by a 1×1 channel-recovery convolution.  The bench

1. verifies the identity numerically across a rank sweep,
2. regenerates the parameter/FLOP economics that make the factorization
   worthwhile (the figure's reason to exist), and
3. times the factored path against materializing ΔW and convolving.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d
from repro.nn import Conv2d
from repro.peft import ConvLoRA
from repro.tensornet import TensorNetwork

CHANNELS_IN, CHANNELS_OUT, KERNEL = 8, 16, 3


def _adapter(rank: int, rng) -> tuple[Conv2d, ConvLoRA]:
    base = Conv2d(CHANNELS_IN, CHANNELS_OUT, KERNEL, padding=1, rng=rng)
    adapter = ConvLoRA(base, rank=rank, rng=rng)
    adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape).astype(np.float32)
    return base, adapter


@pytest.mark.benchmark(group="figure3")
def test_figure3_equivalence_rank_sweep(benchmark):
    """Factored forward ≡ base + conv(ΔW) for every rank."""
    rng = np.random.default_rng(0)

    def run() -> float:
        worst = 0.0
        for rank in (1, 2, 4, 8):
            base, adapter = _adapter(rank, rng)
            x = Tensor(rng.normal(size=(2, CHANNELS_IN, 8, 8)).astype(np.float32))
            factored = adapter(x).data
            delta = Tensor(adapter.delta_weight().astype(np.float32))
            materialized = base(x).data + conv2d(x, delta, padding=1).data
            worst = max(worst, float(np.abs(factored - materialized).max()))
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nworst equivalence gap over ranks 1..8: {worst:.2e}")
    assert worst < 1e-3


@pytest.mark.benchmark(group="figure3")
def test_figure3_parameter_economics(benchmark):
    """The table behind the figure: adapter size and FLOPs vs full ΔW."""
    rng = np.random.default_rng(1)
    spatial = 8 * 8
    full_params = KERNEL * KERNEL * CHANNELS_IN * CHANNELS_OUT
    full_flops = 2 * full_params * spatial

    def run():
        rows = []
        for rank in (1, 2, 4, 8):
            __, adapter = _adapter(rank, rng)
            params = adapter.extra_parameter_count()
            # small conv (K·K·I·R) + 1x1 recovery (R·O), per output pixel
            flops = 2 * (KERNEL * KERNEL * CHANNELS_IN * rank + rank * CHANNELS_OUT) * spatial
            rows.append((rank, params, params / full_params, flops / full_flops))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfull ΔW: {full_params} params")
    print(f"{'rank':>4}  {'params':>7}  {'vs full':>8}  {'flops vs full':>13}")
    for rank, params, ratio, flop_ratio in rows:
        print(f"{rank:>4}  {params:>7}  {100 * ratio:>7.1f}%  {100 * flop_ratio:>12.1f}%")
    # Low ranks must be a small fraction of the full update.
    assert rows[0][2] < 0.25


@pytest.mark.benchmark(group="figure3")
def test_figure3_factored_forward_timing(benchmark):
    """Times the factored (small conv + 1×1) forward — the production path."""
    rng = np.random.default_rng(2)
    __, adapter = _adapter(2, rng)
    x = Tensor(rng.normal(size=(8, CHANNELS_IN, 16, 16)).astype(np.float32))
    out = benchmark(lambda: adapter(x))
    assert out.shape == (8, CHANNELS_OUT, 16, 16)


@pytest.mark.benchmark(group="figure3")
def test_figure3_tensor_network_view(benchmark):
    """The figure's left panel: LoRA as a two-node tensor network whose
    contraction is the dense update."""
    rng = np.random.default_rng(3)

    def run():
        net = TensorNetwork()
        a = rng.normal(size=(KERNEL, KERNEL, CHANNELS_IN, 2))
        b = rng.normal(size=(2, CHANNELS_OUT))
        net.add("A", a, ("kh", "kw", "i", "r"))
        net.add("B", b, ("r", "o"))
        return net.contract(), a, b

    delta, a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert delta.shape == (KERNEL, KERNEL, CHANNELS_IN, CHANNELS_OUT)
    assert np.allclose(delta, np.einsum("abir,ro->abio", a, b), atol=1e-10)
