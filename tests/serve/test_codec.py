"""The serving wire codec: round trips, bounds, truncation hardening."""

import asyncio
import io
import socket

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve.codec import (
    _LEN,
    MAX_SEGMENT,
    decode_arrays,
    decode_payload,
    encode_arrays,
    encode_frame,
    encode_payload,
    read_frame,
    read_frame_sync,
)


class TestPayloadRoundTrip:
    CASES = {
        "empty": np.zeros((0,), np.float32),
        "zero_dim": np.asarray(3.5, dtype=np.float64),
        "f32_3d": np.arange(24, dtype=np.float32).reshape(2, 3, 4),
        "int8": np.arange(-5, 5, dtype=np.int8),
        "uint32": np.arange(16, dtype=np.uint32).reshape(4, 4),
        "bool": np.array([True, False, True]),
        "strided_view": np.arange(64, dtype=np.float64).reshape(8, 8)[::2, 1::3],
        "fortran_order": np.asfortranarray(
            np.arange(12, dtype=np.float32).reshape(3, 4)
        ),
        "negative_stride": np.arange(10, dtype=np.float32)[::-1],
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_round_trip_is_lossless(self, name):
        array = self.CASES[name]
        out = decode_payload(encode_payload(array))
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert np.array_equal(out, array)

    def test_none_maps_to_empty_payload(self):
        assert encode_payload(None) == b""
        assert decode_payload(b"") is None

    def test_contiguous_fast_path_is_byte_identical_to_np_save(self):
        # The no-copy path must emit exactly what np.save would, so readers
        # (np.load) and recorded payload digests never see a difference.
        for array in (
            np.arange(60, dtype=np.float32).reshape(3, 4, 5),
            np.zeros((0, 7), np.int64),
            np.asarray(1.25),
        ):
            buffer = io.BytesIO()
            np.save(buffer, array, allow_pickle=False)
            assert encode_payload(array) == buffer.getvalue()


class TestArraysPayload:
    def test_round_trip_preserves_order_and_dotted_names(self, rng):
        arrays = {
            "layers.0.conv.weight": rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
            "bias": rng.normal(size=(4,)),
            "running.mean": np.zeros((0,), np.float64),
        }
        out = decode_arrays(encode_arrays(arrays))
        assert list(out) == list(arrays)  # np.savez could not keep these keys
        for name, array in arrays.items():
            assert np.array_equal(out[name], array)
            assert out[name].dtype == array.dtype

    def test_empty_mapping_round_trips(self):
        assert decode_arrays(encode_arrays({})) == {}

    def test_truncation_anywhere_raises_typed(self, rng):
        blob = encode_arrays({"a": rng.normal(size=(3, 3))})
        for cut in (1, _LEN.size, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ServeError, match="truncated mid-record"):
                decode_arrays(blob[:cut])


class TestFrameBounds:
    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ServeError, match="payload .* exceeds"):
            encode_frame({"op": "serve"}, b"\0" * (MAX_SEGMENT + 1))

    def test_reader_rejects_oversized_prefix_before_allocating(self):
        left, right = socket.socketpair()
        try:
            left.sendall(_LEN.pack(MAX_SEGMENT + 1))
            with pytest.raises(ServeError, match="exceeds"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()

    def test_non_object_header_rejected(self):
        left, right = socket.socketpair()
        try:
            head = b"[1, 2]"
            left.sendall(_LEN.pack(len(head)) + head + _LEN.pack(0))
            with pytest.raises(ServeError, match="JSON object"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()


class TestTruncatedStreams:
    def frame(self):
        return encode_frame({"op": "serve", "id": 3}, b"payload-bytes")

    def test_sync_reader_raises_typed_mid_frame(self):
        frame = self.frame()
        for cut in (2, _LEN.size + 1, len(frame) - 1):
            left, right = socket.socketpair()
            try:
                left.sendall(frame[:cut])
                left.close()
                with pytest.raises(ServeError, match="mid-frame"):
                    read_frame_sync(right)
            finally:
                right.close()

    def test_async_reader_raises_typed_mid_frame(self):
        frame = self.frame()

        async def read(data: bytes):
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader)

        for cut in (2, _LEN.size + 1, len(frame) - 1):
            with pytest.raises(ServeError, match="mid-frame"):
                asyncio.run(read(frame[:cut]))

    def test_async_reader_returns_none_on_clean_eof(self):
        async def read(data: bytes):
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            first = await read_frame(reader)
            return first, await read_frame(reader)

        first, second = asyncio.run(read(self.frame()))
        header, payload = first
        assert header == {"op": "serve", "id": 3}
        assert payload == b"payload-bytes"
        assert second is None  # EOF exactly at a frame boundary
