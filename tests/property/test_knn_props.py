"""Property-based tests for the KNN evaluator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.eval import KNNClassifier

SETTINGS = dict(max_examples=25, deadline=None)
seeds = st.integers(0, 2**31 - 1)


class TestKNNProperties:
    @given(seeds, st.integers(2, 5), st.integers(5, 20))
    @settings(**SETTINGS)
    def test_predictions_are_known_labels(self, seed, classes, n):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 4))
        y = rng.integers(0, classes, n)
        knn = KNNClassifier(metric="euclidean").fit(x, y)
        predictions = knn.predict(rng.normal(size=(7, 4)), k=3)
        assert set(predictions) <= set(y)

    @given(seeds)
    @settings(**SETTINGS)
    def test_translation_invariance_euclidean(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(20, 4))
        y = rng.integers(0, 3, 20)
        q = rng.normal(size=(6, 4))
        shift = rng.normal(size=4) * 10
        a = KNNClassifier(metric="euclidean").fit(x, y).predict(q, k=3)
        b = KNNClassifier(metric="euclidean").fit(x + shift, y).predict(q + shift, k=3)
        assert np.array_equal(a, b)

    @given(seeds, st.floats(0.1, 10.0))
    @settings(**SETTINGS)
    def test_scale_invariance_cosine(self, seed, scale):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(20, 4))
        y = rng.integers(0, 3, 20)
        q = rng.normal(size=(6, 4))
        a = KNNClassifier(metric="cosine").fit(x, y).predict(q, k=3)
        b = KNNClassifier(metric="cosine").fit(x * scale, y).predict(q, k=3)
        assert np.array_equal(a, b)

    @given(seeds)
    @settings(**SETTINGS)
    def test_score_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(15, 3))
        y = rng.integers(0, 2, 15)
        knn = KNNClassifier().fit(x, y)
        score = knn.score(rng.normal(size=(9, 3)), rng.integers(0, 2, 9), k=5)
        assert 0.0 <= score <= 1.0

    @given(seeds)
    @settings(**SETTINGS)
    def test_single_class_always_predicted(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(10, 3))
        y = np.full(10, 7, dtype=np.int64)
        knn = KNNClassifier().fit(x, y)
        assert np.all(knn.predict(rng.normal(size=(5, 3)), k=3) == 7)
