"""Integration: the PEFT deployment path.

Ship the frozen base once; per task, ship a tiny adapter file.  This test
exercises that story end to end: adapt, checkpoint the adapter, rebuild
the model from the shared pretrained state, load the adapter, and verify
the rebuilt model is behaviourally identical.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.eval.embeddings import extract_embeddings
from repro.eval.protocol import Table1Config, build_adapted_model, pretrain_backbone
from repro.data.synthetic import generate_task_data
from repro.data.tasks import TaskDistribution
from repro.peft import load_adapter, save_adapter
from repro.train import Adam, MetaTrainer, Trainer
from repro.utils.rng import new_rng, spawn_rngs


@pytest.fixture(scope="module")
def deployment():
    config = Table1Config().quick()
    rng_pre, rng_tasks, rng_adapt = spawn_rngs(0, 3)
    __, state = pretrain_backbone(config, rng_pre)
    tasks = TaskDistribution(3, image_size=config.image_size, seed=5)
    train_sets = [
        generate_task_data(t, 32, config.num_classes, config.image_size, rng_tasks)
        for t in tasks.shifted_tasks()
    ]
    return config, state, train_sets, rng_adapt


@pytest.mark.parametrize("method", ["lora", "meta_lora_tr"])
def test_adapter_checkpoint_roundtrip_through_fresh_model(
    deployment, tmp_path, method
):
    config, state, train_sets, __ = deployment
    rng = new_rng(42)
    model = build_adapted_model(method, config, state, rng)
    trainer = Trainer(model, Adam(list(model.trainable_parameters()), lr=3e-3))
    MetaTrainer(trainer, train_sets).run(episodes=5, batch_size=8, rng=rng)
    model.eval()

    images = train_sets[0].images[:8]
    reference = extract_embeddings(model, images)
    path = tmp_path / f"{method}.npz"
    save_adapter(model, path)

    # Rebuild: same pretrained state, same adapter-construction seed.
    rebuilt = build_adapted_model(method, config, state, new_rng(42))
    load_adapter(rebuilt, path)
    rebuilt.eval()
    restored = extract_embeddings(rebuilt, images)
    assert np.allclose(reference, restored, atol=1e-5)


def test_checkpoint_is_small(deployment, tmp_path):
    config, state, train_sets, rng = deployment
    model = build_adapted_model("lora", config, state, rng)
    path = tmp_path / "adapter.npz"
    scalars = save_adapter(model, path)
    assert scalars < model.parameter_count() / 2
    assert path.stat().st_size > 0
