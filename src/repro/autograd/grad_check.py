"""Numerical gradient verification.

Every differentiable op in the engine is validated against central finite
differences; the test suite calls :func:`check_gradients` on randomized
inputs for each op.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import GradientError


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    epsilon: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> None:
    """Compare analytic gradients of ``sum(fn(*inputs))`` to finite differences.

    Inputs should be float64 tensors with ``requires_grad=True``.  Raises
    :class:`GradientError` with the offending input index and the worst
    absolute deviation when the check fails.
    """
    for t in inputs:
        t.zero_grad()
    output = fn(*inputs)
    total = output.sum() if output.size > 1 else output
    total.backward()

    for index, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        if t.grad is None:
            raise GradientError(f"input {index} received no gradient")
        numeric = np.zeros_like(t.data)
        flat = t.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for k in range(flat.size):
            original = flat[k]
            flat[k] = original + epsilon
            plus = float(fn(*inputs).data.sum())
            flat[k] = original - epsilon
            minus = float(fn(*inputs).data.sum())
            flat[k] = original
            numeric_flat[k] = (plus - minus) / (2 * epsilon)
        if not np.allclose(t.grad, numeric, atol=atol, rtol=rtol):
            worst = float(np.abs(t.grad - numeric).max())
            raise GradientError(
                f"gradient mismatch on input {index}: max abs deviation {worst:.3e} "
                f"(atol={atol}, rtol={rtol})"
            )
