"""Parameter-efficient fine-tuning: LoRA, Conv-LoRA, Multi-LoRA, MoE-LoRA
and the MetaLoRA CP / Tensor-Ring formats (the paper's contribution).

The typical flow is::

    result = attach(backbone, method="meta_tr", rank=4, rng=rng)
    model = MetaLoRAModel(backbone, extractor, adapters=result)  # meta variants
    ... train adapters ...
    result.merge()    # static methods: bake ΔW in
    result.detach()   # or restore the original layers

Meta variants generate a per-sample seed from input features; static
variants (LoRA / Multi-LoRA) keep fixed adapter weights.  Methods are
looked up in :data:`~repro.peft.api.PEFT_METHODS`.
"""

from repro.peft.base import (
    Adapter,
    get_module,
    iter_adapters,
    merge_adapters,
    set_module,
)
from repro.peft.api import PEFT_METHODS, AttachResult, attach
from repro.peft.lora import LoRALinear
from repro.peft.conv_lora import ConvLoRA
from repro.peft.tt_lora import TTLoRALinear
from repro.peft.bottleneck import BottleneckAdapter
from repro.peft.dora import DoRALinear
from repro.peft.prefix import PrefixTuningAttention
from repro.peft.checkpoint import (
    adapter_state_dict,
    load_adapter,
    load_adapter_state_dict,
    model_digest,
    save_adapter,
    state_digest,
)
from repro.peft.multi_lora import MultiLoRAConv, MultiLoRALinear
from repro.peft.moe_lora import MoELoRALinear
from repro.peft.auto import AdapterPlan, apply_plan, plan_adapters
from repro.peft.mapping_net import MappingNet
from repro.peft.meta_cp import MetaLoRACPConv, MetaLoRACPLinear
from repro.peft.meta_tr import MetaLoRATRConv, MetaLoRATRLinear
from repro.peft.meta_model import MetaLoRAModel
from repro.peft.counts import adapter_parameter_table, count_parameters

__all__ = [
    "Adapter",
    "AdapterPlan",
    "AttachResult",
    "PEFT_METHODS",
    "attach",
    "apply_plan",
    "plan_adapters",
    "BottleneckAdapter",
    "ConvLoRA",
    "DoRALinear",
    "LoRALinear",
    "TTLoRALinear",
    "adapter_state_dict",
    "load_adapter",
    "load_adapter_state_dict",
    "model_digest",
    "save_adapter",
    "state_digest",
    "MappingNet",
    "MetaLoRACPConv",
    "MetaLoRACPLinear",
    "MetaLoRAModel",
    "MetaLoRATRConv",
    "MetaLoRATRLinear",
    "MoELoRALinear",
    "MultiLoRAConv",
    "MultiLoRALinear",
    "PrefixTuningAttention",
    "adapter_parameter_table",
    "count_parameters",
    "get_module",
    "iter_adapters",
    "merge_adapters",
    "set_module",
]
