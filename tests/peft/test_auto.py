"""Tests for automatic PEFT configuration."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import AdapterError
from repro.models import resnet_small
from repro.nn import Linear, ReLU, Sequential
from repro.peft import apply_plan, iter_adapters, plan_adapters
from repro.peft.auto import _added_parameters


def mlp(rng):
    return Sequential(Linear(16, 32, rng=rng), ReLU(), Linear(32, 8, rng=rng))


class TestPlanAdapters:
    def test_respects_budget(self, rng):
        model = mlp(rng)
        plan = plan_adapters(model, budget=500, family="lora")
        assert plan.projected_parameters <= 500
        assert set(plan.ranks) == {"0", "2"}
        assert all(rank >= 1 for rank in plan.ranks.values())

    def test_generous_budget_keeps_spectral_ranks(self, rng):
        model = mlp(rng)
        tight = plan_adapters(model, budget=200, family="lora")
        generous = plan_adapters(model, budget=10_000, family="lora")
        assert sum(generous.ranks.values()) >= sum(tight.ranks.values())

    def test_infeasible_budget_raises(self, rng):
        model = mlp(rng)
        with pytest.raises(AdapterError, match="infeasible"):
            plan_adapters(model, budget=10, family="lora")

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(AdapterError, match="family"):
            plan_adapters(mlp(rng), budget=500, family="qlora")

    def test_skip_layers(self, rng):
        model = mlp(rng)
        plan = plan_adapters(model, budget=500, skip=("2",))
        assert set(plan.ranks) == {"0"}

    def test_resnet_plan_covers_convs_and_head(self, rng):
        model = resnet_small(4, rng)
        plan = plan_adapters(model, budget=5000, family="meta_tr", max_rank=4)
        assert "head" in plan.ranks
        assert any("conv" in name for name in plan.ranks)

    def test_describe(self, rng):
        plan = plan_adapters(mlp(rng), budget=500)
        text = plan.describe()
        assert "family: lora" in text
        assert "rank" in text


class TestAppliedPlan:
    def test_apply_injects_planned_ranks(self, rng):
        model = mlp(rng)
        plan = plan_adapters(model, budget=500, family="lora")
        adapters = apply_plan(model, plan, rng=rng)
        assert set(adapters) == set(plan.ranks)
        for name, adapter in adapters.items():
            assert adapter.rank == plan.ranks[name]

    def test_projection_matches_reality(self, rng):
        model = mlp(rng)
        plan = plan_adapters(model, budget=800, family="lora")
        apply_plan(model, plan, rng=rng)
        actual = model.parameter_count(trainable_only=True)
        assert actual == plan.projected_parameters

    def test_applied_model_forward_works(self, rng):
        model = mlp(rng)
        plan = plan_adapters(model, budget=500, family="meta_cp")
        apply_plan(model, plan, rng=rng)
        out = model(Tensor(rng.normal(size=(3, 16)).astype(np.float32)))
        assert out.shape == (3, 8)

    def test_added_parameter_predictions(self, rng):
        """The planner's cost model matches each adapter's real count."""
        from repro.peft import (
            ConvLoRA,
            LoRALinear,
            MetaLoRACPLinear,
            MetaLoRATRLinear,
        )
        from repro.nn import Conv2d

        linear = Linear(12, 8, rng=rng)
        conv = Conv2d(4, 6, 3, rng=rng)
        checks = [
            ("lora", LoRALinear(linear, 3, rng=rng), linear),
            ("meta_cp", MetaLoRACPLinear(Linear(12, 8, rng=rng), 3, rng=rng), linear),
            ("meta_tr", MetaLoRATRLinear(Linear(12, 8, rng=rng), 3, rng=rng), linear),
            ("lora", ConvLoRA(conv, 3, rng=rng), conv),
        ]
        for family, adapter, layer in checks:
            assert (
                _added_parameters(layer, family, 3)
                == adapter.extra_parameter_count()
            ), (family, type(adapter).__name__)
