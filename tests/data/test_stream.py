"""Tests for the continual task stream."""

import numpy as np
import pytest

from repro.data import TaskDistribution, TaskStream, interpolate_tasks
from repro.errors import DataError


@pytest.fixture
def tasks():
    return TaskDistribution(5, seed=0)


class TestInterpolateTasks:
    def test_endpoints(self, tasks):
        a, b = tasks[1], tasks[2]
        start = interpolate_tasks(a, b, 0.0, task_id=99)
        end = interpolate_tasks(a, b, 1.0, task_id=99)
        assert np.allclose(start.color_vector(), a.color_vector(), atol=1e-6)
        assert np.allclose(end.color_vector(), b.color_vector(), atol=1e-6)
        assert start.shift == a.shift
        assert end.shift == b.shift

    def test_midpoint_direction_unit_norm(self, tasks):
        mid = interpolate_tasks(tasks[1], tasks[2], 0.5, task_id=99)
        assert np.linalg.norm(mid.color_vector()) == pytest.approx(1.0, abs=1e-6)

    def test_tint_linear(self, tasks):
        a, b = tasks[1], tasks[2]
        mid = interpolate_tasks(a, b, 0.5, task_id=99)
        expected = 0.5 * (a.tint_vector() + b.tint_vector())
        assert np.allclose(mid.tint_vector(), expected, atol=1e-6)

    def test_identical_anchors(self, tasks):
        same = interpolate_tasks(tasks[1], tasks[1], 0.5, task_id=99)
        assert np.allclose(same.color_vector(), tasks[1].color_vector(), atol=1e-6)

    def test_weight_validated(self, tasks):
        with pytest.raises(DataError):
            interpolate_tasks(tasks[1], tasks[2], 1.5, task_id=99)


class TestTaskStream:
    def test_yields_requested_count(self, tasks, rng):
        stream = TaskStream(tasks, num_classes=4, samples_per_step=8, rng=rng)
        steps = list(stream.steps(12))
        assert len(steps) == 12
        assert [s.step for s in steps] == list(range(12))

    def test_step_data_shapes(self, tasks, rng):
        stream = TaskStream(tasks, num_classes=4, samples_per_step=8, rng=rng)
        step = next(iter(stream.steps(1)))
        assert step.data.images.shape == (8, 3, 16, 16)
        assert step.data.labels.shape == (8,)

    def test_styles_drift_within_segment(self, tasks, rng):
        stream = TaskStream(
            tasks, num_classes=4, samples_per_step=4, segment_length=6, rng=rng
        )
        steps = list(stream.steps(6))
        directions = [s.task.color_vector() for s in steps]
        # consecutive steps move gradually (small angle), first to last more
        step_angle = np.arccos(np.clip(directions[0] @ directions[1], -1, 1))
        total_angle = np.arccos(np.clip(directions[0] @ directions[-1], -1, 1))
        assert total_angle >= step_angle - 1e-9

    def test_reproducible_given_rng(self, tasks):
        a = TaskStream(tasks, 4, 4, rng=np.random.default_rng(3))
        b = TaskStream(tasks, 4, 4, rng=np.random.default_rng(3))
        sa = list(a.steps(5))
        sb = list(b.steps(5))
        for x, y in zip(sa, sb):
            assert np.allclose(x.data.images, y.data.images)

    def test_validation(self, tasks, rng):
        with pytest.raises(DataError):
            TaskStream(tasks, 4, 4, segment_length=0, rng=rng)
        with pytest.raises(DataError):
            TaskStream(TaskDistribution(2, seed=0), 4, 4, rng=rng)
        stream = TaskStream(tasks, 4, 4, rng=rng)
        with pytest.raises(DataError):
            list(stream.steps(0))
