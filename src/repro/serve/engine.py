"""The embedding service: compiled program + micro-batcher + result cache.

:class:`EmbeddingEngine` wraps a :class:`~repro.serve.compile.CompiledProgram`
behind two entry points:

- :meth:`~EmbeddingEngine.embed` — synchronous bulk extraction.  It chunks
  the input exactly like ``extract_embeddings`` does, so its output is
  bit-identical to the reference path (the acceptance check the serve
  bench pins).
- :meth:`~EmbeddingEngine.submit` — one sample in, a ``Future`` out.  A
  background worker coalesces queued singles into one program run, up to
  ``max_batch`` samples or ``max_delay`` seconds after the first arrival,
  whichever comes first.  An LRU cache keyed by input digest serves
  repeats without touching the program.

Observability: every engine owns a private, always-on
:class:`~repro.obs.metrics.MetricsRegistry` — :meth:`EmbeddingEngine.stats`
is its snapshot in the unified metrics-snapshot schema.  The same events
mirror into the global :data:`repro.obs.OBS` registry when it is
enabled, and the bulk path / micro-batcher open ``serve.request`` /
``serve.batch`` trace spans when :data:`repro.obs.TRACER` is enabled.
Counters: ``serve.requests``, ``serve.batches``, ``serve.batch.size``
(batch-size histogram), ``serve.queue_wait`` (seconds spent queued,
summed per batch), ``serve.cache.hit`` / ``serve.cache.miss`` /
``serve.cache.evict``, ``serve.cache.size`` (occupancy gauge, set at
snapshot time) and ``serve.run`` (program executions, wall seconds +
output bytes).

Program runs are serialized by a lock: the conv workspaces the kernels
share (:mod:`repro.autograd.conv_ops`) are process-global mutable state.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Future

import numpy as np

from repro.errors import ServeError
from repro.nn.module import Module
from repro.obs import OBS, TRACER
from repro.obs.metrics import MetricsRegistry
from repro.serve.compile import CompiledProgram, compile_features


def _ingest(sample: object) -> np.ndarray:
    """Mirror ``Tensor.__init__``'s dtype policy for raw request payloads."""
    array = np.asarray(sample)
    if not np.issubdtype(array.dtype, np.floating):
        array = array.astype(np.float32)
    return array


def _digest(array: np.ndarray) -> bytes:
    """Content digest for the result cache (shape + dtype + bytes)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((array.shape, array.dtype.str)).encode())
    h.update(np.ascontiguousarray(array).tobytes())
    return h.digest()


class _Request:
    __slots__ = ("sample", "key", "future", "enqueued_at")

    def __init__(self, sample: np.ndarray, key: bytes | None, future: Future) -> None:
        self.sample = sample
        self.key = key
        self.future = future
        self.enqueued_at = time.perf_counter()


class EmbeddingEngine:
    """Serve embeddings from a compiled ``features()`` program.

    Parameters
    ----------
    program:
        The compiled program (see :func:`build_engine` for the usual
        model → program path).
    max_batch:
        Largest micro-batch the worker will coalesce.
    max_delay:
        Seconds the worker waits after the first queued sample for more
        to arrive before flushing the batch.
    cache_size:
        LRU result-cache capacity in entries; ``0`` disables caching.
    """

    def __init__(
        self,
        program: CompiledProgram,
        *,
        max_batch: int = 32,
        max_delay: float = 0.002,
        cache_size: int = 256,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ServeError(f"max_delay must be >= 0, got {max_delay}")
        if cache_size < 0:
            raise ServeError(f"cache_size must be >= 0, got {cache_size}")
        self.program = program
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._metrics = MetricsRegistry(enabled=True)
        self._stats_lock = threading.Lock()
        self._run_lock = threading.Lock()
        self._queue: "queue.Queue[_Request]" = queue.Queue()
        self._worker: threading.Thread | None = None
        self._worker_lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False

    # -- metric recording -----------------------------------------------------
    # The private registry feeds stats(); the global OBS registry gets the
    # same events when it is enabled (the old PROFILER contract).  Callers
    # hold no particular lock; the private registry is guarded here.

    def _inc(self, name: str, n: int = 1, *, seconds: float = 0.0) -> None:
        with self._stats_lock:
            self._metrics.inc(name, n, seconds=seconds)
        OBS.enabled and OBS.inc(name, n, seconds=seconds)

    def _hist(self, name: str, value: object) -> None:
        with self._stats_lock:
            self._metrics.hist(name, value)
        OBS.enabled and OBS.hist(name, value)

    def _observe(self, name: str, seconds: float, nbytes: int = 0) -> None:
        with self._stats_lock:
            self._metrics.observe(name, seconds, bytes=nbytes)
        OBS.enabled and OBS.observe(name, seconds, bytes=nbytes)

    # -- synchronous bulk path ------------------------------------------------

    def embed(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Embeddings for ``images``, chunked like ``extract_embeddings``.

        Chunk boundaries match the reference path's, so the result is
        bit-identical to it.  Rows are freshly allocated (the concatenate
        copies), so callers may mutate the result freely.
        """
        if self._closed:
            raise ServeError("embed() on a closed EmbeddingEngine")
        images = _ingest(images)
        with TRACER.span(
            "serve.request", kind="bulk", samples=int(images.shape[0])
        ):
            chunks = []
            for start in range(0, images.shape[0], batch_size):
                chunks.append(self._run(images[start : start + batch_size]))
            return np.concatenate(chunks, axis=0)

    def _run(self, batch: np.ndarray) -> np.ndarray:
        with self._run_lock:
            start = time.perf_counter()
            out = self.program.run(batch)
            self._observe("serve.run", time.perf_counter() - start, out.nbytes)
            return out

    # -- request path: micro-batched singles ----------------------------------

    def submit(self, sample: np.ndarray) -> "Future[np.ndarray]":
        """Queue one sample ``(C, H, W)``; resolves to its embedding row."""
        if self._closed:
            raise ServeError("submit() on a closed EmbeddingEngine")
        sample = _ingest(sample)
        key = _digest(sample) if self.cache_size else None
        future: "Future[np.ndarray]" = Future()
        if key is not None:
            cached = self._cache_get(key)
            if cached is not None:
                self._inc("serve.requests")
                self._inc("serve.cache.hit")
                future.set_result(cached)
                return future
            self._inc("serve.cache.miss")
        self._ensure_worker()
        self._queue.put(_Request(sample, key, future))
        return future

    def _ensure_worker(self) -> None:
        with self._worker_lock:
            if self._worker is not None and self._worker.is_alive():
                return
            self._stop.clear()
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-serve-batcher", daemon=True
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            self._process(self._gather(first))

    def _gather(self, first: _Request) -> list[_Request]:
        """Coalesce queued requests after ``first``, bounded by
        ``max_batch`` and by ``max_delay`` seconds since the first."""
        batch = [first]
        deadline = time.perf_counter() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _process(self, requests: list[_Request]) -> None:
        queued = time.perf_counter()
        with TRACER.span("serve.batch", size=len(requests)):
            try:
                stacked = np.stack([request.sample for request in requests], axis=0)
                out = self._run(stacked)
            except BaseException as exc:  # surface kernel errors to every caller
                for request in requests:
                    request.future.set_exception(exc)
                return
            self._inc("serve.requests", len(requests))
            self._inc("serve.batches")
            self._hist("serve.batch.size", len(requests))
            waited = sum(queued - request.enqueued_at for request in requests)
            self._inc("serve.queue_wait", len(requests), seconds=waited)
        for index, request in enumerate(requests):
            row = np.ascontiguousarray(out[index])
            if request.key is not None:
                self._cache_put(request.key, row)
                row = row.copy()
            request.future.set_result(row)

    # -- LRU result cache -----------------------------------------------------

    def _cache_get(self, key: bytes) -> np.ndarray | None:
        with self._stats_lock:
            row = self._cache.get(key)
            if row is None:
                return None
            self._cache.move_to_end(key)
            return row.copy()

    def _cache_put(self, key: bytes, row: np.ndarray) -> None:
        with self._stats_lock:
            self._cache[key] = row
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self._metrics.inc("serve.cache.evict")
                OBS.enabled and OBS.inc("serve.cache.evict")

    # -- lifecycle ------------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        """The engine's counters in the unified metrics-snapshot schema.

        Keys are the ``serve.*`` metric names; each value carries
        ``kind`` / ``calls`` / ``seconds`` / ``bytes`` plus ``buckets``
        for the batch-size histogram and ``value`` for the
        ``serve.cache.size`` occupancy gauge (set at snapshot time).
        See ``docs/observability.md``.
        """
        with self._stats_lock:
            self._metrics.gauge("serve.cache.size", len(self._cache))
            return self._metrics.snapshot()

    def close(self) -> None:
        """Stop the worker (after draining queued work) and reject new calls."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=10.0)
        while True:  # belt and braces: fail anything the worker left behind
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.future.set_exception(ServeError("EmbeddingEngine closed"))

    def __enter__(self) -> "EmbeddingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def build_engine(
    model_or_result: object,
    *,
    merge: bool = True,
    max_batch: int = 32,
    max_delay: float = 0.002,
    cache_size: int = 256,
) -> EmbeddingEngine:
    """Compile a model (or an ``AttachResult``) into a ready engine.

    Given an :class:`~repro.peft.api.AttachResult` holding static adapters,
    ``merge=True`` (default) bakes the adapter deltas into the base weights
    via ``AttachResult.merge()`` before compiling — the served program then
    contains no adapter ops at all.  Meta adapters cannot merge; they
    compile to their pre-planned einsum fast paths instead.
    """
    model = model_or_result
    serving_model = getattr(model, "serving_model", None)
    if serving_model is not None and not isinstance(model, Module):
        model = serving_model(merge=merge)
    if not isinstance(model, Module):
        raise ServeError(
            f"build_engine expects a Module or AttachResult, got {type(model_or_result).__name__}"
        )
    program = compile_features(model)
    return EmbeddingEngine(
        program, max_batch=max_batch, max_delay=max_delay, cache_size=cache_size
    )


#: One lazily-compiled engine per model, for the flag-gated protocol path
#: (``FLAGS.serve_embeddings``).  Weakly keyed: dropping the model drops
#: its engine.  Weights mutated after compilation are not picked up —
#: call :func:`clear_shared_engines` (or drop the model) to recompile.
_SHARED_ENGINES: "weakref.WeakKeyDictionary[Module, EmbeddingEngine]" = (
    weakref.WeakKeyDictionary()
)


def shared_engine(model: Module) -> EmbeddingEngine:
    """The cached engine for ``model``, compiling on first use."""
    engine = _SHARED_ENGINES.get(model)
    if engine is None:
        engine = _SHARED_ENGINES[model] = build_engine(model, cache_size=0)
    return engine


def clear_shared_engines() -> None:
    """Drop every cached engine (forces recompilation on next use)."""
    _SHARED_ENGINES.clear()
