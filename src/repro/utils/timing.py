"""Wall-clock timing helpers used by the benchmark harnesses."""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     __ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_calls(
    fn: Callable[[], T], repeats: int = 5, warmup: int = 1
) -> tuple[float, T]:
    """Best-of-``repeats`` wall time for ``fn()`` plus its last return value.

    ``warmup`` untimed calls run first so one-time costs (plan-cache
    population, buffer allocation) do not distort the measurement — the
    point of a *cache* bench is steady-state behaviour.  Best-of is used
    rather than mean because scheduler noise only ever adds time.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    result: T = fn()  # at least one warmup call always runs
    for __ in range(warmup - 1):
        result = fn()
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result
