"""Normalization layers: BatchNorm2d (ResNet) and LayerNorm (MLP-Mixer)."""

from __future__ import annotations

import numpy as np

from repro.autograd.ops import sqrt
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of ``(N, C, H, W)``.

    Running statistics are tracked as buffers (exponential moving average)
    and used in eval mode, as required by the frozen-backbone evaluation
    protocol: embeddings must be deterministic at eval time.
    """

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((channels,)))
        self.beta = Parameter(init.zeros((channels,)))
        self.register_buffer("running_mean", np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_var", np.ones(channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ShapeError(
                f"BatchNorm2d({self.channels}) got input shape {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self._buffers["running_mean"] *= 1 - m
            self._buffers["running_mean"] += m * mean.data.reshape(-1)
            self._buffers["running_var"] *= 1 - m
            self._buffers["running_var"] += m * var.data.reshape(-1)
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(1, -1, 1, 1))
            var = Tensor(self._buffers["running_var"].reshape(1, -1, 1, 1))
        x_hat = (x - mean) / sqrt(var + self.eps)
        gamma = self.gamma.reshape(1, self.channels, 1, 1)
        beta = self.beta.reshape(1, self.channels, 1, 1)
        return x_hat * gamma + beta


class LayerNorm(Module):
    """Layer normalization over the last axis (token/channel mixing norm)."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(init.ones((features,)))
        self.beta = Parameter(init.zeros((features,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.features:
            raise ShapeError(f"LayerNorm({self.features}) got input shape {x.shape}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        x_hat = (x - mean) / sqrt(var + self.eps)
        return x_hat * self.gamma + self.beta
