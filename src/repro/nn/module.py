"""The :class:`Module` base class: parameter registration, freezing, state.

Mirrors the subset of ``torch.nn.Module`` semantics the reproduction needs:
attribute assignment auto-registers parameters and child modules, state
dicts are flat ``name -> array`` mappings, and ``freeze()`` marks a subtree
non-trainable — the mechanism by which PEFT keeps the backbone fixed while
adapters train.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(np.asarray(data), requires_grad=True)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registration -------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child under a dynamic name (used by Sequential)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the whole subtree."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for __, param in self.named_parameters():
            yield param

    def trainable_parameters(self) -> Iterator[Parameter]:
        """Parameters that currently require gradients."""
        for param in self.parameters():
            if param.requires_grad:
                yield param

    def modules(self) -> Iterator["Module"]:
        """Yield self and all descendant modules (pre-order)."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix + name + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- counting ----------------------------------------------------------------

    def parameter_count(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the subtree."""
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return sum(p.size for p in params)

    # -- training state -------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout / batchnorm)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def freeze(self) -> "Module":
        """Stop all parameters in the subtree from receiving gradients."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter and buffer, keyed by dotted name."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, module in self.named_modules():
            for buf_name, buffer in getattr(module, "_buffers", {}).items():
                key = f"{name}.{buf_name}" if name else buf_name
                state[key] = buffer.copy()
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict`; shapes must match exactly."""
        own: dict[str, np.ndarray | Parameter] = dict(self.named_parameters())
        buffers: dict[str, tuple[Module, str]] = {}
        for name, module in self.named_modules():
            for buf_name in getattr(module, "_buffers", {}):
                key = f"{name}.{buf_name}" if name else buf_name
                buffers[key] = (module, buf_name)
        missing = (set(own) | set(buffers)) - set(state)
        unexpected = set(state) - set(own) - set(buffers)
        if missing or unexpected:
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"parameter {name!r}: expected shape {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data[...] = value
        for key, (module, buf_name) in buffers.items():
            value = np.asarray(state[key])
            module._buffers[buf_name][...] = value

    # -- buffers (non-learnable state, e.g. batchnorm running stats) -------------------

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        if not hasattr(self, "_buffers"):
            object.__setattr__(self, "_buffers", {})
        self._buffers[name] = np.asarray(value)

    # -- forward ------------------------------------------------------------------------

    def forward(self, *inputs: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *inputs: Tensor) -> Tensor:
        return self.forward(*inputs)

    def __repr__(self) -> str:
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"


class ModuleList(Module):
    """A list of child modules, registered so parameters are discovered."""

    def __init__(self, modules: Sequence[Module] = ()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


@contextlib.contextmanager
def eval_mode(module: Module) -> Iterator[Module]:
    """Temporarily put ``module`` in eval mode, restoring the prior mode.

    ``Module.train`` flattens the subtree to a single mode, so restoring
    the root's flag is exact for the usual case where modes are set at the
    root (what ``Trainer`` and the evaluation protocol do).
    """
    was_training = module.training
    module.eval()
    try:
        yield module
    finally:
        module.train(was_training)
