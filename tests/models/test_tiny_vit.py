"""Tests for the TinyViT transformer extension (Sec. III-E future work)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ShapeError
from repro.models import MultiHeadSelfAttention, TinyViT, TransformerBlock, vit_small
from repro.nn import Linear
from repro.peft import MetaLoRACPLinear, MetaLoRATRLinear, attach


def batch(rng, n=4, size=16):
    return Tensor(rng.normal(size=(n, 3, size, size)).astype(np.float32))


class TestAttention:
    def test_output_shape(self, rng):
        attention = MultiHeadSelfAttention(32, 4, rng=rng)
        x = Tensor(rng.normal(size=(2, 9, 32)).astype(np.float32))
        assert attention(x).shape == (2, 9, 32)

    def test_heads_must_divide_dim(self, rng):
        with pytest.raises(ShapeError):
            MultiHeadSelfAttention(30, 4, rng=rng)

    def test_input_validation(self, rng):
        attention = MultiHeadSelfAttention(32, 4, rng=rng)
        with pytest.raises(ShapeError):
            attention(Tensor(np.zeros((2, 9, 16), dtype=np.float32)))

    def test_permutation_equivariance(self, rng):
        """Self-attention without position info commutes with token shuffles."""
        attention = MultiHeadSelfAttention(16, 2, rng=rng)
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        perm = rng.permutation(6)
        out = attention(Tensor(x)).data
        out_permuted = attention(Tensor(x[:, perm])).data
        assert np.allclose(out[:, perm], out_permuted, atol=1e-4)

    def test_gradients_reach_projections(self, rng):
        attention = MultiHeadSelfAttention(16, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32))
        attention(x).sum().backward()
        for proj in (attention.q_proj, attention.k_proj, attention.v_proj, attention.out_proj):
            assert proj.weight.grad is not None


class TestTinyViT:
    def test_forward_shape(self, rng):
        model = vit_small(5, rng)
        assert model(batch(rng)).shape == (4, 5)

    def test_features_shape(self, rng):
        model = vit_small(5, rng)
        assert model.features(batch(rng)).shape == (4, model.embedding_dim)

    def test_gradients_reach_all_parameters(self, rng):
        model = vit_small(3, rng)
        model(batch(rng)).sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_position_embedding_breaks_permutation_invariance(self, rng):
        model = vit_small(3, rng)
        x = batch(rng, n=1)
        feats = model.features(x).data
        # rolling the image changes patches -> different features
        rolled = Tensor(np.roll(x.data, 4, axis=3))
        assert not np.allclose(feats, model.features(rolled).data, atol=1e-3)

    def test_rejects_indivisible_patches(self, rng):
        with pytest.raises(ShapeError):
            TinyViT(image_size=10, patch_size=4, rng=rng)

    def test_rejects_wrong_input(self, rng):
        model = vit_small(3, rng, image_size=16)
        with pytest.raises(ShapeError):
            model(batch(rng, size=8))

    def test_transformer_block_residual_structure(self, rng):
        block = TransformerBlock(16, 2, 32, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32))
        assert block(x).shape == (2, 5, 16)


class TestMetaLoRAOnTransformer:
    """The Sec. III-E extension: MetaLoRA attaches to attention projections."""

    @pytest.mark.parametrize("adapter_cls", [MetaLoRACPLinear, MetaLoRATRLinear])
    def test_adapters_attach_to_all_projections(self, rng, adapter_cls):
        model = vit_small(4, rng)
        result = attach(model, lambda m: adapter_cls(m, 2, rng=rng), targets=(Linear,))
        projection_names = [n for n in result.adapters if "proj" in n]
        assert len(projection_names) == 4 * 2  # q/k/v/out per block, 2 blocks
        out = model(batch(rng))
        assert out.shape == (4, 4)

    def test_full_meta_model_on_vit(self, rng):
        from repro.models import FeatureExtractor
        from repro.peft import MetaLoRAModel

        model = vit_small(4, rng)
        result = attach(model, "meta_tr", rank=2, targets=(Linear,), rng=rng)
        extractor = FeatureExtractor(vit_small(4, np.random.default_rng(5)))
        meta = MetaLoRAModel(model, extractor, rng=rng, adapters=result)
        out = meta(batch(rng))
        out.sum().backward()
        assert meta.trunk.weight.grad is not None
