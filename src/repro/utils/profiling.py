"""Lightweight per-op profiling registry.

The autograd hot paths (einsum, conv2d) and the caches in front of them
report into a process-wide :class:`Profiler`: per-op call counts,
cumulative wall-time, and bytes allocated for op outputs.  Profiling is
off by default and costs a single attribute check per op when disabled,
so instrumentation can stay in the hot paths permanently.

Typical use (what ``repro bench`` does)::

    from repro.utils.profiling import PROFILER

    PROFILER.enable()
    ... run workload ...
    for name, stats in PROFILER.snapshot().items():
        print(name, stats.calls, stats.seconds, stats.bytes)
    PROFILER.disable()

Counter names are dotted: ``einsum.forward``, ``einsum.backward``,
``conv2d.forward``, ``conv2d.backward``, ``einsum.plan_cache.hit`` /
``.miss``, ``conv2d.patches_cache.hit`` / ``.miss``, plus the backward
sweep counters ``backward.sweep`` (one call per ``backward()``, wall
seconds), ``backward.inplace_accum`` (in-place gradient accumulations)
and ``backward.released`` (graph nodes freed under the
``backward_release`` memory diet).  The experiment runtime adds its
fault-tolerance counters: ``retry.attempt`` / ``retry.backoff`` /
``retry.recovered`` / ``retry.exhausted`` (the pool's retry machinery),
``timeout.cell`` (cells killed by the per-cell soft timeout) and
``faults.crash`` / ``faults.stall`` (injected ``REPRO_FAULTS`` test
faults that fired).  The serving engine (``repro.serve``) emits
``serve.requests`` / ``serve.batches`` / ``serve.batch.size.<n>`` (a
batch-size histogram), ``serve.queue_wait`` (seconds requests spent
queued), ``serve.cache.hit`` / ``serve.cache.miss`` /
``serve.cache.evict`` (its LRU result cache) and ``serve.run``
(compiled-program executions, wall seconds + output bytes).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterator, TypeVar

F = TypeVar("F", bound=Callable)


@dataclass
class OpStats:
    """Accumulated counters for one named operation."""

    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0

    def merge(self, seconds: float, nbytes: int) -> None:
        self.calls += 1
        self.seconds += seconds
        self.bytes += nbytes


@dataclass
class Profiler:
    """Process-wide registry of :class:`OpStats`, keyed by op name."""

    enabled: bool = False
    _stats: dict[str, OpStats] = field(default_factory=dict)

    def enable(self) -> "Profiler":
        self.enabled = True
        return self

    def disable(self) -> "Profiler":
        self.enabled = False
        return self

    def reset(self) -> None:
        self._stats.clear()

    def record(self, name: str, seconds: float, nbytes: int = 0) -> None:
        """Add one completed call to ``name``'s counters (no-op if disabled)."""
        if not self.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = OpStats()
        stats.merge(seconds, nbytes)

    def bump(self, name: str, nbytes: int = 0) -> None:
        """Count an event with no duration (cache hits, allocations)."""
        self.record(name, 0.0, nbytes)

    def add(self, name: str, calls: int, seconds: float = 0.0, nbytes: int = 0) -> None:
        """Fold ``calls`` pre-counted events into ``name`` at once.

        Hot loops (e.g. the backward sweep) count locally and report once,
        so the profiler costs one call per sweep instead of one per node.
        """
        if not self.enabled or calls <= 0:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = OpStats()
        stats.calls += calls
        stats.seconds += seconds
        stats.bytes += nbytes

    def merge_counters(self, counters: dict[str, dict[str, float]]) -> None:
        """Fold an :meth:`as_dict`-style snapshot into this profiler.

        The parallel experiment runtime uses this to aggregate per-worker
        profiler snapshots into the parent process.  Works even when the
        profiler is disabled, since the events were already gated by the
        worker's own profiler.
        """
        for name, stats in counters.items():
            own = self._stats.get(name)
            if own is None:
                own = self._stats[name] = OpStats()
            own.calls += int(stats.get("calls", 0))
            own.seconds += float(stats.get("seconds", 0.0))
            own.bytes += int(stats.get("bytes", 0))

    @contextlib.contextmanager
    def track(self, name: str, nbytes: int = 0) -> Iterator[None]:
        """Time the block and record it under ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start, nbytes)

    def snapshot(self) -> dict[str, OpStats]:
        """A copy of the current counters (safe to hold across resets)."""
        return {
            name: OpStats(stats.calls, stats.seconds, stats.bytes)
            for name, stats in sorted(self._stats.items())
        }

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-friendly view of the counters."""
        return {name: asdict(stats) for name, stats in self.snapshot().items()}


#: The process-wide profiler every instrumented op reports into.
PROFILER = Profiler()


@contextlib.contextmanager
def profiled() -> Iterator[Profiler]:
    """Enable the global profiler for a block, restoring state after.

    Counters accumulated before the block are preserved; use
    ``PROFILER.reset()`` first for a clean window.
    """
    previous = PROFILER.enabled
    PROFILER.enabled = True
    try:
        yield PROFILER
    finally:
        PROFILER.enabled = previous
