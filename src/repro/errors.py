"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ShapeError(ReproError):
    """An operation received tensors whose shapes are incompatible."""


class GradientError(ReproError):
    """Backward pass failed or was requested on a non-differentiable graph."""


class DecompositionError(ReproError):
    """A tensor decomposition (CP / TR / Tucker) could not be computed."""


class AdapterError(ReproError):
    """A PEFT adapter was attached, merged or configured incorrectly."""


class ConfigError(ReproError):
    """An experiment configuration is inconsistent or out of range."""


class DataError(ReproError):
    """A dataset or task specification is invalid."""


class TrainingError(ReproError):
    """The training loop encountered an unrecoverable condition."""


class EvaluationError(ReproError):
    """An evaluation protocol was invoked with invalid inputs."""


class WorkerError(ReproError):
    """One or more experiment cells failed inside the parallel runtime.

    Raised in the *parent* process after the pool has drained: per-cell
    failures are collected as structured records (exception type, message
    and remote traceback), never left to hang or kill the pool.
    """
