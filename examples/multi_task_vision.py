"""Multi-task vision adaptation: a miniature Table I, method by method.

The scenario the paper's introduction motivates: one pre-trained backbone,
many downstream tasks with shifted input statistics, and a fixed adapter
budget.  Compares every method in the library — including the MoE-LoRA
extension — on the same task mixture and prints a Table-I-style summary.

Run:  python examples/multi_task_vision.py            (ResNet, ~3 min)
      python examples/multi_task_vision.py mixer      (MLP-Mixer)
"""

import sys
from dataclasses import replace

from repro.config import QUICK
from repro.eval.protocol import format_table1, run_table1


def main() -> None:
    backbone = sys.argv[1] if len(sys.argv) > 1 else "resnet"
    config = replace(
        QUICK,
        backbone=backbone,
        num_tasks=5,
        adapt_episodes=80,
        support_per_task=40,
        query_per_task=40,
    )
    print(f"running the Table I protocol on {backbone} (miniature scale) ...")
    rows = run_table1(config, seed=0)
    print()
    print(format_table1([rows], config))
    print(
        "\n(The benchmark harness in benchmarks/test_table1.py runs the "
        "full-scale version over multiple seeds with significance tests.)"
    )


if __name__ == "__main__":
    main()
