"""Robustness-under-shift evaluation protocol.

Extends the Table I claim to a new axis: how gracefully does each
adaptation method degrade when the *inputs* shift — blur, noise,
occlusion, photometric drift, retina-warp — rather than the task?  The
protocol reuses the Table I pipeline end to end:

1. **Train** exactly as Table I does: per ``(seed, method)``, pretrain
   the backbone (:func:`~repro.eval.protocol.prepare_table1_seed`) and
   episodically adapt the method's model
   (:func:`~repro.eval.protocol.train_table1_model`) on *clean* data.
   All randomness is key-derived, so the trained weights are
   bit-identical to the Table I cell's.
2. **Evaluate under shift**: per ``(corruption, severity)`` cell, corrupt
   the *query* split of every evaluation task (support stays clean — the
   deployment regime where references were collected before the shift)
   with the cell's child generator
   (:func:`repro.data.corruptions.corruption_rng`) and score the same
   KNN protocol.  Severity 0 applies no corruption at all (the corruption
   layer returns the untouched arrays), so severity-0 cells are
   bit-identical to the clean Table I evaluation — the pin the benchmark
   asserts.
3. **Summarize**: per-method degradation slope (least squares of accuracy
   against severity) and the MetaLoRA-vs-static-LoRA delta on corrupted
   cells, the headline number.

The streaming variant (:func:`run_robustness_stream`) drives a
:class:`~repro.data.stream.TaskStream` through a drifting corruption
schedule and measures per-step re-fit latency and accuracy — the
"dynamic task requirements" regime of the paper's abstract with input
shift layered on top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.corruptions import (
    CORRUPTIONS,
    DEFAULT_CORRUPTIONS,
    SEVERITIES,
    corruption_rng,
    get_corruption,
)
from repro.data.stream import TaskStream
from repro.data.synthetic import SyntheticTaskData
from repro.data.tasks import TaskDistribution
from repro.errors import ConfigError
from repro.eval.embeddings import extract_embeddings
from repro.eval.knn import KNNClassifier
from repro.eval.protocol import (
    Table1Config,
    Table1SeedContext,
    build_adapted_model,
    method_rng,
    prepare_table1_seed,
    train_table1_model,
)
from repro.nn.module import Module


@dataclass
class RobustnessConfig:
    """Knobs of the robustness grid; wraps a full :class:`Table1Config`.

    The nested ``table1`` config pins the training half bit-identically to
    the clean protocol; this layer only adds the shift axes and the
    streaming-drift schedule.
    """

    table1: Table1Config = field(default_factory=Table1Config)
    #: Shift-type axis (names from :data:`repro.data.corruptions.CORRUPTIONS`).
    corruptions: tuple[str, ...] = DEFAULT_CORRUPTIONS
    #: Severity axis; keep 0 first so every run carries its clean pin.
    severities: tuple[int, ...] = (0, 1, 3, 5)
    #: Steps of the streaming-drift variant.
    stream_steps: int = 12
    #: Methods the streaming variant compares (subset of table1.methods).
    stream_methods: tuple[str, ...] = ("lora", "meta_lora_cp")

    def __post_init__(self) -> None:
        unknown = set(self.corruptions) - set(CORRUPTIONS)
        if unknown:
            raise ConfigError(f"unknown corruptions: {sorted(unknown)}")
        if not self.corruptions:
            raise ConfigError("need at least one corruption")
        bad = [s for s in self.severities if s not in SEVERITIES]
        if bad:
            raise ConfigError(
                f"severities must be drawn from {SEVERITIES}, got {bad}"
            )
        if len(set(self.severities)) != len(self.severities):
            raise ConfigError(f"duplicate severities: {self.severities}")
        if not self.severities:
            raise ConfigError("need at least one severity")
        if self.stream_steps < 2:
            raise ConfigError("stream_steps must be at least 2")
        missing = set(self.stream_methods) - set(self.table1.methods)
        if missing:
            raise ConfigError(
                f"stream_methods not in table1.methods: {sorted(missing)}"
            )

    def quick(self) -> "RobustnessConfig":
        """A miniature copy for integration tests."""
        return replace(self, table1=self.table1.quick())


@dataclass
class RobustnessCell:
    """One grid cell: a method's accuracies under one shift."""

    method: str
    corruption: str
    severity: int
    accuracy_by_k: dict[int, float] = field(default_factory=dict)


@dataclass
class RobustnessSeedContext:
    """Shared state of every corruption cell of one ``(seed, method)``.

    Carries the trained adapter weights (``trained_state``) next to the
    Table I seed context they were trained in; cells rebuild the model
    from both and only pay for evaluation.  ``table1.train_sets`` is
    emptied before shipping — corruption cells never train.
    """

    seed: int
    method: str
    table1: Table1SeedContext
    trained_state: dict[str, np.ndarray]


def prepare_robustness_context(
    config: RobustnessConfig, seed: int, method: str
) -> RobustnessSeedContext:
    """Pretrain, adapt, and freeze everything one ``(seed, method)`` needs.

    The training path is byte-for-byte the Table I one, so
    ``trained_state`` is exactly the weights the clean protocol would
    evaluate.
    """
    context = prepare_table1_seed(config.table1, seed)
    model = train_table1_model(config.table1, context, method)
    slim = Table1SeedContext(
        seed=context.seed,
        state=context.state,
        extractor_state=context.extractor_state,
        train_sets=[],
        eval_sets=context.eval_sets,
    )
    return RobustnessSeedContext(
        seed=seed, method=method, table1=slim, trained_state=model.state_dict()
    )


def _rebuild_model(config: RobustnessConfig, context: RobustnessSeedContext) -> Module:
    """The trained model, reconstructed exactly from the context.

    ``build_adapted_model`` with the cell-keyed RNG recreates the module
    tree (including adapter wiring); loading ``trained_state`` then
    overwrites every parameter and buffer with the trained values, so the
    rebuilt model is bit-identical to the one training returned.
    """
    rng = method_rng(config.table1, context.seed, context.method)
    model = build_adapted_model(
        context.method,
        config.table1,
        context.table1.state,
        rng,
        extractor_state=context.table1.extractor_state,
    )
    model.load_state_dict(context.trained_state)
    model.eval()
    return model


def corrupt_eval_sets(
    eval_sets: list[tuple[SyntheticTaskData, SyntheticTaskData]],
    corruption: str,
    severity: int,
    rng: np.random.Generator,
) -> list[tuple[SyntheticTaskData, SyntheticTaskData]]:
    """Corrupt every query split; support splits stay clean.

    At severity 0 the corruption layer returns the untouched arrays, so
    the result is structurally identical to the input — the severity-0
    bit-identity pin.
    """
    transform = get_corruption(corruption, severity)
    corrupted = []
    for support, query in eval_sets:
        images = transform.apply(query.images, rng)
        corrupted.append((support, replace(query, images=images)))
    return corrupted


def run_robustness_cell(
    config: RobustnessConfig,
    context: RobustnessSeedContext,
    corruption: str,
    severity: int,
) -> RobustnessCell:
    """One grid cell: score the trained adapter under one shift.

    All cell randomness comes from
    ``corruption_rng(seed, corruption, severity)`` — independent of every
    training stream and of execution order, so cells are bit-identical
    across processes, resumes, and interleavings.
    """
    model = _rebuild_model(config, context)
    rng = corruption_rng(context.seed, corruption, severity)
    eval_sets = corrupt_eval_sets(
        context.table1.eval_sets, corruption, severity, rng
    )
    cell = RobustnessCell(
        method=context.method, corruption=corruption, severity=int(severity)
    )
    table1 = config.table1
    for k in table1.ks:
        scores = []
        for support, query in eval_sets:
            knn = KNNClassifier(metric=table1.knn_metric).fit(
                extract_embeddings(model, support.images), support.labels
            )
            scores.append(
                knn.score(extract_embeddings(model, query.images), query.labels, k)
            )
        cell.accuracy_by_k[k] = float(np.mean(scores))
    return cell


def degradation_slope(severities: list[int], accuracies: list[float]) -> float:
    """Least-squares slope of accuracy against severity.

    The per-method degradation rate: accuracy lost per severity rung
    (negative = degrades).  Needs at least two distinct severities.
    """
    if len(severities) != len(accuracies) or len(severities) < 2:
        raise ConfigError(
            "degradation_slope needs matching lists of at least two points"
        )
    xs = np.asarray(severities, dtype=np.float64)
    ys = np.asarray(accuracies, dtype=np.float64)
    if np.ptp(xs) == 0:
        raise ConfigError("degradation_slope needs at least two severities")
    xc = xs - xs.mean()
    return float((xc @ (ys - ys.mean())) / (xc @ xc))


def format_robustness_grid(
    config: RobustnessConfig, seeds: tuple[int, ...], cells: dict
) -> str:
    """Render mean accuracies per (method, corruption, severity).

    ``cells`` maps ``(seed, method, corruption, severity)`` to
    :class:`RobustnessCell`.  Tolerates partial grids (the
    graceful-degradation path of ``repro robustness``): missing cells
    render as ``--``, and a per-method degradation slope is shown when
    every severity has data.
    """
    table1 = config.table1
    severities = list(config.severities)
    lines = [
        f"Backbone: {table1.backbone}   (mean over {len(seeds)} seed(s), "
        f"K={list(table1.ks)})"
    ]
    for corruption in config.corruptions:
        lines.append(f"\n{corruption}:")
        lines.append(
            f"{'method':<14}" + "".join(f"  sev {s:<5}" for s in severities)
            + "  slope"
        )
        for method in table1.methods:
            row = [f"{method:<14}"]
            means = []
            for severity in severities:
                values = [
                    cells[(seed, method, corruption, severity)].accuracy_by_k[k]
                    for seed in seeds
                    for k in table1.ks
                    if (seed, method, corruption, severity) in cells
                ]
                if values:
                    mean = float(np.mean(values))
                    means.append(mean)
                    row.append(f"  {100 * mean:6.2f}%")
                else:
                    means.append(None)
                    row.append(f"  {'--':>7}")
            if None not in means and len(set(severities)) >= 2:
                slope = degradation_slope(severities, means)
                row.append(f"  {slope:+.4f}")
            lines.append("".join(row))
    return "\n".join(lines)


def run_robustness_stream(config: RobustnessConfig, seed: int) -> dict:
    """The streaming-drift variant: per-step re-fit latency and accuracy.

    Drives a :class:`~repro.data.stream.TaskStream` (task styles drift
    between anchors) through a corruption schedule that drifts with it —
    severity cycles through ``config.severities`` within each corruption,
    corruptions rotate as the stream progresses.  At every step the
    method *re-fits* its KNN references on the step's (corrupted) support
    split — the adaptation act — and is scored on the (corrupted) query
    split; the re-fit wall-clock (embed support + fit) is measured.

    Accuracies are deterministic functions of ``(config, seed)``;
    latencies are wall-clock measurements and vary run to run.
    """
    table1 = config.table1
    context = prepare_table1_seed(table1, seed)

    stream_rng = corruption_rng(seed, "__stream__", 0)
    tasks = TaskDistribution(
        table1.num_tasks,
        image_size=table1.image_size,
        seed=int(stream_rng.integers(2**31)),
        noise_level=table1.noise_level,
    )
    samples = table1.support_per_task + table1.query_per_task
    stream = TaskStream(
        tasks, table1.num_classes, samples, segment_length=4, rng=stream_rng
    )
    steps = list(stream.steps(config.stream_steps))

    severities = tuple(config.severities)
    corruptions = tuple(config.corruptions)
    schedule = []
    for step in steps:
        corruption = corruptions[(step.step // len(severities)) % len(corruptions)]
        severity = severities[step.step % len(severities)]
        schedule.append((corruption, int(severity)))

    k = table1.ks[0]
    methods: dict[str, dict] = {}
    for method in config.stream_methods:
        model = train_table1_model(table1, context, method)
        step_records = []
        for step, (corruption, severity) in zip(steps, schedule):
            transform = get_corruption(corruption, severity)
            rng = corruption_rng(seed, f"stream{step.step}:{corruption}", severity)
            support, query = step.data.split(table1.support_per_task)
            support_images = transform.apply(support.images, rng)
            query_images = transform.apply(query.images, rng)
            start = time.perf_counter()
            knn = KNNClassifier(metric=table1.knn_metric).fit(
                extract_embeddings(model, support_images), support.labels
            )
            refit_latency = time.perf_counter() - start
            accuracy = knn.score(
                extract_embeddings(model, query_images), query.labels, k
            )
            step_records.append(
                {
                    "step": step.step,
                    "corruption": corruption,
                    "severity": severity,
                    "accuracy": float(accuracy),
                    "refit_latency_s": float(refit_latency),
                }
            )
        methods[method] = {
            "steps": step_records,
            "mean_accuracy": float(
                np.mean([r["accuracy"] for r in step_records])
            ),
            "mean_refit_latency_s": float(
                np.mean([r["refit_latency_s"] for r in step_records])
            ),
        }
    return {
        "seed": int(seed),
        "steps": int(config.stream_steps),
        "k": int(k),
        "methods": methods,
    }
