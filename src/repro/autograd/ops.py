"""Differentiable functional operations.

The most important op here is :func:`einsum`: every tensor-network
contraction in the library (CP, Tensor Ring, Conv-LoRA, the MetaLoRA
formats) is expressed as an einsum, so making einsum differentiable makes
the whole tensor-network layer differentiable for free.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.tensor import GradFn, Tensor, grad_enabled, unbroadcast
from repro.errors import ShapeError

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


# -- elementwise -------------------------------------------------------------


def exp(x: Tensor) -> Tensor:
    out = np.exp(x.data)
    return Tensor._result(out, (x,), (lambda g: g * out,))


def log(x: Tensor) -> Tensor:
    data = x.data
    return Tensor._result(np.log(data), (x,), (lambda g: g / data,))


def sqrt(x: Tensor) -> Tensor:
    out = np.sqrt(x.data)
    return Tensor._result(out, (x,), (lambda g: g * 0.5 / out,))


def tanh(x: Tensor) -> Tensor:
    out = np.tanh(x.data)
    return Tensor._result(out, (x,), (lambda g: g * (1.0 - out**2),))


def sigmoid(x: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-x.data))
    return Tensor._result(out, (x,), (lambda g: g * out * (1.0 - out),))


def relu(x: Tensor) -> Tensor:
    data = x.data
    out = np.maximum(data, 0.0)
    return Tensor._result(out, (x,), (lambda g: g * (data > 0),))


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in MLP-Mixer)."""
    data = x.data
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * data**3)
    t = np.tanh(inner)
    out = 0.5 * data * (1.0 + t)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * data**2)
        return g * (0.5 * (1.0 + t) + 0.5 * data * (1.0 - t**2) * d_inner)

    return Tensor._result(out, (x,), (grad_fn,))


def maximum(x: Tensor, y: Tensor) -> Tensor:
    """Elementwise max; at ties the gradient is split evenly."""
    out = np.maximum(x.data, y.data)
    x_wins = (x.data > y.data).astype(x.data.dtype)
    tie = (x.data == y.data).astype(x.data.dtype) * 0.5
    wx, wy = x_wins + tie, (1.0 - x_wins) - tie

    return Tensor._result(
        out,
        (x, y),
        (
            lambda g: unbroadcast(g * wx, x.shape),
            lambda g: unbroadcast(g * wy, y.shape),
        ),
    )


def where(condition: np.ndarray, x: Tensor, y: Tensor) -> Tensor:
    """Select from ``x`` where ``condition`` else ``y`` (condition is constant)."""
    cond = np.asarray(condition, dtype=bool)
    out = np.where(cond, x.data, y.data)
    return Tensor._result(
        out,
        (x, y),
        (
            lambda g: unbroadcast(g * cond, x.shape),
            lambda g: unbroadcast(g * ~cond, y.shape),
        ),
    )


# -- softmax family -----------------------------------------------------------


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return Tensor._result(out, (x,), (grad_fn,))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    soft = np.exp(out)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._result(out, (x,), (grad_fn,))


# -- structural ----------------------------------------------------------------


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis``; gradient splits back to each input."""
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_grad(i: int) -> GradFn:
        def grad_fn(g: np.ndarray) -> np.ndarray:
            index = [slice(None)] * g.ndim
            index[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            return g[tuple(index)]

        return grad_fn

    return Tensor._result(
        out, tuple(tensors), tuple(make_grad(i) for i in range(len(tensors)))
    )


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack along a new axis; gradient indexes back per input."""
    if not tensors:
        raise ShapeError("stack requires at least one tensor")
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_grad(i: int) -> GradFn:
        def grad_fn(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return grad_fn

    return Tensor._result(
        out, tuple(tensors), tuple(make_grad(i) for i in range(len(tensors)))
    )


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept units by 1/(1-rate) during training."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out = x.data * mask
    return Tensor._result(out, (x,), (lambda g: g * mask,))


# -- einsum ---------------------------------------------------------------------


def _parse_einsum_spec(spec: str, operand_count: int) -> tuple[list[str], str]:
    if "..." in spec:
        raise ShapeError("ellipsis einsum specs are not supported")
    if "->" not in spec:
        raise ShapeError("einsum spec must be explicit (contain '->')")
    inputs_part, output = spec.split("->")
    inputs = [part.strip() for part in inputs_part.split(",")]
    for labels in inputs:
        if len(set(labels)) != len(labels):
            raise ShapeError(
                f"einsum spec {labels!r} repeats a label within one operand; "
                "diagonal extraction is not differentiable in this engine"
            )
    if len(inputs) != operand_count:
        raise ShapeError(
            f"einsum spec {spec!r} names {len(inputs)} operands, got {operand_count}"
        )
    return inputs, output.strip()


def einsum(spec: str, *operands: Tensor) -> Tensor:
    """Differentiable Einstein summation with an explicit output spec.

    The gradient with respect to operand ``i`` is itself an einsum: contract
    the output gradient with every *other* operand, targeting operand ``i``'s
    index string.  Indices that appear only in operand ``i`` (summed out on
    their own) receive a broadcast gradient.
    """
    inputs, output = _parse_einsum_spec(spec, len(operands))
    arrays = [op.data for op in operands]
    for labels, array in zip(inputs, arrays):
        if len(labels) != array.ndim:
            raise ShapeError(
                f"einsum operand with spec {labels!r} has {array.ndim} axes; "
                f"shape {array.shape}"
            )
    out = np.einsum(spec, *arrays)

    def make_grad(i: int) -> GradFn:
        target = inputs[i]
        other_specs = [output] + [inputs[j] for j in range(len(inputs)) if j != i]
        available = set("".join(other_specs))
        direct = [label for label in target if label in available]
        missing = [label for label in target if label not in available]
        direct_spec = ",".join(other_specs) + "->" + "".join(direct)
        target_shape = arrays[i].shape
        label_dims = {label: target_shape[k] for k, label in enumerate(target)}

        def grad_fn(g: np.ndarray) -> np.ndarray:
            others = [arrays[j] for j in range(len(arrays)) if j != i]
            partial = np.einsum(direct_spec, g, *others)
            if missing:
                # Axes summed out alone in the forward pass: the gradient is
                # constant along them, so broadcast to the full shape.
                partial = np.broadcast_to(
                    np.expand_dims(partial, tuple(range(len(missing)))),
                    tuple(label_dims[m] for m in missing) + partial.shape,
                )
                current = "".join(missing) + "".join(direct)
                perm = tuple(current.index(label) for label in target)
                partial = partial.transpose(perm)
            else:
                perm = tuple("".join(direct).index(label) for label in target)
                partial = partial.transpose(perm)
            return np.ascontiguousarray(partial)

        return grad_fn

    if not grad_enabled():
        return Tensor(out)
    return Tensor._result(
        np.asarray(out), tuple(operands), tuple(make_grad(i) for i in range(len(operands)))
    )
