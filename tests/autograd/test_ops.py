"""Unit tests for the functional ops (elementwise, softmax, structural)."""

import numpy as np
import pytest

from repro.autograd import (
    check_gradients,
    concat,
    dropout,
    exp,
    gelu,
    log,
    log_softmax,
    maximum,
    relu,
    sigmoid,
    softmax,
    sqrt,
    stack,
    tanh,
    tensor,
    where,
)
from repro.errors import ShapeError


def _t(rng, shape):
    return tensor(rng.normal(size=shape), requires_grad=True, dtype=np.float64)


class TestElementwiseValues:
    def test_exp_log_roundtrip(self, rng):
        x = tensor(np.abs(rng.normal(size=5)) + 0.5, dtype=np.float64)
        assert np.allclose(log(exp(x)).data, x.data)

    def test_sqrt(self):
        assert np.allclose(sqrt(tensor([4.0, 9.0])).data, [2.0, 3.0])

    def test_relu_zeroes_negatives(self):
        out = relu(tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self, rng):
        out = sigmoid(_t(rng, (10,)))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_tanh_matches_numpy(self, rng):
        data = rng.normal(size=7)
        assert np.allclose(tanh(tensor(data, dtype=np.float64)).data, np.tanh(data))

    def test_gelu_zero_fixed_point(self):
        assert gelu(tensor([0.0])).data[0] == pytest.approx(0.0)

    def test_gelu_approaches_identity_for_large_x(self):
        assert gelu(tensor([10.0])).data[0] == pytest.approx(10.0, rel=1e-4)

    def test_maximum_values(self):
        out = maximum(tensor([1.0, 5.0]), tensor([3.0, 2.0]))
        assert np.allclose(out.data, [3.0, 5.0])

    def test_where_selects(self):
        out = where(np.array([True, False]), tensor([1.0, 2.0]), tensor([9.0, 8.0]))
        assert np.allclose(out.data, [1.0, 8.0])


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op", [exp, tanh, sigmoid, gelu], ids=["exp", "tanh", "sigmoid", "gelu"]
    )
    def test_smooth_ops(self, rng, op):
        check_gradients(op, [_t(rng, (3, 4))])

    def test_log_gradient(self, rng):
        x = tensor(np.abs(rng.normal(size=(3, 4))) + 0.5, requires_grad=True, dtype=np.float64)
        check_gradients(log, [x])

    def test_sqrt_gradient(self, rng):
        x = tensor(np.abs(rng.normal(size=(3, 4))) + 0.5, requires_grad=True, dtype=np.float64)
        check_gradients(sqrt, [x])

    def test_relu_gradient_away_from_kink(self, rng):
        x = tensor(
            rng.choice([-1.0, 1.0], size=(4, 4)) * (1 + np.abs(rng.normal(size=(4, 4)))),
            requires_grad=True,
            dtype=np.float64,
        )
        check_gradients(relu, [x])

    def test_maximum_gradient(self, rng):
        a, b = _t(rng, (5,)), _t(rng, (5,))
        check_gradients(maximum, [a, b])

    def test_maximum_tie_splits_gradient(self):
        a = tensor([2.0], requires_grad=True)
        b = tensor([2.0], requires_grad=True)
        maximum(a, b).backward(np.array([1.0], dtype=np.float32))
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)

    def test_where_gradient(self, rng):
        cond = rng.random((4, 4)) > 0.5
        a, b = _t(rng, (4, 4)), _t(rng, (4, 4))
        check_gradients(lambda a, b: where(cond, a, b), [a, b])


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(_t(rng, (6, 5)))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_shift_invariance(self, rng):
        data = rng.normal(size=(3, 4))
        a = softmax(tensor(data, dtype=np.float64)).data
        b = softmax(tensor(data + 100.0, dtype=np.float64)).data
        assert np.allclose(a, b)

    def test_log_softmax_consistency(self, rng):
        x = _t(rng, (4, 7))
        assert np.allclose(np.exp(log_softmax(x).data), softmax(x).data)

    def test_softmax_gradient(self, rng):
        check_gradients(lambda x: softmax(x, axis=1), [_t(rng, (3, 5))])

    def test_log_softmax_gradient(self, rng):
        check_gradients(lambda x: log_softmax(x, axis=0), [_t(rng, (5, 3))])

    def test_softmax_axis0(self, rng):
        out = softmax(_t(rng, (6, 5)), axis=0)
        assert np.allclose(out.data.sum(axis=0), 1.0)


class TestStructural:
    def test_concat_values(self, rng):
        a, b = _t(rng, (2, 3)), _t(rng, (4, 3))
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        assert np.allclose(out.data[:2], a.data)

    def test_concat_gradient_splits(self, rng):
        a, b = _t(rng, (2, 3)), _t(rng, (2, 5))
        check_gradients(lambda a, b: concat([a, b], axis=1), [a, b])

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            concat([], axis=0)

    def test_stack_new_axis(self, rng):
        parts = [_t(rng, (3, 2)) for __ in range(4)]
        out = stack(parts, axis=1)
        assert out.shape == (3, 4, 2)

    def test_stack_gradient(self, rng):
        parts = [_t(rng, (2, 2)) for __ in range(3)]
        check_gradients(lambda *ps: stack(list(ps), axis=0), parts)

    def test_stack_empty_raises(self):
        with pytest.raises(ShapeError):
            stack([], axis=0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = tensor(np.ones((10, 10)))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_rate_zero_is_identity(self, rng):
        x = tensor(np.ones(8))
        assert dropout(x, 0.0, rng, training=True) is x

    def test_inverted_scaling_preserves_mean(self, rng):
        x = tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_mask_reused_in_backward(self, rng):
        x = tensor(np.ones(1000), requires_grad=True)
        out = dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        dropped = out.data == 0
        assert np.all(x.grad[dropped] == 0)
        assert np.all(x.grad[~dropped] == 2.0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            dropout(tensor(np.ones(3)), 1.0, rng)
