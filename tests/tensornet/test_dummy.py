"""Tests for the dummy-tensor convolution representation (Eq. 2, Fig. 2)."""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d
from repro.errors import ShapeError
from repro.tensornet import (
    conv1d_direct,
    conv1d_via_dummy,
    conv2d_via_dummy,
    dummy_tensor,
)
from repro.tensornet.dummy import conv_output_size


class TestDummyTensor:
    def test_is_binary(self):
        p = dummy_tensor(8, 3, stride=1, padding=0)
        assert set(np.unique(p)) <= {0.0, 1.0}

    def test_shape(self):
        p = dummy_tensor(8, 3, stride=2, padding=1)
        assert p.shape == (8, conv_output_size(8, 3, 2, 1), 3)

    def test_membership_rule(self):
        """P[j, j', k] = 1 iff j = s·j' + k − p."""
        s, pad = 2, 1
        p = dummy_tensor(9, 3, stride=s, padding=pad)
        for j in range(p.shape[0]):
            for jp in range(p.shape[1]):
                for k in range(3):
                    expected = 1.0 if j == s * jp + k - pad else 0.0
                    assert p[j, jp, k] == expected

    def test_invalid_stride(self):
        with pytest.raises(ShapeError):
            dummy_tensor(8, 3, stride=0)

    def test_negative_padding(self):
        with pytest.raises(ShapeError):
            dummy_tensor(8, 3, padding=-1)

    def test_empty_output(self):
        with pytest.raises(ShapeError):
            dummy_tensor(2, 5)


class TestConv1d:
    @pytest.mark.parametrize("stride", [1, 2, 3])
    @pytest.mark.parametrize("padding", [0, 1, 2])
    def test_dummy_equals_direct(self, rng, stride, padding):
        signal = rng.normal(size=13)
        kernel = rng.normal(size=4)
        assert np.allclose(
            conv1d_via_dummy(signal, kernel, stride, padding),
            conv1d_direct(signal, kernel, stride, padding),
        )

    def test_identity_kernel(self):
        signal = np.arange(5.0)
        assert np.allclose(conv1d_via_dummy(signal, np.array([1.0])), signal)

    def test_direct_validates_rank(self, rng):
        with pytest.raises(ShapeError):
            conv1d_direct(rng.normal(size=(3, 3)), rng.normal(size=3))


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_dummy_equals_im2col_engine(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(3, 3, 3, 4))
        engine = conv2d(
            Tensor(x.astype(np.float64)),
            Tensor(w.astype(np.float64)),
            stride=stride,
            padding=padding,
        ).data
        dummy = conv2d_via_dummy(x, w, stride, padding)
        assert np.allclose(engine, dummy, atol=1e-10)

    def test_channel_mismatch(self, rng):
        with pytest.raises(ShapeError):
            conv2d_via_dummy(rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(3, 3, 3, 2)))

    def test_rank_validation(self, rng):
        with pytest.raises(ShapeError):
            conv2d_via_dummy(rng.normal(size=(2, 4, 4)), rng.normal(size=(3, 3, 3, 2)))
