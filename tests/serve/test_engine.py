"""EmbeddingEngine: bulk path, micro-batcher, result cache, lifecycle.

Exercises the typed ``serve``/``enqueue`` surface (see
tests/serve/test_api.py for the deprecated ``embed``/``submit`` shims).
"""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.eval.embeddings import extract_embeddings
from repro.models import resnet_small
from repro.perf import perf_overrides
from repro.serve import ENGINES, EmbeddingEngine, ServeRequest, build_engine
from repro.utils.profiling import PROFILER


@pytest.fixture
def model(rng):
    return resnet_small(4, rng)


@pytest.fixture
def engine(model):
    with build_engine(model, cache_size=4) as engine:
        yield engine


def samples_for(rng, n=6):
    return rng.normal(size=(n, 3, 16, 16)).astype(np.float32)


def resolve(futures, timeout=10.0):
    return [future.result(timeout=timeout).require() for future in futures]


class TestBulkPath:
    def test_serve_matches_reference_across_chunkings(self, engine, model, rng):
        from tests.serve.conftest import assert_serving_match, serve_bulk

        images = samples_for(rng, 7)
        for batch_size in (1, 3, 64):
            out = serve_bulk(engine, images, batch_size)
            assert_serving_match(
                out, extract_embeddings(model, images, batch_size=batch_size)
            )

    def test_serve_returns_fresh_buffers(self, engine, rng):
        from tests.serve.conftest import serve_bulk

        images = samples_for(rng, 2)
        first = serve_bulk(engine, images)
        first[...] = 0.0  # callers may scribble on their result
        assert np.any(serve_bulk(engine, images))

    def test_serve_accepts_integer_inputs(self, engine):
        # Mirrors Tensor.__init__: non-float payloads become float32.
        images = np.zeros((2, 3, 16, 16), dtype=np.int64)
        result = engine.serve(ServeRequest(sample=images))
        assert result.require().shape[0] == 2

    def test_serve_reports_timings(self, engine, rng):
        result = engine.serve(ServeRequest(sample=samples_for(rng, 2)))
        timings = result.timings
        assert timings.run_seconds > 0
        assert timings.total_seconds >= timings.run_seconds


class TestMicroBatcher:
    def test_enqueued_singles_match_bulk_rows(self, model, rng):
        from tests.serve.conftest import serve_bulk

        images = samples_for(rng, 6)
        with build_engine(model, max_batch=4, max_delay=0.25, cache_size=0) as engine:
            rows = resolve(
                [engine.enqueue(ServeRequest(sample=sample)) for sample in images]
            )
            bulk = serve_bulk(engine, images, batch_size=1)
            for index, row in enumerate(rows):
                assert np.array_equal(row, bulk[index])
            stats = engine.stats()
            assert stats["serve.requests"]["calls"] == 6
            # A generous max_delay lets the worker coalesce: strictly fewer
            # program runs than requests.
            assert 1 <= stats["serve.batches"]["calls"] < 6
            # stats() speaks the unified metrics-snapshot schema.
            assert all("kind" in entry for entry in stats.values())
            assert sum(stats["serve.batch.size"]["buckets"].values()) == (
                stats["serve.batches"]["calls"]
            )

    def test_flush_on_timeout_without_filling_batch(self, model, rng):
        with build_engine(model, max_batch=64, max_delay=0.01, cache_size=0) as engine:
            future = engine.enqueue(ServeRequest(sample=samples_for(rng, 1)[0]))
            result = future.result(timeout=10.0)
            assert result.ok
            width = engine.serve(
                ServeRequest(sample=samples_for(rng, 1))
            ).require().shape[1]
            assert result.embedding.shape == (width,)
            # The queue path stamps queue/run/total wall-clock timings.
            assert result.timings.total_seconds >= result.timings.run_seconds > 0
            assert engine.stats()["serve.batches"]["calls"] >= 1

    def test_batch_size_counters(self, model, rng):
        images = samples_for(rng, 3)
        with build_engine(model, max_batch=8, max_delay=0.25, cache_size=0) as engine:
            PROFILER.reset()
            PROFILER.enable()
            try:
                resolve(
                    [engine.enqueue(ServeRequest(sample=sample)) for sample in images]
                )
            finally:
                PROFILER.disable()
            counters = PROFILER.as_dict()
            assert counters["serve.requests"]["calls"] == 3
            assert "serve.queue_wait" in counters
            assert any(name.startswith("serve.batch.size.") for name in counters)


class TestResultCache:
    def test_repeat_enqueue_hits_cache(self, model, rng):
        sample = samples_for(rng, 1)[0]
        with build_engine(model, max_delay=0.0, cache_size=4) as engine:
            first = resolve([engine.enqueue(ServeRequest(sample=sample))])[0]
            second = resolve([engine.enqueue(ServeRequest(sample=sample))])[0]
            assert np.array_equal(first, second)
            stats = engine.stats()
            assert stats["serve.cache.hit"]["calls"] == 1
            assert stats["serve.cache.miss"]["calls"] == 1
            # The hit never reached the program.
            assert stats["serve.batches"]["calls"] == 1

    def test_lru_eviction(self, model, rng):
        images = samples_for(rng, 3)
        with build_engine(model, max_delay=0.0, cache_size=2) as engine:
            resolve([engine.enqueue(ServeRequest(sample=sample)) for sample in images])
            stats = engine.stats()
            assert stats["serve.cache.evict"]["calls"] >= 1
            assert stats["serve.cache.size"]["value"] <= 2
            # The oldest entry is gone: resubmitting it misses again.
            resolve([engine.enqueue(ServeRequest(sample=images[0]))])
            assert engine.stats()["serve.cache.miss"]["calls"] >= 4

    def test_cached_rows_survive_caller_mutation(self, model, rng):
        sample = samples_for(rng, 1)[0]
        with build_engine(model, max_delay=0.0, cache_size=4) as engine:
            first = resolve([engine.enqueue(ServeRequest(sample=sample))])[0]
            expected = first.copy()
            first[...] = -1.0
            assert np.array_equal(
                resolve([engine.enqueue(ServeRequest(sample=sample))])[0], expected
            )

    def test_cache_disabled(self, model, rng):
        sample = samples_for(rng, 1)[0]
        with build_engine(model, max_delay=0.0, cache_size=0) as engine:
            resolve(
                [
                    engine.enqueue(ServeRequest(sample=sample)),
                    engine.enqueue(ServeRequest(sample=sample)),
                ]
            )
            stats = engine.stats()
            assert "serve.cache.hit" not in stats  # caching never engaged
            assert stats["serve.batches"]["calls"] >= 1


class TestLifecycle:
    def test_invalid_limits_rejected(self, engine):
        for kwargs in (
            {"max_batch": 0},
            {"max_delay": -0.1},
            {"cache_size": -1},
            {"drain_timeout": -1.0},
        ):
            with pytest.raises(ServeError):
                EmbeddingEngine(engine.program, **kwargs)

    def test_closed_engine_rejects_calls(self, model, rng):
        engine = build_engine(model, cache_size=0)
        engine.close()
        with pytest.raises(ServeError, match="closed"):
            engine.serve(ServeRequest(sample=samples_for(rng, 1)))
        with pytest.raises(ServeError, match="closed"):
            engine.enqueue(ServeRequest(sample=samples_for(rng, 1)[0]))
        engine.close()  # idempotent

    def test_close_drains_pending_work(self, model, rng):
        images = samples_for(rng, 4)
        engine = build_engine(model, max_batch=4, max_delay=0.05, cache_size=0)
        futures = [engine.enqueue(ServeRequest(sample=sample)) for sample in images]
        engine.close()
        for future in futures:
            # Either served before shutdown or resolved to a typed error
            # result — never left hanging, never an exception on the future.
            result = future.result(timeout=10.0)
            if result.ok:
                assert result.embedding.ndim == 1
            else:
                assert result.status == "error"
                with pytest.raises(ServeError):
                    result.require()

    def test_build_engine_rejects_non_models(self):
        with pytest.raises(ServeError, match="Module or AttachResult"):
            build_engine(object())


class TestProtocolIntegration:
    def test_flagged_extract_embeddings_is_bit_identical(self, model, rng):
        images = samples_for(rng, 5)
        reference = extract_embeddings(model, images)
        ENGINES.clear()
        try:
            with perf_overrides(serve_embeddings=True):
                flagged = extract_embeddings(model, images)
                again = extract_embeddings(model, images)  # reuses the engine
            assert np.array_equal(flagged, reference)
            assert np.array_equal(again, reference)
        finally:
            ENGINES.clear()

    def test_explicit_engine_argument(self, engine, model, rng):
        from tests.serve.conftest import assert_serving_match

        images = samples_for(rng, 4)
        out = extract_embeddings(model, images, engine=engine)
        assert_serving_match(out, extract_embeddings(model, images))
