"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so layer
construction is reproducible from the experiment seed.
"""

from __future__ import annotations

import math

import numpy as np


def kaiming_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int
) -> np.ndarray:
    """He/Kaiming uniform init, the standard choice before ReLU."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform init, used for the mixer and mapping nets."""
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(
    rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02
) -> np.ndarray:
    """Gaussian init with small std (LoRA's A-matrix convention)."""
    return (rng.normal(0.0, std, size=shape)).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero init (LoRA's B-matrix convention: adapters start as identity)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
