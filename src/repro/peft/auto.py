"""Automatic PEFT configuration.

Given a model and a *trainable-parameter budget*, pick per-layer ranks —
larger ranks where the layer's weight spectrum says adaptation has more
room to matter (via
:func:`~repro.tensornet.rank_selection.suggest_adapter_rank`), scaled
down uniformly until the projected budget fits.  Produces a plan that
:func:`apply_plan` turns into injected adapters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AdapterError
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.peft.api import attach
from repro.peft.base import Adapter
from repro.peft.conv_lora import ConvLoRA
from repro.peft.lora import LoRALinear
from repro.peft.meta_cp import MetaLoRACPConv, MetaLoRACPLinear
from repro.peft.meta_tr import MetaLoRATRConv, MetaLoRATRLinear
from repro.tensornet.rank_selection import suggest_adapter_rank

#: adapter classes per (family, layer kind)
_FAMILIES = {
    "lora": {"linear": LoRALinear, "conv": ConvLoRA},
    "meta_cp": {"linear": MetaLoRACPLinear, "conv": MetaLoRACPConv},
    "meta_tr": {"linear": MetaLoRATRLinear, "conv": MetaLoRATRConv},
}


def _added_parameters(layer: Module, family: str, rank: int) -> int:
    """Predicted trainable parameters for adapting ``layer`` at ``rank``."""
    if isinstance(layer, Linear):
        i, o = layer.in_features, layer.out_features
        if family == "lora":
            return rank * (i + o)
        if family == "meta_cp":
            return rank * (i + o) + rank
        return rank * rank * (i + o) + rank * rank  # meta_tr
    if isinstance(layer, Conv2d):
        k = layer.kernel_size
        i, o = layer.in_channels, layer.out_channels
        if family == "lora":
            return k * k * i * rank + rank * o
        if family == "meta_cp":
            return k * k * i * rank + rank * o + rank
        return rank * k * k * i * rank + rank * o * rank + rank * rank
    raise AdapterError(f"cannot plan for layer type {type(layer).__name__}")


@dataclass
class AdapterPlan:
    """Chosen family and per-layer ranks, with the projected budget."""

    family: str
    ranks: dict[str, int] = field(default_factory=dict)
    projected_parameters: int = 0

    def describe(self) -> str:
        lines = [f"family: {self.family}  projected: {self.projected_parameters:,}"]
        for name, rank in self.ranks.items():
            lines.append(f"  {name}: rank {rank}")
        return "\n".join(lines)


def plan_adapters(
    model: Module,
    budget: int,
    family: str = "lora",
    spectrum_epsilon: float = 0.3,
    max_rank: int = 8,
    skip: tuple[str, ...] = (),
) -> AdapterPlan:
    """Choose per-layer ranks under a total added-parameter ``budget``.

    Initial ranks come from each weight's spectral effective rank; if the
    projected total exceeds the budget, all ranks are scaled down
    proportionally (minimum 1).  Raises if even rank-1 everywhere does not
    fit — the budget is genuinely infeasible.
    """
    if family not in _FAMILIES:
        raise AdapterError(
            f"unknown family {family!r}; choose from {sorted(_FAMILIES)}"
        )
    if budget <= 0:
        raise AdapterError(f"budget must be positive, got {budget}")

    targets: dict[str, Module] = {}
    for name, module in model.named_modules():
        if name in skip or not name:
            continue
        if isinstance(module, (Linear, Conv2d)) and not isinstance(module, Adapter):
            targets[name] = module
    if not targets:
        raise AdapterError("no adaptable layers found")

    ranks = {
        name: max(
            1,
            suggest_adapter_rank(
                layer.weight.data, epsilon=spectrum_epsilon, max_rank=max_rank
            ),
        )
        for name, layer in targets.items()
    }

    def projected(current: dict[str, int]) -> int:
        return sum(
            _added_parameters(targets[name], family, rank)
            for name, rank in current.items()
        )

    total = projected(ranks)
    while total > budget and any(rank > 1 for rank in ranks.values()):
        # Shrink the most expensive layer first.
        name = max(
            (n for n in ranks if ranks[n] > 1),
            key=lambda n: _added_parameters(targets[n], family, ranks[n]),
        )
        ranks[name] -= 1
        total = projected(ranks)
    if total > budget:
        raise AdapterError(
            f"budget {budget:,} infeasible: rank-1 everywhere needs {total:,}"
        )
    return AdapterPlan(family=family, ranks=dict(ranks), projected_parameters=total)


def apply_plan(
    model: Module, plan: AdapterPlan, rng: np.random.Generator | None = None
) -> dict[str, Adapter]:
    """Inject the planned adapters; returns name -> adapter."""
    rng = rng or np.random.default_rng()
    classes = _FAMILIES[plan.family]

    def factory(layer: Module) -> Adapter:
        name = next(
            n for n, module in model.named_modules() if module is layer
        )
        rank = plan.ranks[name]
        cls = classes["conv"] if isinstance(layer, Conv2d) else classes["linear"]
        return cls(layer, rank, rng=rng)

    skip = tuple(
        name
        for name, module in model.named_modules()
        if name
        and isinstance(module, (Linear, Conv2d))
        and name not in plan.ranks
    )
    # Callable-method attach: per-layer ranks need a custom factory.
    result = attach(model, factory, targets=(Linear, Conv2d), skip=skip)
    return result.adapters
