"""Dummy-tensor representation of convolution (Eq. 2, Fig. 2).

The binary tensor ``P ∈ {0,1}^{α × α' × β}`` with ``P[j, j', k] = 1`` iff
``j = s·j' + k − p`` turns convolution into a multilinear contraction:

    y_{j'} = Σ_{j,k} P_{j,j',k} a_j b_k

Two dummy tensors (one per spatial axis) express a full 2-D convolution as
a single tensor-network contraction, which the Figure 2 bench validates
against the im2col convolution used by the neural layers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def conv_output_size(input_size: int, kernel_size: int, stride: int, padding: int) -> int:
    """Spatial output length of a strided, padded convolution."""
    out = (input_size + 2 * padding - kernel_size) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output would be empty (input {input_size}, "
            f"kernel {kernel_size}, stride {stride}, padding {padding})"
        )
    return out


def dummy_tensor(
    input_size: int, kernel_size: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """The binary tensor ``P`` of Eq. 2 for one spatial axis.

    Shape is ``(α, α', β)`` = (input, output, kernel); ``P[j, j', k] = 1``
    when input position ``j`` contributes through kernel tap ``k`` to
    output position ``j'``, i.e. ``j = stride·j' + k − padding``.
    """
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    if padding < 0:
        raise ShapeError(f"padding must be non-negative, got {padding}")
    out_size = conv_output_size(input_size, kernel_size, stride, padding)
    p = np.zeros((input_size, out_size, kernel_size), dtype=np.float64)
    for j_out in range(out_size):
        for k in range(kernel_size):
            j_in = stride * j_out + k - padding
            if 0 <= j_in < input_size:
                p[j_in, j_out, k] = 1.0
    return p


def conv1d_direct(
    signal: np.ndarray, kernel: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Reference 1-D convolution (cross-correlation, the DL convention)."""
    signal = np.asarray(signal, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if signal.ndim != 1 or kernel.ndim != 1:
        raise ShapeError("conv1d_direct expects 1-d signal and kernel")
    if padding:
        signal = np.pad(signal, (padding, padding))
    out_size = (signal.shape[0] - kernel.shape[0]) // stride + 1
    if out_size <= 0:
        raise ShapeError("convolution output would be empty")
    return np.array(
        [
            float(signal[j * stride : j * stride + kernel.shape[0]] @ kernel)
            for j in range(out_size)
        ]
    )


def conv1d_via_dummy(
    signal: np.ndarray, kernel: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Eq. 2 evaluated literally: contract ``P`` with the signal and kernel."""
    signal = np.asarray(signal, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    p = dummy_tensor(signal.shape[0], kernel.shape[0], stride, padding)
    return np.einsum("jok,j,k->o", p, signal, kernel)


def conv2d_via_dummy(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution as a tensor-network contraction with two dummy tensors.

    ``x`` is ``(N, C, H, W)``; ``weight`` is ``(K_h, K_w, C_in, C_out)``
    (the paper's layout).  Returns ``(N, C_out, H', W')``.  This is the
    Figure 2 construction generalized to batched multi-channel images.
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError("conv2d_via_dummy expects (N,C,H,W) input and (Kh,Kw,Cin,Cout) weight")
    kh, kw, c_in, __ = weight.shape
    if x.shape[1] != c_in:
        raise ShapeError(f"channels mismatch: input {x.shape[1]}, weight {c_in}")
    p_h = dummy_tensor(x.shape[2], kh, stride, padding)
    p_w = dummy_tensor(x.shape[3], kw, stride, padding)
    # y[n,o,p,q] = sum_{h,w,i,j,c} P_h[h,p,i] P_w[w,q,j] x[n,c,h,w] W[i,j,c,o]
    return np.einsum("hpi,wqj,nchw,ijco->nopq", p_h, p_w, x, weight, optimize=True)
