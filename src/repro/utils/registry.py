"""A small name -> factory registry.

Used to register PEFT methods, backbones and datasets under string names so
benchmark harnesses and examples can be driven by configuration.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Maps string keys to factories, with decorator-style registration.

    >>> methods = Registry("peft-method")
    >>> @methods.register("lora")
    ... def build_lora():
    ...     return "lora-instance"
    >>> methods.create("lora")
    'lora-instance'
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., T]] = {}

    def register(self, name: str) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Return a decorator registering its target under ``name``."""

        def decorator(factory: Callable[..., T]) -> Callable[..., T]:
            if name in self._factories:
                raise KeyError(f"{self.kind} {name!r} is already registered")
            self._factories[name] = factory
            return factory

        return decorator

    def create(self, name: str, *args: object, **kwargs: object) -> T:
        """Instantiate the factory registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None
        return factory(*args, **kwargs)

    def names(self) -> list[str]:
        """Sorted list of registered names."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def __len__(self) -> int:
        return len(self._factories)
