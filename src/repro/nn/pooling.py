"""Pooling layers."""

from __future__ import annotations

from repro.autograd.conv_ops import avg_pool2d, max_pool2d
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class MaxPool2d(Module):
    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel, self.stride)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
