"""Tests for the CP format (Eqs. 3-4) and the ALS decomposition."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensornet import CPTensor, cp_decompose, cp_to_tensor, random_cp


class TestCPTensor:
    def test_shape_and_rank(self, rng):
        cp = random_cp((3, 4, 5), 2, rng)
        assert cp.shape == (3, 4, 5)
        assert cp.rank == 2

    def test_parameter_count(self, rng):
        cp = random_cp((3, 4), 2, rng)
        assert cp.parameter_count() == 2 + 3 * 2 + 4 * 2

    def test_validates_factor_shapes(self, rng):
        with pytest.raises(ShapeError):
            CPTensor(lam=np.ones(2), factors=[rng.normal(size=(3, 5))])

    def test_validates_weights_vector(self, rng):
        with pytest.raises(ShapeError):
            CPTensor(lam=np.ones((2, 2)), factors=[rng.normal(size=(3, 2))])

    def test_invalid_rank(self, rng):
        with pytest.raises(ShapeError):
            random_cp((3, 4), 0, rng)


class TestReconstruction:
    def test_eq4_elementwise(self, rng):
        """X_{i..} = Σ_r λ_r Π_n A^(n)[i_n, r] (Eq. 4)."""
        cp = random_cp((3, 4, 5), 2, rng)
        full = cp_to_tensor(cp)
        i, j, k = 1, 2, 3
        manual = sum(
            cp.lam[r]
            * cp.factors[0][i, r]
            * cp.factors[1][j, r]
            * cp.factors[2][k, r]
            for r in range(2)
        )
        assert full[i, j, k] == pytest.approx(manual)

    def test_matrix_case_is_scaled_outer_product(self, rng):
        cp = random_cp((4, 6), 3, rng)
        full = cp_to_tensor(cp)
        manual = (cp.factors[0] * cp.lam) @ cp.factors[1].T
        assert np.allclose(full, manual)

    def test_weights_scale_linearly(self, rng):
        cp = random_cp((3, 4), 2, rng)
        doubled = CPTensor(lam=2 * cp.lam, factors=cp.factors)
        assert np.allclose(cp_to_tensor(doubled), 2 * cp_to_tensor(cp))


class TestDecomposition:
    def test_exact_recovery_at_true_rank(self, rng):
        true = random_cp((6, 5, 4), 3, rng)
        target = cp_to_tensor(true)
        est = cp_decompose(target, 3, rng, iterations=500)
        err = np.linalg.norm(target - cp_to_tensor(est)) / np.linalg.norm(target)
        assert err < 1e-5

    def test_matrix_decomposition_matches_svd_error(self, rng):
        matrix = rng.normal(size=(8, 6))
        est = cp_decompose(matrix, 2, rng, iterations=300)
        cp_err = np.linalg.norm(matrix - cp_to_tensor(est))
        u, s, vt = np.linalg.svd(matrix)
        svd_err = np.linalg.norm(matrix - (u[:, :2] * s[:2]) @ vt[:2])
        assert cp_err <= svd_err * 1.05  # ALS should reach the SVD optimum

    def test_higher_rank_never_worse(self, rng):
        target = cp_to_tensor(random_cp((5, 5, 5), 4, rng))
        err1 = np.linalg.norm(target - cp_to_tensor(cp_decompose(target, 1, rng)))
        err4 = np.linalg.norm(target - cp_to_tensor(cp_decompose(target, 4, rng, iterations=400)))
        assert err4 <= err1 + 1e-8

    def test_rejects_vector(self, rng):
        with pytest.raises(ShapeError):
            cp_decompose(rng.normal(size=5), 2, rng)

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ShapeError):
            cp_decompose(rng.normal(size=(3, 3)), 0, rng)
