"""Tests for the MetaLoRA CP/TR adapters: per-sample ΔW semantics (Eqs. 6-7)."""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d
from repro.errors import AdapterError, ShapeError
from repro.nn import Conv2d, Linear
from repro.peft import (
    MetaLoRACPConv,
    MetaLoRACPLinear,
    MetaLoRATRConv,
    MetaLoRATRLinear,
)


def randomize(param, rng):
    param.data[...] = rng.normal(size=param.shape).astype(np.float32)


class TestMetaCPLinear:
    def test_seed_shape_property(self, rng):
        adapter = MetaLoRACPLinear(Linear(6, 5, rng=rng), rank=3, rng=rng)
        assert adapter.seed_shape == (3,)
        assert adapter.is_meta

    def test_identity_at_init_static(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MetaLoRACPLinear(base, rank=3, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)  # factor_b = 0

    def test_eq6_per_sample_delta(self, rng):
        """out[n] = x[n] (W + Σ_r A[:,r] B[r,:] c[n,r])."""
        base = Linear(6, 5, rng=rng)
        adapter = MetaLoRACPLinear(base, rank=3, rng=rng)
        randomize(adapter.factor_b, rng)
        seed = Tensor(rng.normal(size=(4, 3)).astype(np.float32))
        adapter.set_seed(seed)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        out = adapter(x).data
        for n in range(4):
            delta = np.einsum(
                "ir,ro,r->io",
                adapter.factor_a.data,
                adapter.factor_b.data,
                seed.data[n],
            ) * adapter.scaling
            expected = base(Tensor(x.data[n : n + 1])).data + x.data[n : n + 1] @ delta
            assert np.allclose(out[n : n + 1], expected, atol=1e-4)

    def test_static_seed_fallback_matches_delta_weight(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MetaLoRACPLinear(base, rank=3, rng=rng)
        randomize(adapter.factor_b, rng)
        randomize(adapter.static_seed, rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        expected = base(x).data + x.data @ adapter.delta_weight()
        assert np.allclose(adapter(x).data, expected, atol=1e-4)

    def test_3d_input_token_axis(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MetaLoRACPLinear(base, rank=2, rng=rng)
        randomize(adapter.factor_b, rng)
        seed = Tensor(rng.normal(size=(2, 2)).astype(np.float32))
        adapter.set_seed(seed)
        x = Tensor(rng.normal(size=(2, 7, 6)).astype(np.float32))
        assert adapter(x).shape == (2, 7, 5)

    def test_seed_batch_mismatch_raises(self, rng):
        adapter = MetaLoRACPLinear(Linear(6, 5, rng=rng), rank=2, rng=rng)
        adapter.set_seed(Tensor(np.zeros((3, 2), dtype=np.float32)))
        with pytest.raises(ShapeError, match="batch"):
            adapter(Tensor(np.zeros((4, 6), dtype=np.float32)))

    def test_seed_rank_mismatch_raises(self, rng):
        adapter = MetaLoRACPLinear(Linear(6, 5, rng=rng), rank=2, rng=rng)
        with pytest.raises(ShapeError):
            adapter.set_seed(Tensor(np.zeros((4, 3), dtype=np.float32)))

    def test_clearing_seed_restores_static(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MetaLoRACPLinear(base, rank=2, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        static_out = adapter(x).data.copy()
        adapter.set_seed(Tensor(rng.normal(size=(4, 2)).astype(np.float32)))
        adapter.set_seed(None)
        assert np.allclose(adapter(x).data, static_out)


class TestMetaCPConv:
    def test_per_sample_delta_matches_materialized(self, rng):
        base = Conv2d(3, 4, 3, padding=1, rng=rng)
        adapter = MetaLoRACPConv(base, rank=2, rng=rng)
        randomize(adapter.factor_b, rng)
        seed = Tensor(rng.normal(size=(2, 2)).astype(np.float32))
        adapter.set_seed(seed)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        out = adapter(x).data
        for n in range(2):
            delta = np.einsum(
                "abir,ro,r->abio",
                adapter.factor_a.data,
                adapter.factor_b.data,
                seed.data[n],
            ) * adapter.scaling
            expected = (
                base(Tensor(x.data[n : n + 1])).data
                + conv2d(
                    Tensor(x.data[n : n + 1]),
                    Tensor(delta.astype(np.float32)),
                    stride=1,
                    padding=1,
                ).data
            )
            assert np.allclose(out[n : n + 1], expected, atol=1e-3)

    def test_static_matches_delta_weight(self, rng):
        base = Conv2d(3, 4, 3, padding=1, rng=rng)
        adapter = MetaLoRACPConv(base, rank=2, rng=rng)
        randomize(adapter.factor_b, rng)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        delta = Tensor(adapter.delta_weight().astype(np.float32))
        expected = base(x).data + conv2d(x, delta, stride=1, padding=1).data
        assert np.allclose(adapter(x).data, expected, atol=1e-4)

    def test_wrong_base_type(self, rng):
        with pytest.raises(AdapterError):
            MetaLoRACPConv(Linear(4, 4, rng=rng), rank=2)


class TestMetaTRLinear:
    def test_seed_shape_is_matrix(self, rng):
        adapter = MetaLoRATRLinear(Linear(6, 5, rng=rng), rank=3, rng=rng)
        assert adapter.seed_shape == (3, 3)

    def test_identity_at_init(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MetaLoRATRLinear(base, rank=3, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)  # core_b = 0

    def test_eq7_per_sample_delta(self, rng):
        """out[n] = x[n] (W + Σ A[p,:,r] B[r,:,q] C[n,q,p])."""
        base = Linear(6, 5, rng=rng)
        adapter = MetaLoRATRLinear(base, rank=2, rng=rng)
        randomize(adapter.core_b, rng)
        seed = Tensor(rng.normal(size=(4, 2, 2)).astype(np.float32))
        adapter.set_seed(seed)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        out = adapter(x).data
        for n in range(4):
            delta = np.einsum(
                "pir,roq,qp->io",
                adapter.core_a.data,
                adapter.core_b.data,
                seed.data[n],
            ) * adapter.scaling
            expected = base(Tensor(x.data[n : n + 1])).data + x.data[n : n + 1] @ delta
            assert np.allclose(out[n : n + 1], expected, atol=1e-4)

    def test_static_seed_is_identity_matrix(self, rng):
        adapter = MetaLoRATRLinear(Linear(6, 5, rng=rng), rank=3, rng=rng)
        assert np.allclose(adapter.static_seed.data, np.eye(3))

    def test_tr_has_more_seed_dof_than_cp(self, rng):
        cp = MetaLoRACPLinear(Linear(6, 5, rng=rng), rank=3, rng=rng)
        tr = MetaLoRATRLinear(Linear(6, 5, rng=rng), rank=3, rng=rng)
        assert int(np.prod(tr.seed_shape)) == int(np.prod(cp.seed_shape)) ** 2


class TestMetaTRConv:
    def test_static_matches_delta_weight(self, rng):
        base = Conv2d(3, 4, 3, padding=1, rng=rng)
        adapter = MetaLoRATRConv(base, rank=2, rng=rng)
        randomize(adapter.core_b, rng)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        delta = Tensor(adapter.delta_weight().astype(np.float32))
        expected = base(x).data + conv2d(x, delta, stride=1, padding=1).data
        assert np.allclose(adapter(x).data, expected, atol=1e-4)

    def test_per_sample_delta(self, rng):
        base = Conv2d(3, 4, 3, padding=1, rng=rng)
        adapter = MetaLoRATRConv(base, rank=2, rng=rng)
        randomize(adapter.core_b, rng)
        seed = Tensor(rng.normal(size=(2, 2, 2)).astype(np.float32))
        adapter.set_seed(seed)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        out = adapter(x).data
        for n in range(2):
            delta = np.einsum(
                "pabir,roq,qp->abio",
                adapter.core_a.data,
                adapter.core_b.data,
                seed.data[n],
            ) * adapter.scaling
            expected = (
                base(Tensor(x.data[n : n + 1])).data
                + conv2d(
                    Tensor(x.data[n : n + 1]),
                    Tensor(delta.astype(np.float32)),
                    stride=1,
                    padding=1,
                ).data
            )
            assert np.allclose(out[n : n + 1], expected, atol=1e-3)

    def test_strided_base(self, rng):
        base = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        adapter = MetaLoRATRConv(base, rank=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert adapter(x).shape == base(x).shape

    def test_gradients_flow_through_seed(self, rng):
        base = Conv2d(3, 4, 3, padding=1, rng=rng)
        adapter = MetaLoRATRConv(base, rank=2, rng=rng)
        randomize(adapter.core_b, rng)
        seed = Tensor(rng.normal(size=(2, 2, 2)).astype(np.float32), requires_grad=True)
        adapter.set_seed(seed)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        adapter(x).sum().backward()
        assert seed.grad is not None
        assert adapter.core_a.grad is not None
        assert adapter.core_b.grad is not None
