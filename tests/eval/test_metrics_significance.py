"""Tests for metrics, the t-test, and embedding extraction."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import (
    accuracy,
    confusion_matrix,
    extract_embeddings,
    two_sided_t_test,
)
from repro.models import resnet_small


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(EvaluationError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(EvaluationError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(
            predictions=np.array([0, 1, 1, 2]),
            labels=np.array([0, 1, 2, 2]),
            num_classes=3,
        )
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_confusion_matrix_diagonal_equals_accuracy(self, rng):
        predictions = rng.integers(0, 4, 50)
        labels = rng.integers(0, 4, 50)
        matrix = confusion_matrix(predictions, labels, 4)
        assert np.trace(matrix) / 50 == pytest.approx(accuracy(predictions, labels))


class TestTTest:
    def test_clear_difference_significant(self):
        result = two_sided_t_test([0.9, 0.91, 0.92], [0.5, 0.51, 0.52])
        assert result.significant
        assert result.p_value < 0.05
        assert result.statistic > 0

    def test_identical_samples_not_significant(self):
        result = two_sided_t_test([0.5, 0.6, 0.7], [0.5, 0.6, 0.7])
        assert not result.significant
        assert result.p_value == 1.0

    def test_noisy_overlap_not_significant(self, rng):
        a = [0.5, 0.9, 0.4]
        b = [0.6, 0.5, 0.8]
        result = two_sided_t_test(a, b)
        assert not result.significant

    def test_constant_positive_difference_maximally_significant(self):
        result = two_sided_t_test([0.9, 0.8, 0.7], [0.5, 0.4, 0.3])
        assert result.significant
        assert result.p_value == 0.0
        assert result.statistic > 0

    def test_constant_negative_difference_significant_but_negative(self):
        result = two_sided_t_test([0.5, 0.4], [0.9, 0.8])
        assert result.significant
        assert result.statistic < 0

    def test_unpaired_welch(self):
        result = two_sided_t_test(
            [0.9, 0.91, 0.92, 0.93], [0.5, 0.52], paired=False
        )
        assert result.significant

    def test_paired_requires_equal_counts(self):
        with pytest.raises(EvaluationError):
            two_sided_t_test([0.9, 0.91], [0.5], paired=True)

    def test_minimum_samples(self):
        with pytest.raises(EvaluationError):
            two_sided_t_test([0.9], [0.5])


class TestExtractEmbeddings:
    def test_shape_and_batching(self, rng):
        model = resnet_small(4, rng)
        images = rng.normal(size=(10, 3, 16, 16)).astype(np.float32)
        emb = extract_embeddings(model, images, batch_size=3)
        assert emb.shape == (10, model.embedding_dim)

    def test_batch_size_does_not_change_result(self, rng):
        model = resnet_small(4, rng)
        images = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
        a = extract_embeddings(model, images, batch_size=2)
        b = extract_embeddings(model, images, batch_size=8)
        assert np.allclose(a, b, atol=1e-5)

    def test_requires_features_method(self, rng):
        from repro.nn import Linear

        with pytest.raises(EvaluationError):
            extract_embeddings(Linear(3, 3, rng=rng), np.zeros((2, 3), np.float32))

    def test_restores_prior_train_eval_mode(self, rng):
        model = resnet_small(4, rng)
        images = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        model.train()
        extract_embeddings(model, images)
        assert model.training
        model.eval()
        extract_embeddings(model, images)
        assert not model.training  # must NOT be forced back to train mode
