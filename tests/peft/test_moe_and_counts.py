"""Tests for MoE-LoRA and parameter accounting."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import AdapterError, ShapeError
from repro.nn import Linear
from repro.peft import (
    LoRALinear,
    MoELoRALinear,
    adapter_parameter_table,
    count_parameters,
    attach,
)
from repro.peft.counts import format_table
from repro.nn import Sequential, ReLU


def randomize(param, rng):
    param.data[...] = rng.normal(size=param.shape).astype(np.float32)


class TestMoELoRA:
    def test_identity_at_init(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MoELoRALinear(base, rank=2, experts=3, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)

    def test_static_gates_are_uniform_softmax(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MoELoRALinear(base, rank=2, experts=4, rng=rng)
        for branch in adapter.expert_branches:
            randomize(branch.lora_b, rng)
        x = Tensor(rng.normal(size=(3, 6)).astype(np.float32))
        out = adapter(x).data
        manual = base(x).data
        for branch in adapter.expert_branches:
            manual = manual + 0.25 * branch.delta(x).data * adapter.scaling
        assert np.allclose(out, manual, atol=1e-5)

    def test_per_sample_gates_mix_experts(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = MoELoRALinear(base, rank=2, experts=2, rng=rng)
        for branch in adapter.expert_branches:
            randomize(branch.lora_b, rng)
        # extreme logits: sample 0 -> expert 0, sample 1 -> expert 1
        gates = Tensor(np.array([[50.0, -50.0], [-50.0, 50.0]], dtype=np.float32))
        adapter.set_seed(gates)
        x = Tensor(rng.normal(size=(2, 6)).astype(np.float32))
        out = adapter(x).data
        for n, expert in enumerate((0, 1)):
            branch = adapter.expert_branches[expert]
            expected = (
                base(Tensor(x.data[n : n + 1])).data
                + branch.delta(
                    Tensor(x.data[n : n + 1].reshape(1, 1, 6))
                ).data.reshape(1, 5)
                * adapter.scaling
            )
            assert np.allclose(out[n : n + 1], expected, atol=1e-4), n

    def test_is_meta(self, rng):
        adapter = MoELoRALinear(Linear(4, 4, rng=rng), rank=2, rng=rng)
        assert adapter.is_meta
        assert adapter.seed_shape == (4,)

    def test_gate_shape_validation(self, rng):
        adapter = MoELoRALinear(Linear(4, 4, rng=rng), rank=2, experts=3, rng=rng)
        with pytest.raises(ShapeError):
            adapter.set_seed(Tensor(np.zeros((2, 5), dtype=np.float32)))

    def test_expert_count_validation(self, rng):
        with pytest.raises(AdapterError):
            MoELoRALinear(Linear(4, 4, rng=rng), rank=2, experts=0)


class TestCounts:
    def test_count_parameters_totals(self, rng):
        net = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))
        counts = count_parameters(net)
        assert counts.total == (4 * 8 + 8) + (8 * 3 + 3)
        assert counts.trainable == counts.total
        assert counts.trainable_fraction == 1.0

    def test_trainable_fraction_after_injection(self, rng):
        net = Sequential(Linear(32, 64, rng=rng), ReLU(), Linear(64, 8, rng=rng))
        attach(net, "lora", rank=2, targets=(Linear,), rng=rng)
        counts = count_parameters(net)
        assert 0 < counts.trainable_fraction < 0.25

    def test_adapter_table_rows(self, rng):
        net = Sequential(Linear(8, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))
        attach(net, "lora", rank=2, targets=(Linear,), rng=rng)
        rows = adapter_parameter_table(net)
        assert len(rows) == 2
        assert rows[0]["type"] == "LoRALinear"
        assert rows[0]["added_parameters"] == 8 * 2 + 2 * 8

    def test_format_table_renders(self, rng):
        net = Sequential(Linear(8, 8, rng=rng))
        attach(net, "lora", rank=2, targets=(Linear,), rng=rng)
        text = format_table(adapter_parameter_table(net))
        assert "LoRALinear" in text
        assert "added_parameters" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no adapters)"

    def test_empty_fraction_is_zero(self):
        from repro.peft.counts import ParameterCounts

        assert ParameterCounts(0, 0).trainable_fraction == 0.0
