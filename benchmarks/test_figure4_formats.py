"""Bench: **Figure 4** — MetaLoRA's design: seed generation + CP/TR integration.

Figure 4 diagrams the full architecture: the mapping net generates ``c``
(CP) or ``C`` (TR), which is integrated into weight matrices and
convolutional tensors through the two tensor formats.  The bench

1. regenerates the parameter-count comparison across formats and ranks
   (matrix and conv targets, as in the figure's bottom panels),
2. measures seed→ΔW sensitivity — how much the generated update moves as
   the seed moves (the mechanism enabling per-sample adaptation), and
3. times end-to-end seed generation + integration for a full model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import FeatureExtractor, resnet_small
from repro.nn import Conv2d, Linear
from repro.peft import (
    MetaLoRACPConv,
    MetaLoRACPLinear,
    MetaLoRAModel,
    MetaLoRATRConv,
    MetaLoRATRLinear,
    attach,
)

IN_FEATURES, OUT_FEATURES = 16, 32
CHANNELS_IN, CHANNELS_OUT, KERNEL = 8, 16, 3


@pytest.mark.benchmark(group="figure4")
def test_figure4_parameter_counts(benchmark):
    """Adapter parameters per format/target across ranks (figure bottom)."""
    rng = np.random.default_rng(0)

    def run():
        rows = []
        for rank in (1, 2, 4, 8):
            cp_lin = MetaLoRACPLinear(Linear(IN_FEATURES, OUT_FEATURES, rng=rng), rank, rng=rng)
            tr_lin = MetaLoRATRLinear(Linear(IN_FEATURES, OUT_FEATURES, rng=rng), rank, rng=rng)
            cp_conv = MetaLoRACPConv(
                Conv2d(CHANNELS_IN, CHANNELS_OUT, KERNEL, rng=rng), rank, rng=rng
            )
            tr_conv = MetaLoRATRConv(
                Conv2d(CHANNELS_IN, CHANNELS_OUT, KERNEL, rng=rng), rank, rng=rng
            )
            rows.append(
                (
                    rank,
                    cp_lin.extra_parameter_count(),
                    tr_lin.extra_parameter_count(),
                    cp_conv.extra_parameter_count(),
                    tr_conv.extra_parameter_count(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    full_linear = IN_FEATURES * OUT_FEATURES
    full_conv = KERNEL * KERNEL * CHANNELS_IN * CHANNELS_OUT
    print(f"\nfull ΔW: linear={full_linear}, conv={full_conv}")
    print(f"{'rank':>4}  {'CP-lin':>7}  {'TR-lin':>7}  {'CP-conv':>8}  {'TR-conv':>8}")
    for rank, cp_l, tr_l, cp_c, tr_c in rows:
        print(f"{rank:>4}  {cp_l:>7}  {tr_l:>7}  {cp_c:>8}  {tr_c:>8}")
    # TR pays O(R²) where CP pays O(R): at equal rank TR is bigger, and the
    # gap must grow with rank (the expressiveness/efficiency trade-off the
    # paper discusses in Sec. VI).
    gaps = [tr_l - cp_l for __, cp_l, tr_l, *_ in rows]
    assert all(later >= earlier for earlier, later in zip(gaps, gaps[1:]))


@pytest.mark.benchmark(group="figure4")
def test_figure4_seed_sensitivity(benchmark):
    """‖ΔW(c) − ΔW(c′)‖ grows with ‖c − c′‖: the seed really steers the
    update (and TR's matrix seed has more directions to steer in)."""
    rng = np.random.default_rng(1)
    rank = 4
    cp = MetaLoRACPLinear(Linear(IN_FEATURES, OUT_FEATURES, rng=rng), rank, rng=rng)
    cp.factor_b.data[...] = rng.normal(size=cp.factor_b.shape).astype(np.float32)
    tr = MetaLoRATRLinear(Linear(IN_FEATURES, OUT_FEATURES, rng=rng), rank, rng=rng)
    tr.core_b.data[...] = rng.normal(size=tr.core_b.shape).astype(np.float32)

    def delta_cp(seed: np.ndarray) -> np.ndarray:
        return np.einsum("ir,ro,r->io", cp.factor_a.data, cp.factor_b.data, seed)

    def delta_tr(seed: np.ndarray) -> np.ndarray:
        return np.einsum("pir,roq,qp->io", tr.core_a.data, tr.core_b.data, seed)

    def run():
        base_cp = rng.normal(size=rank)
        base_tr = rng.normal(size=(rank, rank))
        rows = []
        for eps in (0.1, 0.5, 1.0, 2.0):
            d_cp = np.linalg.norm(delta_cp(base_cp + eps) - delta_cp(base_cp))
            perturb = eps * np.ones((rank, rank)) / rank
            d_tr = np.linalg.norm(delta_tr(base_tr + perturb) - delta_tr(base_tr))
            rows.append((eps, float(d_cp), float(d_tr)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'‖δseed‖':>8}  {'‖δΔW‖ CP':>10}  {'‖δΔW‖ TR':>10}")
    for eps, d_cp, d_tr in rows:
        print(f"{eps:>8.1f}  {d_cp:>10.3f}  {d_tr:>10.3f}")
    # Sensitivity is monotone in the perturbation (linear maps of the seed).
    cps = [r[1] for r in rows]
    trs = [r[2] for r in rows]
    assert all(b >= a for a, b in zip(cps, cps[1:]))
    assert all(b >= a for a, b in zip(trs, trs[1:]))


@pytest.mark.benchmark(group="figure4")
def test_figure4_end_to_end_generation(benchmark):
    """Times the full Fig. 4 pipeline: extract features → mapping net →
    per-layer seeds → adapted forward pass."""
    rng = np.random.default_rng(2)
    backbone = resnet_small(4, rng)
    extractor_backbone = resnet_small(4, np.random.default_rng(3))
    result = attach(backbone, "meta_tr", rank=2, rng=rng)
    model = MetaLoRAModel(
        backbone, FeatureExtractor(extractor_backbone), rng=rng, adapters=result
    )
    model.eval()
    x = Tensor(rng.normal(size=(8, 3, 16, 16)).astype(np.float32))

    out = benchmark(lambda: model(x))
    assert out.shape == (8, 4)

    seeds = model.generate_seeds(x)
    print(f"\n{len(seeds)} per-layer seeds generated per batch; shapes: "
          f"{sorted({tuple(s.shape[1:]) for s in seeds})}")
