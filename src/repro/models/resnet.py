"""Residual convolutional backbone (He et al., 2016), CPU-scale.

The paper fine-tunes a pre-trained ResNet; this is a faithful small-scale
instance: a convolutional stem, stages of :class:`BasicBlock` (two 3×3
convolutions with batch norm and an identity or projection shortcut),
global average pooling and a linear head.  ``features()`` exposes the
pooled embedding used by both the KNN protocol and MetaLoRA's mapping net.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    ModuleList,
    Sequential,
)


class BasicBlock(Module):
    """conv3×3 → BN → ReLU → conv3×3 → BN, plus a (projected) shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module | None = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        identity = self.shortcut(x) if self.shortcut is not None else x
        return ops.relu(out + identity)


class ResNet(Module):
    """Configurable small ResNet.

    ``stage_channels`` gives the width of each stage; each stage has
    ``blocks_per_stage`` basic blocks, with spatial downsampling (stride 2)
    at every stage transition after the first.
    """

    def __init__(
        self,
        in_channels: int = 3,
        stage_channels: tuple[int, ...] = (16, 32, 64),
        blocks_per_stage: int = 1,
        num_classes: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.stem = Conv2d(in_channels, stage_channels[0], 3, padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(stage_channels[0])
        blocks: list[Module] = []
        channels = stage_channels[0]
        for stage, width in enumerate(stage_channels):
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(channels, width, stride=stride, rng=rng))
                channels = width
        self.blocks = ModuleList(blocks)
        self.pool = GlobalAvgPool2d()
        self.head = Linear(channels, num_classes, rng=rng)
        self.embedding_dim = channels
        self.num_classes = num_classes

    def features(self, x: Tensor) -> Tensor:
        """Pooled embedding ``(N, embedding_dim)`` before the classifier."""
        out = ops.relu(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            out = block(out)
        return self.pool(out)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.features(x))


def resnet_small(
    num_classes: int, rng: np.random.Generator, in_channels: int = 3
) -> ResNet:
    """The CPU-scale ResNet used throughout the benchmarks."""
    return ResNet(
        in_channels=in_channels,
        stage_channels=(8, 16, 32),
        blocks_per_stage=1,
        num_classes=num_classes,
        rng=rng,
    )
