"""Multi-LoRA baseline (Wang et al., 2023).

Several parallel LoRA branches with learnable per-branch scaling gates.
The extra capacity lets a static adapter cover a more diverse task mixture
than a single branch, which is why Table I shows Multi-LoRA between plain
LoRA and the meta variants — but the combination weights are still fixed
after training, so it cannot specialize per input.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.conv_ops import conv2d
from repro.autograd.ops import einsum
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn import init
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.peft.base import Adapter


class _LinearBranch(Module):
    """One (A, B) LoRA pair for a linear target; not itself an adapter."""

    def __init__(
        self, in_features: int, out_features: int, rank: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.lora_a = Parameter(init.normal(rng, (in_features, rank), std=0.02))
        self.lora_b = Parameter(init.zeros((rank, out_features)))

    def delta(self, x: Tensor) -> Tensor:
        return x @ self.lora_a @ self.lora_b

    def delta_weight(self) -> np.ndarray:
        return self.lora_a.data @ self.lora_b.data


class _ConvBranch(Module):
    """One (A, B) Conv-LoRA pair; not itself an adapter."""

    def __init__(
        self,
        kernel_size: int,
        in_channels: int,
        out_channels: int,
        rank: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        fan_in = in_channels * kernel_size * kernel_size
        self.lora_a = Parameter(
            init.normal(
                rng,
                (kernel_size, kernel_size, in_channels, rank),
                std=1.0 / np.sqrt(fan_in),
            )
        )
        self.lora_b = Parameter(init.zeros((rank, out_channels)))

    def delta(self, x: Tensor, stride: int, padding: int) -> Tensor:
        mid = conv2d(x, self.lora_a, stride=stride, padding=padding)
        return einsum("nrhw,ro->nohw", mid, self.lora_b)

    def delta_weight(self) -> np.ndarray:
        return np.einsum("abir,ro->abio", self.lora_a.data, self.lora_b.data)


class MultiLoRALinear(Adapter):
    """``ΔW = (α/R) Σ_k g_k · A_k B_k`` over ``branches`` LoRA pairs."""

    def __init__(
        self,
        base: Linear,
        rank: int,
        branches: int = 3,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(f"MultiLoRALinear wraps Linear, got {type(base).__name__}")
        if branches <= 0:
            raise AdapterError(f"branches must be positive, got {branches}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.branches = branches
        self.scaling = float(alpha if alpha is not None else rank) / rank
        self.lora_branches = ModuleList(
            [
                _LinearBranch(base.in_features, base.out_features, rank, rng)
                for __ in range(branches)
            ]
        )
        self.gates = Parameter(init.ones((branches,)) / branches)

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        for k, branch in enumerate(self.lora_branches):
            out = out + branch.delta(x) * (self.gates[k] * self.scaling)
        return out

    def delta_weight(self) -> np.ndarray:
        total = np.zeros_like(self.base.weight.data)
        for k, branch in enumerate(self.lora_branches):
            total += float(self.gates.data[k]) * self.scaling * branch.delta_weight()
        return total

    def extra_parameter_count(self) -> int:
        return self.gates.size + sum(
            b.lora_a.size + b.lora_b.size for b in self.lora_branches
        )


class MultiLoRAConv(Adapter):
    """Multi-branch Conv-LoRA with learnable scaling gates."""

    def __init__(
        self,
        base: Conv2d,
        rank: int,
        branches: int = 3,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Conv2d):
            raise AdapterError(f"MultiLoRAConv wraps Conv2d, got {type(base).__name__}")
        if branches <= 0:
            raise AdapterError(f"branches must be positive, got {branches}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.branches = branches
        self.scaling = float(alpha if alpha is not None else rank) / rank
        self.lora_branches = ModuleList(
            [
                _ConvBranch(
                    base.kernel_size, base.in_channels, base.out_channels, rank, rng
                )
                for __ in range(branches)
            ]
        )
        self.gates = Parameter(init.ones((branches,)) / branches)

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        for k, branch in enumerate(self.lora_branches):
            delta = branch.delta(x, self.base.stride, self.base.padding)
            out = out + delta * (self.gates[k] * self.scaling)
        return out

    def delta_weight(self) -> np.ndarray:
        total = np.zeros_like(self.base.weight.data)
        for k, branch in enumerate(self.lora_branches):
            total += float(self.gates.data[k]) * self.scaling * branch.delta_weight()
        return total

    def extra_parameter_count(self) -> int:
        return self.gates.size + sum(
            b.lora_a.size + b.lora_b.size for b in self.lora_branches
        )
