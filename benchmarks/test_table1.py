"""Bench: regenerate **Table I** (the paper's headline result).

Paper numbers (for shape comparison — absolute values are not expected to
match, since the substrate here is a synthetic task distribution):

    Method        | ResNet K=5 | K=10  | Mixer K=5 | K=10
    Original      |   67.04    | 61.36 |   58.27   | 60.83
    LoRA          |   67.85    | 62.02 |   59.16   | 61.22
    Multi-LoRA    |   72.11    | 68.57 |   63.74   | 65.49
    Meta-LoRA CP  |   71.07    | 71.29 |   70.32   | 72.52
    Meta-LoRA TR  |   73.24*   | 71.26 |   71.75*  | 73.87*

The shape that must hold: the meta variants at the top (TR ≥ CP on
average, with CP strongest at K=10), the static adapters in the middle,
Original at the bottom.  ``*`` marks two-sided t-test significance vs the
best baseline — reproduced here over seeds when REPRO_BENCH_SCALE=paper.

Scale:
    REPRO_BENCH_SCALE=quick  (default) one seed, reduced sizes, ~2 min/backbone
    REPRO_BENCH_SCALE=paper  three seeds + significance,  ~15 min/backbone
    REPRO_BENCH_JOBS=N       shard the (seed, method) grid over N workers
                             (bit-identical to the serial default)
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PAPER, PAPER_MIXER, TABLE1_SEEDS
from repro.eval.protocol import Table1Config, format_table1
from repro.eval.reporting import record_from_rows, save_record
from repro.eval.significance import two_sided_t_test
from repro.runtime import run_table1_grid


def _config_for(scale: str, backbone: str) -> tuple[Table1Config, tuple[int, ...]]:
    base = PAPER if backbone == "resnet" else PAPER_MIXER
    if scale == "paper":
        return base, TABLE1_SEEDS
    quick = replace(
        base,
        num_tasks=9,
        adapt_episodes=150,
        support_per_task=40,
        query_per_task=40,
        pretrain_epochs=4,
    )
    return quick, (0,)


def _run_and_report(
    config: Table1Config, seeds: tuple[int, ...], scale: str, jobs: int = 1
) -> list[dict]:
    # Bit-identical to `[run_table1(config, seed) for seed in seeds]` at
    # any worker count; jobs=1 (the default) is the in-process fallback.
    rows_by_seed = run_table1_grid(config, seeds, jobs=jobs).rows_by_seed
    print()
    print(format_table1(rows_by_seed, config))
    if len(seeds) >= 2:
        _report_significance(rows_by_seed, config)
    if scale == "paper":
        # Only full-scale runs become the records EXPERIMENTS.md cites.
        record = record_from_rows(
            config.backbone, list(seeds), rows_by_seed, config.ks
        )
        path = save_record(record)
        print(f"\nsaved: {path}")
    return rows_by_seed

def _report_significance(rows_by_seed: list[dict], config: Table1Config) -> None:
    """The paper's '*' markers: meta vs best baseline, two-sided t-test."""
    baselines = [m for m in config.methods if not m.startswith("meta")]
    print("\nsignificance (two-sided paired t-test vs best baseline, α=0.05):")
    for k in config.ks:
        per_method = {
            m: [rows[m].accuracy_by_k[k] for rows in rows_by_seed]
            for m in config.methods
        }
        best_baseline = max(baselines, key=lambda m: float(np.mean(per_method[m])))
        for meta in ("meta_lora_cp", "meta_lora_tr"):
            if meta not in per_method:
                continue
            result = two_sided_t_test(per_method[meta], per_method[best_baseline])
            marker = "*" if result.significant and result.statistic > 0 else " "
            print(
                f"  K={k:<3} {meta:14s} vs {best_baseline:10s}: "
                f"p={result.p_value:.3f} {marker}"
            )


@pytest.mark.benchmark(group="table1")
def test_table1_resnet(benchmark, scale, jobs):
    """Table I, ResNet column pair."""
    config, seeds = _config_for(scale, "resnet")
    rows_by_seed = benchmark.pedantic(
        lambda: _run_and_report(config, seeds, scale, jobs), rounds=1, iterations=1
    )
    rows = rows_by_seed[0]
    chance = 1.0 / config.num_classes
    # Sanity: every method beats chance, and the adapted methods beat Original.
    for method, row in rows.items():
        assert row.accuracy_by_k[5] > chance
    mean = lambda m, k: float(np.mean([r[m].accuracy_by_k[k] for r in rows_by_seed]))
    assert mean("meta_lora_tr", 5) > mean("original", 5)
    assert mean("meta_lora_tr", 10) > mean("original", 10)


@pytest.mark.benchmark(group="table1")
def test_table1_mixer(benchmark, scale, jobs):
    """Table I, MLP-Mixer column pair."""
    config, seeds = _config_for(scale, "mixer")
    rows_by_seed = benchmark.pedantic(
        lambda: _run_and_report(config, seeds, scale, jobs), rounds=1, iterations=1
    )
    mean = lambda m, k: float(np.mean([r[m].accuracy_by_k[k] for r in rows_by_seed]))
    assert mean("meta_lora_tr", 5) > mean("original", 5)
    assert mean("meta_lora_tr", 10) > mean("original", 10)
