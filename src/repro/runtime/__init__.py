"""Parallel experiment runtime: process-pool sharding of independent cells.

Public surface:

- :func:`run_cells` / :class:`CellResult` / :class:`CellFailure` — the
  generic deterministic cell runner with crash isolation and a serial
  fallback (``jobs=1`` or no ``fork``);
- :func:`run_table1_grid` / :class:`Table1GridResult` — the Table I
  ``seeds × methods`` grid sharded over workers, bit-identical to the
  serial protocol loop;
- :func:`fork_available` / :func:`resolve_jobs` — platform helpers the
  CLI ``--jobs`` flags build on.

See ``docs/runtime.md`` for the design and the determinism contract.
"""

from repro.runtime.pool import (
    CellFailure,
    CellResult,
    fork_available,
    raise_failures,
    resolve_jobs,
    run_cells,
)
from repro.runtime.table1 import Table1GridResult, run_table1_grid

__all__ = [
    "CellFailure",
    "CellResult",
    "Table1GridResult",
    "fork_available",
    "raise_failures",
    "resolve_jobs",
    "run_cells",
    "run_table1_grid",
]
