"""Batched meta-seed generation must match the per-head reference path."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import FeatureExtractor, resnet_small
from repro.peft import MetaLoRAModel, attach
from repro.perf import FLAGS, perf_overrides


def make_model(rng, fmt="tr"):
    backbone = resnet_small(4, rng)
    extractor = FeatureExtractor(resnet_small(4, np.random.default_rng(7)))
    result = attach(backbone, f"meta_{fmt}", rank=2, rng=rng)
    return MetaLoRAModel(backbone, extractor, rng=rng, adapters=result)


@pytest.mark.parametrize("fmt", ["tr", "cp"])
class TestBatchedSeeds:
    def test_seeds_match_per_head_path(self, fmt, rng):
        model = make_model(rng, fmt)
        # Perturb the heads so seeds are non-trivial (they start neutral).
        for head in model.heads:
            head.weight.data[...] = rng.normal(size=head.weight.shape) * 0.1
        x = Tensor(rng.normal(size=(3, 3, 16, 16)).astype(np.float32))
        with perf_overrides(batched_seeds=False):
            reference = [s.data.copy() for s in model.generate_seeds(x)]
        with perf_overrides(batched_seeds=True):
            batched = [s.data.copy() for s in model.generate_seeds(x)]
        assert len(reference) == len(batched)
        for ref, got in zip(reference, batched):
            np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_forward_and_gradients_match(self, fmt, rng):
        model = make_model(rng, fmt)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))

        def step():
            model.zero_grad()
            loss = model(x).sum()
            loss.backward()
            grads = {
                name: None if p.grad is None else p.grad.copy()
                for name, p in model.named_parameters()
                if p.requires_grad
            }
            return loss.data.copy(), grads

        with perf_overrides(batched_seeds=False):
            ref_loss, ref_grads = step()
        with perf_overrides(batched_seeds=True):
            opt_loss, opt_grads = step()

        np.testing.assert_allclose(opt_loss, ref_loss, atol=1e-10)
        assert ref_grads.keys() == opt_grads.keys()
        for name, ref in ref_grads.items():
            got = opt_grads[name]
            if ref is None:
                assert got is None, name
            else:
                np.testing.assert_allclose(got, ref, atol=1e-10, err_msg=name)

    def test_flag_controls_path(self, fmt, rng):
        model = make_model(rng, fmt)
        assert FLAGS.batched_seeds  # default on
        assert len(model._meta_adapters) > 1  # fused path actually exercised
