"""Benchmark-harness configuration.

Every bench prints the table/figure it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
evaluation artifacts.  ``REPRO_BENCH_SCALE=quick`` (the default for CI)
shrinks the Table I run; set ``REPRO_BENCH_SCALE=paper`` for the
full-scale multi-seed version with significance testing.

``REPRO_BENCH_JOBS=N`` shards the grid benches (Table I, the rank
ablation) over N worker processes via :mod:`repro.runtime` — results are
bit-identical to the serial default (``1``).
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()
