#!/usr/bin/env sh
# CI smoke for the performance harness: run the bench_smoke-marked tests
# (schema round-trip), then produce real BENCH_*.json records at tiny scale.
#
# Usage: scripts/bench_smoke.sh [out_dir]   (out_dir defaults to .)
set -eu

cd "$(dirname "$0")/.."
out_dir="${1:-.}"

PYTHONPATH=src python -m pytest tests/bench -m bench_smoke -q
# --jobs 2 also times the parallel Table I grid runtime and records the
# `parallel` section (serial-vs-parallel wall-clock + bit-identity check).
PYTHONPATH=src python -m repro bench --out "$out_dir" --scale tiny --repeats 2 --jobs 2
