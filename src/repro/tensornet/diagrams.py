"""ASCII tensor diagrams (Fig. 1).

The paper's Figure 1 introduces tensor-diagram notation: a node per
tensor, one leg per index, legs joined when contracted.  This module
renders a :class:`~repro.tensornet.network.TensorNetwork` as text — used
by the Figure 1 bench and the quickstart example to show the LoRA,
Conv-LoRA and MetaLoRA networks in diagram form.
"""

from __future__ import annotations

from repro.tensornet.network import TensorNetwork


def render_diagram(network: TensorNetwork) -> str:
    """A multi-line textual rendering of the network.

    Bonds are drawn as ``A ──label(dim)── B``; free legs as
    ``A ──label(dim)──○`` (the open circle marks a dangling edge).
    """
    lines = []
    for name in network.names:
        labels = network._labels[name]
        dims = network._tensors[name].shape
        legs = ", ".join(f"{lab}({dim})" for lab, dim in zip(labels, dims))
        lines.append(f"{name}[{legs}]  (order {len(labels)})")
    lines.append("")
    seen = set()
    for name in network.names:
        for label in network._labels[name]:
            if label in seen:
                continue
            seen.add(label)
            holders = network._holders(label)
            dim = network._dims[label]
            if len(holders) == 2:
                lines.append(f"  {holders[0]} ──{label}({dim})── {holders[1]}")
            else:
                lines.append(f"  {holders[0]} ──{label}({dim})──○")
    return "\n".join(lines)


def describe_order(network: TensorNetwork) -> dict[str, str]:
    """Classify each tensor as vector / matrix / higher-order (Fig. 1 roles)."""
    kinds = {1: "vector (1st-order tensor)", 2: "matrix (2nd-order tensor)"}
    out = {}
    for name in network.names:
        order = network.order(name)
        out[name] = kinds.get(order, f"{order}th-order tensor")
    return out
