"""Tests for run directories: manifest, per-cell checkpoints, adoption."""

from __future__ import annotations

import json
import shutil
from dataclasses import replace

import pytest

from repro.errors import CheckpointError, ConfigError
from repro.eval.protocol import Table1Config, Table1Row
from repro.runtime.rundir import (
    RUNDIR_VERSION,
    RunDir,
    config_fingerprint,
    resolve_run_dirs,
)


@pytest.fixture()
def config():
    return Table1Config().quick()


def _row(method="lora"):
    return Table1Row(method, {5: 0.8125, 10: 0.71875})


class TestFingerprint:
    def test_stable_across_calls(self, config):
        assert config_fingerprint(config) == config_fingerprint(config)

    def test_sensitive_to_any_knob(self, config):
        nudged = replace(config, adapt_episodes=config.adapt_episodes + 1)
        assert config_fingerprint(config) != config_fingerprint(nudged)


class TestManifest:
    def test_create_writes_versioned_manifest(self, config, tmp_path):
        rundir = RunDir.create(tmp_path / "run", config, (0, 1))
        manifest = json.loads((tmp_path / "run" / "manifest.json").read_text())
        # Tuples in the in-memory manifest land as JSON lists on disk.
        assert manifest == json.loads(json.dumps(rundir.manifest, default=list))
        assert manifest["format_version"] == RUNDIR_VERSION
        assert manifest["kind"] == "table1_run"
        assert manifest["config_fingerprint"] == config_fingerprint(config)
        assert manifest["grid"]["backbone"] == config.backbone
        assert manifest["grid"]["methods"] == list(config.methods)
        assert manifest["grid"]["seeds"] == [0, 1]

    def test_adopts_matching_existing_dir(self, config, tmp_path):
        first = RunDir.create(tmp_path / "run", config, (0,))
        first.save_cell(0, "lora", _row())
        again = RunDir.create(tmp_path / "run", config, (0,))
        assert again.completed_cells() == {(0, "lora")}

    def test_adoption_unions_new_seeds(self, config, tmp_path):
        RunDir.create(tmp_path / "run", config, (0,))
        again = RunDir.create(tmp_path / "run", config, (2, 1))
        assert again.manifest["grid"]["seeds"] == [0, 1, 2]

    def test_different_config_refused(self, config, tmp_path):
        RunDir.create(tmp_path / "run", config, (0,))
        other = replace(config, adapt_episodes=config.adapt_episodes + 1)
        with pytest.raises(CheckpointError, match="different\\s+configuration"):
            RunDir.create(tmp_path / "run", other, (0,))

    def test_open_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="not a run directory"):
            RunDir.open(tmp_path)

    def test_open_corrupt_manifest_rejected(self, config, tmp_path):
        RunDir.create(tmp_path / "run", config, (0,))
        (tmp_path / "run" / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt manifest"):
            RunDir.open(tmp_path / "run")

    def test_open_foreign_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"kind": "something_else"}')
        with pytest.raises(CheckpointError, match="not a table1_run"):
            RunDir.open(tmp_path)

    def test_open_other_version_rejected(self, config, tmp_path):
        rundir = RunDir.create(tmp_path / "run", config, (0,))
        manifest = dict(rundir.manifest, format_version=RUNDIR_VERSION + 1)
        (tmp_path / "run" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="format version"):
            RunDir.open(tmp_path / "run")


class TestCells:
    def test_cell_round_trip_is_exact(self, config, tmp_path):
        rundir = RunDir.create(tmp_path / "run", config, (0,))
        row = _row("multi_lora")
        rundir.save_cell(0, "multi_lora", row)
        loaded = rundir.load_cell(0, "multi_lora")
        assert loaded.method == "multi_lora"
        # Bit-exact: accuracies ride as float64, never reformatted.
        assert loaded.accuracy_by_k == row.accuracy_by_k

    def test_completed_cells_lists_saved_keys_only(self, config, tmp_path):
        rundir = RunDir.create(tmp_path / "run", config, (0, 3))
        rundir.save_cell(0, "lora", _row())
        rundir.save_cell(3, "original", _row("original"))
        (tmp_path / "run" / "cells" / "junk.txt").write_text("x")
        (tmp_path / "run" / "cells" / "sbad__lora.npz").write_text("x")
        assert rundir.completed_cells() == {(0, "lora"), (3, "original")}

    def test_load_completed_restricts_to_the_grid(self, config, tmp_path):
        rundir = RunDir.create(tmp_path / "run", config, (0, 1))
        rundir.save_cell(0, "lora", _row())
        rundir.save_cell(1, "lora", _row())
        loaded = rundir.load_completed((0,), ("lora", "original"))
        assert set(loaded) == {(0, "lora")}

    def test_misfiled_cell_rejected(self, config, tmp_path):
        rundir = RunDir.create(tmp_path / "run", config, (0, 1))
        rundir.save_cell(0, "lora", _row())
        shutil.copy(rundir.cell_path(0, "lora"), rundir.cell_path(1, "lora"))
        with pytest.raises(CheckpointError, match="indexed as"):
            rundir.load_cell(1, "lora")

    def test_truncated_cell_rejected(self, config, tmp_path):
        rundir = RunDir.create(tmp_path / "run", config, (0,))
        path = rundir.save_cell(0, "lora", _row())
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(CheckpointError):
            rundir.load_cell(0, "lora")


class TestResolveRunDirs:
    def test_neither(self):
        assert resolve_run_dirs(None, None) == (None, False)

    def test_out_dir_means_fresh(self, tmp_path):
        assert resolve_run_dirs(tmp_path / "r", None) == (str(tmp_path / "r"), False)

    def test_resume_implies_out_dir(self, tmp_path):
        assert resolve_run_dirs(None, tmp_path / "r") == (str(tmp_path / "r"), True)

    def test_matching_pair_resumes(self, tmp_path):
        root, resuming = resolve_run_dirs(tmp_path / "r", tmp_path / "r")
        assert (root, resuming) == (str(tmp_path / "r"), True)

    def test_conflicting_pair_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="different directories"):
            resolve_run_dirs(tmp_path / "a", tmp_path / "b")
