"""Tests for the versioned artifact format (save_artifact / load_artifact)."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.utils.serialization as serialization
from repro.errors import CheckpointError
from repro.utils.serialization import (
    ARTIFACT_VERSION,
    build_manifest,
    load_arrays,
    load_artifact,
    read_manifest,
    save_arrays,
    save_artifact,
)


def _arrays():
    return {
        "weight": np.arange(12, dtype=np.float32).reshape(3, 4),
        "bias": np.array([1.5, -2.5], dtype=np.float64),
    }


class TestRoundTrip:
    def test_arrays_and_manifest_round_trip(self, tmp_path):
        path = tmp_path / "a.npz"
        written = save_artifact(path, _arrays(), kind="demo", meta={"rank": 4})
        arrays, manifest = load_artifact(path, kind="demo")
        assert manifest == written
        assert manifest["format_version"] == ARTIFACT_VERSION
        assert manifest["kind"] == "demo"
        assert manifest["meta"] == {"rank": 4}
        for name, original in _arrays().items():
            assert arrays[name].dtype == original.dtype
            np.testing.assert_array_equal(arrays[name], original)

    def test_manifest_indexes_every_array(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, _arrays(), kind="demo")
        manifest = read_manifest(path)
        assert manifest["arrays"] == {
            "weight": {"shape": [3, 4], "dtype": "float32"},
            "bias": {"shape": [2], "dtype": "float64"},
        }

    def test_load_arrays_hides_the_manifest_entry(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, _arrays(), kind="demo")
        assert set(load_arrays(path)) == {"weight", "bias"}

    def test_empty_artifact_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_artifact(tmp_path / "a.npz", {}, kind="demo")

    def test_reserved_array_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_artifact(
                tmp_path / "a.npz", {"__manifest__": np.zeros(2)}, kind="demo"
            )


class TestValidation:
    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, _arrays(), kind="adapter")
        with pytest.raises(CheckpointError, match="kind 'adapter', expected"):
            load_artifact(path, kind="table1_cell")

    def test_kind_none_skips_the_kind_check(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, _arrays(), kind="adapter")
        __, manifest = load_artifact(path)
        assert manifest["kind"] == "adapter"

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        save_arrays(path, _arrays())  # raw layer: no manifest
        with pytest.raises(CheckpointError, match="not a versioned artifact"):
            read_manifest(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, _arrays(), kind="demo")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="cannot read artifact"):
            read_manifest(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read artifact"):
            read_manifest(tmp_path / "nope.npz")

    def test_version_from_the_future_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "a.npz"
        save_artifact(path, _arrays(), kind="demo")
        monkeypatch.setattr(serialization, "ARTIFACT_VERSION", ARTIFACT_VERSION + 1)
        with pytest.raises(CheckpointError, match="format version"):
            read_manifest(path)

    def _write_with_manifest(self, path, arrays, manifest):
        payload = dict(arrays)
        payload["__manifest__"] = np.array(json.dumps(manifest))
        np.savez_compressed(path, **payload)

    def test_manifest_array_index_mismatch_rejected(self, tmp_path):
        path = tmp_path / "a.npz"
        manifest = build_manifest({"ghost": np.zeros(3)}, kind="demo")
        self._write_with_manifest(path, {"weight": np.zeros(3)}, manifest)
        with pytest.raises(CheckpointError, match="does not match its manifest"):
            load_artifact(path)

    def test_shape_drift_rejected(self, tmp_path):
        path = tmp_path / "a.npz"
        manifest = build_manifest({"weight": np.zeros((2, 2))}, kind="demo")
        self._write_with_manifest(
            path, {"weight": np.zeros((3, 3))}, manifest
        )
        with pytest.raises(CheckpointError, match="shape"):
            load_artifact(path)

    def test_dtype_drift_rejected(self, tmp_path):
        path = tmp_path / "a.npz"
        manifest = build_manifest(
            {"weight": np.zeros(4, dtype=np.float32)}, kind="demo"
        )
        self._write_with_manifest(
            path, {"weight": np.zeros(4, dtype=np.float64)}, manifest
        )
        with pytest.raises(CheckpointError, match="dtype"):
            load_artifact(path)

    def test_garbage_manifest_entry_rejected(self, tmp_path):
        path = tmp_path / "a.npz"
        self._write_with_manifest(path, {"weight": np.zeros(2)}, manifest="{{{")
        with pytest.raises(CheckpointError, match="manifest"):
            read_manifest(path)
