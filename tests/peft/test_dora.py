"""Tests for the DoRA extension adapter."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import AdapterError
from repro.nn import Conv2d, Linear
from repro.peft import DoRALinear


class TestDoRA:
    def test_identity_at_init(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = DoRALinear(base, rank=2, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data, atol=1e-5)

    def test_magnitude_initialized_to_column_norms(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = DoRALinear(base, rank=2, rng=rng)
        assert np.allclose(
            adapter.magnitude.data, np.linalg.norm(base.weight.data, axis=0), atol=1e-6
        )

    def test_forward_matches_delta_weight(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = DoRALinear(base, rank=2, rng=rng)
        adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape).astype(np.float32)
        adapter.magnitude.data[...] *= 1.5
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        expected = x.data @ (base.weight.data + adapter.delta_weight()) + base.bias.data
        assert np.allclose(adapter(x).data, expected, atol=1e-4)

    def test_magnitude_scales_output_columns(self, rng):
        base = Linear(6, 5, bias=False, rng=rng)
        adapter = DoRALinear(base, rank=2, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        before = adapter(x).data.copy()
        adapter.magnitude.data[...] *= 2.0
        assert np.allclose(adapter(x).data, 2.0 * before, atol=1e-4)

    def test_direction_normalized_unit_columns(self, rng):
        base = Linear(6, 5, rng=rng)
        adapter = DoRALinear(base, rank=2, rng=rng)
        adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape).astype(np.float32)
        effective = base.weight.data + adapter.delta_weight()
        norms = np.linalg.norm(effective, axis=0)
        assert np.allclose(norms, adapter.magnitude.data, atol=1e-4)

    def test_gradients_flow_to_all_adapter_params(self, rng):
        adapter = DoRALinear(Linear(6, 5, rng=rng), rank=2, rng=rng)
        x = Tensor(rng.normal(size=(3, 6)).astype(np.float32))
        adapter(x).sum().backward()
        assert adapter.lora_a.grad is not None
        assert adapter.lora_b.grad is not None
        assert adapter.magnitude.grad is not None
        assert adapter.base.weight.grad is None

    def test_validation(self, rng):
        with pytest.raises(AdapterError):
            DoRALinear(Conv2d(3, 3, 3, rng=rng), rank=2)
        with pytest.raises(AdapterError):
            DoRALinear(Linear(4, 4, rng=rng), rank=0)
