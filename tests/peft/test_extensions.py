"""Tests for the extension adapters (TT-LoRA, bottleneck) and checkpointing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import AdapterError
from repro.nn import Conv2d, Linear, ReLU, Sequential
from repro.peft import (
    BottleneckAdapter,
    TTLoRALinear,
    adapter_state_dict,
    attach,
    iter_adapters,
    load_adapter,
    load_adapter_state_dict,
    save_adapter,
)


class TestTTLoRA:
    def test_identity_at_init(self, rng):
        base = Linear(12, 10, rng=rng)
        adapter = TTLoRALinear(base, rank=2, rng=rng)
        x = Tensor(rng.normal(size=(4, 12)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)

    def test_forward_matches_materialized_delta(self, rng):
        base = Linear(12, 10, rng=rng)
        adapter = TTLoRALinear(base, rank=3, rng=rng)
        adapter.core4.data[...] = rng.normal(size=adapter.core4.shape).astype(np.float32)
        x = Tensor(rng.normal(size=(4, 12)).astype(np.float32))
        expected = base(x).data + x.data @ adapter.delta_weight()
        assert np.allclose(adapter(x).data, expected, atol=1e-4)

    def test_grid_factorization(self, rng):
        adapter = TTLoRALinear(Linear(12, 10, rng=rng), rank=2, rng=rng)
        assert int(np.prod(adapter.in_grid)) == 12
        assert int(np.prod(adapter.out_grid)) == 10

    def test_3d_input(self, rng):
        adapter = TTLoRALinear(Linear(12, 10, rng=rng), rank=2, rng=rng)
        adapter.core4.data[...] = rng.normal(size=adapter.core4.shape).astype(np.float32)
        x = Tensor(rng.normal(size=(2, 5, 12)).astype(np.float32))
        assert adapter(x).shape == (2, 5, 10)

    def test_parameter_count_scales_with_rank(self, rng):
        small = TTLoRALinear(Linear(16, 16, rng=rng), rank=1, rng=rng)
        large = TTLoRALinear(Linear(16, 16, rng=rng), rank=4, rng=rng)
        assert large.extra_parameter_count() > small.extra_parameter_count()

    def test_gradients_flow(self, rng):
        adapter = TTLoRALinear(Linear(12, 10, rng=rng), rank=2, rng=rng)
        x = Tensor(rng.normal(size=(3, 12)).astype(np.float32))
        adapter(x).sum().backward()
        for core in (adapter.core1, adapter.core2, adapter.core3, adapter.core4):
            assert core.grad is not None
        assert adapter.base.weight.grad is None

    def test_wrong_base_type(self, rng):
        with pytest.raises(AdapterError):
            TTLoRALinear(Conv2d(3, 3, 3, rng=rng), rank=2)

    def test_merge_via_delta_weight(self, rng):
        base = Linear(12, 10, rng=rng)
        adapter = TTLoRALinear(base, rank=2, rng=rng)
        adapter.core4.data[...] = rng.normal(size=adapter.core4.shape).astype(np.float32)
        x = Tensor(rng.normal(size=(4, 12)).astype(np.float32))
        before = adapter(x).data.copy()
        merged = adapter.merge()
        assert np.allclose(merged(x).data, before, atol=1e-4)


class TestBottleneck:
    def test_identity_at_init(self, rng):
        base = Linear(8, 6, rng=rng)
        adapter = BottleneckAdapter(base, bottleneck=3, rng=rng)
        x = Tensor(rng.normal(size=(4, 8)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)

    def test_nonlinear_after_training_signal(self, rng):
        adapter = BottleneckAdapter(Linear(8, 6, rng=rng), bottleneck=3, rng=rng)
        adapter.up.data[...] = rng.normal(size=adapter.up.shape).astype(np.float32)
        x = Tensor(rng.normal(size=(4, 8)).astype(np.float32))
        assert not np.allclose(adapter(x).data, adapter.base(x).data)

    def test_parameter_budget(self, rng):
        adapter = BottleneckAdapter(Linear(32, 32, rng=rng), bottleneck=4, rng=rng)
        assert adapter.extra_parameter_count() < 32 * 32

    def test_no_static_delta(self, rng):
        """Bottleneck adds a nonlinear block — there is no ΔW to merge."""
        adapter = BottleneckAdapter(Linear(8, 6, rng=rng), bottleneck=3, rng=rng)
        with pytest.raises(AdapterError):
            adapter.delta_weight()

    def test_validation(self, rng):
        with pytest.raises(AdapterError):
            BottleneckAdapter(Linear(8, 6, rng=rng), bottleneck=0)


class TestCheckpoint:
    def _adapted_net(self, rng):
        net = Sequential(Linear(6, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))
        attach(net, "lora", rank=2, targets=(Linear,), rng=rng)
        for __, adapter in iter_adapters(net):
            adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape).astype(
                np.float32
            )
        return net

    def test_state_contains_only_trainable(self, rng):
        net = self._adapted_net(rng)
        state = adapter_state_dict(net)
        assert all("lora" in key for key in state)

    def test_roundtrip_restores_outputs(self, rng, tmp_path):
        net = self._adapted_net(rng)
        x = Tensor(rng.normal(size=(3, 6)).astype(np.float32))
        before = net(x).data.copy()
        path = tmp_path / "adapter.npz"
        saved = save_adapter(net, path)
        assert saved > 0
        for __, adapter in iter_adapters(net):
            adapter.lora_b.data[...] = 0.0
        load_adapter(net, path)
        assert np.allclose(net(x).data, before)

    def test_checkpoint_much_smaller_than_model(self, rng):
        net = self._adapted_net(rng)
        state = adapter_state_dict(net)
        adapter_scalars = sum(v.size for v in state.values())
        assert adapter_scalars < net.parameter_count() / 2

    def test_mismatch_rejected(self, rng):
        net = self._adapted_net(rng)
        state = adapter_state_dict(net)
        state["ghost"] = np.zeros(3)
        with pytest.raises(AdapterError, match="unexpected"):
            load_adapter_state_dict(net, state)

    def test_shape_mismatch_rejected(self, rng):
        net = self._adapted_net(rng)
        state = adapter_state_dict(net)
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(AdapterError, match="expected"):
            load_adapter_state_dict(net, state)

    def test_frozen_model_has_nothing_to_save(self, rng):
        net = Sequential(Linear(4, 4, rng=rng))
        net.freeze()
        with pytest.raises(AdapterError):
            adapter_state_dict(net)

    def test_works_with_meta_model(self, rng, tmp_path):
        from repro.models import FeatureExtractor, resnet_small
        from repro.peft import MetaLoRAModel

        backbone = resnet_small(4, rng)
        result = attach(backbone, "meta_tr", rank=2, targets=(Linear,), rng=rng)
        model = MetaLoRAModel(
            backbone,
            FeatureExtractor(resnet_small(4, np.random.default_rng(3))),
            rng=rng,
            adapters=result,
        )
        path = tmp_path / "meta_adapter.npz"
        save_adapter(model, path)
        load_adapter(model, path)  # must round-trip without error


class TestCheckpointManifest:
    """The on-disk checkpoint is a versioned artifact; loads validate it."""

    def _adapted_net(self, rng):
        net = Sequential(Linear(6, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))
        attach(net, "lora", rank=2, targets=(Linear,), rng=rng)
        return net

    def test_manifest_records_families_and_ranks(self, rng, tmp_path):
        from repro.utils.serialization import ARTIFACT_VERSION, read_manifest

        net = self._adapted_net(rng)
        path = tmp_path / "adapter.npz"
        save_adapter(net, path)
        manifest = read_manifest(path)
        assert manifest["format_version"] == ARTIFACT_VERSION
        assert manifest["kind"] == "adapter"
        meta = manifest["meta"]
        assert meta["families"] == ["LoRALinear"]
        assert meta["ranks"] == [2]
        # The manifest also embeds the shared state_digest identity,
        # which the serving registry reuses as its program-cache key.
        from repro.peft import state_digest

        assert meta["digest"] == state_digest(
            adapter_state_dict(net),
            extra={"families": meta["families"], "ranks": meta["ranks"]},
        )
        assert all(
            "shape" in spec and "dtype" in spec
            for spec in manifest["arrays"].values()
        )

    def test_plain_npz_rejected(self, rng, tmp_path):
        from repro.errors import CheckpointError
        from repro.utils.serialization import save_arrays

        net = self._adapted_net(rng)
        path = tmp_path / "legacy.npz"
        save_arrays(path, adapter_state_dict(net))  # no manifest
        with pytest.raises(CheckpointError, match="not a versioned artifact"):
            load_adapter(net, path)

    def test_wrong_kind_rejected(self, rng, tmp_path):
        from repro.errors import CheckpointError
        from repro.utils.serialization import save_artifact

        net = self._adapted_net(rng)
        path = tmp_path / "cell.npz"
        save_artifact(path, adapter_state_dict(net), kind="table1_cell")
        with pytest.raises(CheckpointError, match="kind"):
            load_adapter(net, path)

    def test_corrupted_checkpoint_rejected(self, rng, tmp_path):
        from repro.errors import CheckpointError

        net = self._adapted_net(rng)
        path = tmp_path / "adapter.npz"
        save_adapter(net, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(CheckpointError, match="cannot read artifact"):
            load_adapter(net, path)

    def test_model_mismatch_surfaces_as_checkpoint_error(self, rng, tmp_path):
        from repro.errors import CheckpointError

        net = self._adapted_net(rng)
        path = tmp_path / "adapter.npz"
        save_adapter(net, path)
        other = Sequential(Linear(6, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))
        attach(other, "lora", rank=3, targets=(Linear,), rng=rng)  # wrong rank
        with pytest.raises(CheckpointError, match="does not fit this model"):
            load_adapter(other, path)
