"""Command-line interface: regenerate the paper's artifacts from a shell.

Usage::

    python -m repro table1 --backbone resnet --seeds 0 1 2
    python -m repro table1 --backbone mixer --quick
    python -m repro table1 --quick --seeds 0 1 2 --jobs 4
    python -m repro table1 --seeds 0 1 2 --jobs 4 --out-dir runs/t1
    python -m repro table1 --resume runs/t1          # rerun only missing cells
    python -m repro robustness --smoke --severities 0 3
    python -m repro robustness --seeds 0 1 --jobs 4 --out-dir runs/rob
    python -m repro trace runs/t1                    # span-tree report
    python -m repro inspect --method meta_lora_tr
    python -m repro compile --method meta_lora_tr --precision f32 --describe
    python -m repro figures
    python -m repro bench --out . --jobs 4
    python -m repro bench --suite load --load-duration 2
    python -m repro serve --port 7070
    python -m repro serve --selftest

``table1`` regenerates the paper's Table I (with t-test markers when more
than one seed is given); with ``--out-dir`` every completed cell is
checkpointed into a run directory and ``--resume`` picks a killed run
back up, re-running only the missing cells — bit-identical to an
uninterrupted run.  A run directory also gets the observability layer's
``trace.jsonl`` span export, which ``trace`` renders as a span-tree
report (slowest spans, per-phase breakdown — see docs/observability.md).
``robustness`` runs the corruption-shift matrix (methods × corruptions ×
severities — see docs/robustness.md) over the same run-dir/resume
machinery; severity-0 cells are bit-identical to the clean Table I
evaluation.  ``inspect`` prints a method's adapter layout and
parameter budget; ``compile`` lowers a method into its serving program
and prints the step listing (``--describe`` adds per-step output
dtypes/shapes — the view of what the fusion pass and precision tier
actually produced); ``figures`` runs the Figure 1-3 numerical checks;
``bench`` times the optimized hot paths against the reference
implementation and emits ``BENCH_autograd.json`` / ``BENCH_table1.json``
/ ``BENCH_serve.json`` (``--suite`` selects one; ``--suite load`` is
the opt-in end-to-end traffic bench emitting ``BENCH_load.json``);
``serve`` binds the asyncio TCP frontend (continuous batching,
admission control, SLO-aware ordering — see docs/serving_frontend.md)
over a demo multi-tenant fleet, with ``--selftest`` doing one
round-trip per tenant asserted bit-identical to in-process dispatch.

Flags shared between subcommands (``--backbone``, ``--jobs``, the
fault-tolerance set ``--max-retries`` / ``--cell-timeout``) are defined
once on parent parsers, so their names, types and help stay consistent
everywhere they appear.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from repro.config import PAPER, PAPER_MIXER
from repro.errors import ReproError
from repro.eval.protocol import (
    METHODS,
    build_adapted_model,
    build_backbone,
    format_table1,
    run_table1,
)
from repro.eval.significance import two_sided_t_test
from repro.peft.counts import adapter_parameter_table, count_parameters, format_table
from repro.utils.rng import new_rng


def _table1_config(args: argparse.Namespace):
    config = PAPER if args.backbone == "resnet" else PAPER_MIXER
    if getattr(args, "smoke", False):
        # Test-suite scale (seconds, not minutes): what CI smoke runs use.
        return config.quick()
    if args.quick:
        config = replace(
            config,
            num_tasks=9,
            adapt_episodes=150,
            support_per_task=40,
            query_per_task=40,
            pretrain_epochs=4,
        )
    return config


def _print_significance(config, rows_by_seed) -> None:
    baselines = [m for m in config.methods if not m.startswith("meta")]
    print("\nsignificance vs best baseline (two-sided paired t-test):")
    for k in config.ks:
        per_method = {
            m: [rows[m].accuracy_by_k[k] for rows in rows_by_seed]
            for m in config.methods
        }
        best = max(baselines, key=lambda m: float(np.mean(per_method[m])))
        for meta in ("meta_lora_cp", "meta_lora_tr"):
            result = two_sided_t_test(per_method[meta], per_method[best])
            marker = "*" if result.significant and result.statistic > 0 else ""
            print(f"  K={k}: {meta} vs {best}: p={result.p_value:.3f} {marker}")


def _table1(args: argparse.Namespace) -> int:
    from repro.runtime import fork_available, resolve_jobs, run_table1_grid

    config = _table1_config(args)
    jobs = resolve_jobs(args.jobs)
    use_runtime = (
        jobs > 1
        or args.out_dir is not None
        or args.resume is not None
        or args.max_retries > 0
        or args.cell_timeout is not None
    )
    failures = []
    if use_runtime:
        if jobs > 1 and not fork_available():
            print("(fork unavailable on this platform; falling back to jobs=1)")
        cells = len(args.seeds) * len(config.methods)
        print(
            f"running {cells} cells ({len(args.seeds)} seed(s) x "
            f"{len(config.methods)} methods) on {jobs} worker(s) ...",
            flush=True,
        )
        # Non-strict: a failed cell degrades the report instead of
        # aborting the grid — completed cells are still checkpointed
        # (with --out-dir) and printed, with failures marked.
        grid = run_table1_grid(
            config,
            tuple(args.seeds),
            jobs=jobs,
            strict=False,
            out_dir=args.out_dir,
            resume=args.resume,
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
        )
        if grid.restored:
            print(
                f"resumed {len(grid.restored)} completed cell(s) from "
                f"{grid.run_dir}; re-ran only the missing ones"
            )
        rows_by_seed = grid.rows_by_seed
        failures = grid.failures
    else:
        rows_by_seed = []
        for seed in args.seeds:
            print(f"running seed {seed} ...", flush=True)
            rows_by_seed.append(run_table1(config, seed))
    print()
    print(format_table1(rows_by_seed, config))
    if failures:
        print(f"\nWARNING: partial results — {len(failures)} cell(s) failed:")
        for failure in failures:
            print(f"  {failure}")
        if args.out_dir is not None or args.resume is not None:
            rerun_dir = args.resume if args.resume is not None else args.out_dir
            print(f"fix the cause and rerun with --resume {rerun_dir}")
        return 1
    if len(args.seeds) >= 2:
        _print_significance(config, rows_by_seed)
    return 0


def _robustness(args: argparse.Namespace) -> int:
    from repro.eval.robustness import RobustnessConfig, format_robustness_grid
    from repro.runtime import fork_available, resolve_jobs, run_robustness_grid

    table1 = PAPER if args.backbone == "resnet" else PAPER_MIXER
    if args.smoke:
        table1 = table1.quick()
    overrides = {}
    if args.corruptions is not None:
        overrides["corruptions"] = tuple(args.corruptions)
    if args.severities is not None:
        overrides["severities"] = tuple(args.severities)
    config = RobustnessConfig(table1=table1, **overrides)
    jobs = resolve_jobs(args.jobs)
    if jobs > 1 and not fork_available():
        print("(fork unavailable on this platform; falling back to jobs=1)")
    seeds = tuple(args.seeds)
    cells = (
        len(seeds)
        * len(config.table1.methods)
        * len(config.corruptions)
        * len(config.severities)
    )
    print(
        f"running {cells} cells ({len(seeds)} seed(s) x "
        f"{len(config.table1.methods)} methods x {len(config.corruptions)} "
        f"corruptions x {len(config.severities)} severities) on "
        f"{jobs} worker(s) ...",
        flush=True,
    )
    # Non-strict, like table1: a failed cell degrades the report instead
    # of aborting the grid; completed cells are still checkpointed.
    grid = run_robustness_grid(
        config,
        seeds,
        jobs=jobs,
        strict=False,
        out_dir=args.out_dir,
        resume=args.resume,
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
    )
    if grid.restored:
        print(
            f"resumed {len(grid.restored)} completed cell(s) from "
            f"{grid.run_dir}; re-ran only the missing ones"
        )
    print()
    print(format_robustness_grid(config, seeds, grid.cells))
    if grid.failures:
        print(f"\nWARNING: partial results — {len(grid.failures)} cell(s) failed:")
        for failure in grid.failures:
            print(f"  {failure}")
        if args.out_dir is not None or args.resume is not None:
            rerun_dir = args.resume if args.resume is not None else args.out_dir
            print(f"fix the cause and rerun with --resume {rerun_dir}")
        return 1
    return 0


def _inspect(args: argparse.Namespace) -> int:
    config = PAPER if args.backbone == "resnet" else PAPER_MIXER
    rng = new_rng(args.seed)
    state = build_backbone(config, rng).state_dict()
    model = build_adapted_model(args.method, config, state, rng)
    counts = count_parameters(model)
    print(f"method:   {args.method}")
    print(f"backbone: {args.backbone}")
    print(
        f"params:   total={counts.total:,}  trainable={counts.trainable:,} "
        f"({100 * counts.trainable_fraction:.2f}%)"
    )
    backbone = getattr(model, "backbone", model)
    rows = adapter_parameter_table(backbone)
    if rows:
        print()
        print(format_table(rows))
    return 0


def _compile(args: argparse.Namespace) -> int:
    from repro.serve import compile_features

    config = PAPER if args.backbone == "resnet" else PAPER_MIXER
    rng = new_rng(args.seed)
    state = build_backbone(config, rng).state_dict()
    model = build_adapted_model(args.method, config, state, rng)
    program = compile_features(model, precision=args.precision)
    # One dummy batch resolves every step's output dtype/shape so the
    # listing shows what each kernel actually produces under this tier.
    program.run(
        np.zeros((1, 3, config.image_size, config.image_size), dtype=np.float32)
    )
    counters = program.counters()
    print(f"method:    {args.method}")
    print(f"backbone:  {args.backbone}")
    print(f"precision: {program.precision}")
    print(
        f"steps:     {len(program)}  "
        f"(fusion eliminated {counters['fusion_eliminated']}, "
        f"quantized {counters['quantized']} weight matrices)"
    )
    if args.describe:
        print()
        for line in program.describe():
            print(line)
    return 0


def _figures(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(0)
    from repro.autograd import Tensor, conv2d
    from repro.tensornet import (
        conv1d_direct,
        conv1d_via_dummy,
        conv2d_via_dummy,
    )

    print("Fig. 2 — dummy-tensor convolution identity:")
    worst = 0.0
    for stride, padding in [(1, 0), (1, 1), (2, 1), (3, 2)]:
        signal, kernel = rng.normal(size=15), rng.normal(size=4)
        gap = np.abs(
            conv1d_via_dummy(signal, kernel, stride, padding)
            - conv1d_direct(signal, kernel, stride, padding)
        ).max()
        worst = max(worst, float(gap))
    print(f"  1-D worst gap over sweep: {worst:.2e}")
    x = rng.normal(size=(2, 3, 10, 10))
    w = rng.normal(size=(3, 3, 3, 4))
    ours = conv2d(Tensor(x.astype(np.float64)), Tensor(w.astype(np.float64)), padding=1).data
    gap = np.abs(ours - conv2d_via_dummy(x, w, 1, 1)).max()
    print(f"  2-D gap (stride 1, pad 1):  {gap:.2e}")

    print("\nFig. 3 — Conv-LoRA factorization identity:")
    from repro.nn import Conv2d
    from repro.peft import ConvLoRA

    base = Conv2d(4, 8, 3, padding=1, rng=rng)
    adapter = ConvLoRA(base, rank=2, rng=rng)
    adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape).astype(np.float32)
    xin = Tensor(rng.normal(size=(2, 4, 8, 8)).astype(np.float32))
    factored = adapter(xin).data
    delta = Tensor(adapter.delta_weight().astype(np.float32))
    materialized = base(xin).data + conv2d(xin, delta, padding=1).data
    print(f"  gap: {np.abs(factored - materialized).max():.2e}")
    print(
        f"  params: adapter={adapter.extra_parameter_count()} vs "
        f"full ΔW={3 * 3 * 4 * 8}"
    )
    return 0


def _trace(args: argparse.Namespace) -> int:
    from repro.obs import render_trace_target

    print(render_trace_target(args.target, max_depth=args.depth, top=args.top))
    return 0


def _report(args: argparse.Namespace) -> int:
    import glob
    import os

    from repro.eval.protocol import METHOD_LABELS
    from repro.eval.reporting import load_record, render_markdown

    paths = sorted(glob.glob(os.path.join(args.results_dir, "table1_*.json")))
    if not paths:
        print(f"no table1_*.json records under {args.results_dir!r}; "
              "run the Table I bench first")
        return 1
    for path in paths:
        record = load_record(path)
        print(f"## Table I — {record.backbone} (seeds {record.seeds})\n")
        print(render_markdown(record, METHOD_LABELS))
        if record.significance:
            baselines = [m for m in record.accuracy if not m.startswith("meta")]
            print("\nt-test p-values vs best static baseline "
                  "(* = significantly better):")
            for method, per_k in record.significance.items():
                cells = []
                for k, p in sorted(per_k.items(), key=lambda kv: int(kv[0])):
                    best = max(baselines, key=lambda m: record.accuracy[m][k])
                    better = record.accuracy[method][k] > record.accuracy[best][k]
                    star = "*" if (p < 0.05 and better) else ""
                    cells.append(f"K={k}: {p:.3f}{star}")
                print(f"  {METHOD_LABELS.get(method, method)}: {', '.join(cells)}")
        print()
    return 0


def _bench(args: argparse.Namespace) -> int:
    if args.repeats < 1:
        print(f"repro bench: error: --repeats must be >= 1, got {args.repeats}")
        return 2
    if args.tenants < 0 or args.tenants in (1, 2):
        print(f"repro bench: error: --tenants must be 0 or >= 3, got {args.tenants}")
        return 2
    if args.load_duration <= 0:
        print(
            f"repro bench: error: --load-duration must be > 0, "
            f"got {args.load_duration}"
        )
        return 2
    from repro.bench import (
        _BENCH_SUITES,
        _DEFAULT_SUITES,
        format_bench_record,
        write_bench_records,
    )

    # ``all`` is the default sweep; the load suite binds a TCP port and
    # runs wall-clock traffic, so it only runs when named explicitly.
    suites = _DEFAULT_SUITES if args.suite == "all" else (args.suite,)
    if args.out:
        import json

        paths = write_bench_records(
            args.out,
            scale=args.scale,
            repeats=args.repeats,
            jobs=args.jobs,
            suites=suites,
            tenants=args.tenants,
            load_duration=args.load_duration,
            shards=args.shards,
        )
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                print(format_bench_record(json.load(handle)))
            print(f"wrote {path}\n")
    else:
        for kind in suites:
            kwargs: dict[str, object] = {}
            if kind == "table1":
                kwargs["jobs"] = args.jobs
            elif kind == "serve":
                kwargs["tenants"] = args.tenants
            elif kind == "load":
                kwargs["duration"] = args.load_duration
                kwargs["shards"] = args.shards
            elif kind == "robustness":
                kwargs["jobs"] = max(args.jobs, 2)  # the parallel pin needs >= 2
            record = _BENCH_SUITES[kind](scale=args.scale, repeats=args.repeats, **kwargs)
            print(format_bench_record(record))
            print()
    return 0


def _serve(args: argparse.Namespace) -> int:
    import time

    from repro.bench import _SERVE_SCALES, _multi_tenant_models, build_shard_tenant
    from repro.serve import (
        MultiTenantEngine,
        ServeClient,
        ServeRequest,
        ServingFrontend,
        ShardedEngine,
    )

    if args.tenants < 3:
        print(f"repro serve: error: --tenants must be >= 3, got {args.tenants}")
        return 2
    if args.shards < 1:
        print(f"repro serve: error: --shards must be >= 1, got {args.shards}")
        return 2
    static, metas = _multi_tenant_models(args.tenants)
    names = ["static"] + [f"meta_{index}" for index in range(len(metas))]
    engine = MultiTenantEngine()
    sharded = None
    frontend = None
    try:
        for name, source in zip(names, [static, *metas]):
            engine.register(name, source)
        if args.shards > 1:
            # The in-process engine stays as the selftest reference; the
            # fleet serves from worker processes behind the same frontend.
            sharded = ShardedEngine(
                args.shards,
                queue_limit=args.queue_limit,
                target_batch_seconds=args.target_batch_ms / 1000.0,
            )
            for name, source in zip(names, [static, *metas]):
                kind = "static" if name == "static" else "meta"
                index = 0 if name == "static" else int(name.rsplit("_", 1)[1])
                sharded.register(
                    name, source, builder=build_shard_tenant, args=(kind, index)
                )
            frontend = ServingFrontend(
                scheduler=sharded, host=args.host, port=args.port
            )
        else:
            frontend = ServingFrontend(
                engine,
                host=args.host,
                port=args.port,
                queue_limit=args.queue_limit,
                target_batch_seconds=args.target_batch_ms / 1000.0,
            )
        host, port = frontend.start_in_thread()
        topology = (
            f"{args.shards} shard processes ({sharded.start_method})"
            if sharded is not None
            else "in-process engine"
        )
        print(
            f"serving {len(names)} tenant(s) [{', '.join(names)}] on "
            f"{host}:{port} via {topology}"
        )
        if args.selftest:
            # One round trip per tenant over a real socket, each asserted
            # bit-identical to direct in-process dispatch.
            image = _SERVE_SCALES[args.scale]["image"]
            rng = np.random.default_rng(0)
            with ServeClient(host, port) as client:
                if not client.ping():
                    print("repro serve: selftest: ping failed")
                    return 1
                for name in names:
                    sample = rng.normal(size=(3, image, image)).astype(np.float32)
                    wire = client.serve(sample, adapter=name).require()
                    direct = engine.serve(
                        ServeRequest(sample=sample, adapter=name)
                    ).require()
                    if not np.array_equal(wire, direct):
                        print(f"repro serve: selftest: tenant {name!r} diverged")
                        return 1
                depth = client.stats().get("serve.queue.depth")
                print(
                    f"selftest ok: {len(names)} tenant(s) bit-identical over "
                    f"the wire; queue-depth samples: "
                    f"{depth['calls'] if depth else 0}"
                )
            return 0
        print("press Ctrl-C to drain and stop")
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            print("\ndraining ...")
        return 0
    finally:
        if frontend is not None:
            frontend.stop_in_thread()  # also drains a sharded scheduler
        elif sharded is not None:
            sharded.close()
        engine.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MetaLoRA reproduction — regenerate the paper's artifacts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups.  Each is defined exactly once here and inherited
    # via ``parents=`` by every subcommand that takes it, so name, type,
    # default and help text cannot drift between subcommands.
    backbone_flags = argparse.ArgumentParser(add_help=False)
    backbone_flags.add_argument(
        "--backbone", choices=("resnet", "mixer"), default="resnet"
    )

    jobs_flags = argparse.ArgumentParser(add_help=False)
    jobs_flags.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the (method, seed) grid; results are "
        "bit-identical to --jobs 1 (default: 1, serial)",
    )

    fault_flags = argparse.ArgumentParser(add_help=False)
    fault_flags.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="re-run a failed cell up to this many times with exponential "
        "backoff before reporting it failed (default: 0)",
    )
    fault_flags.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="soft wall-clock budget per cell; a stalled cell is killed and "
        "counts as failed (default: no limit)",
    )

    run_flags = argparse.ArgumentParser(add_help=False)
    run_flags.add_argument("--seeds", type=int, nargs="+", default=[0])
    run_flags.add_argument(
        "--smoke",
        action="store_true",
        help="test-suite scale (seconds); for CI smoke runs, not paper numbers",
    )
    run_flags.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="run directory: checkpoint each completed cell so a killed run "
        "can be picked up with --resume",
    )
    run_flags.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume a previous --out-dir run: re-run only the missing "
        "cells; results are bit-identical to an uninterrupted run",
    )

    table1 = sub.add_parser(
        "table1",
        help="regenerate Table I",
        parents=[backbone_flags, jobs_flags, fault_flags, run_flags],
    )
    table1.add_argument(
        "--quick", action="store_true", help="reduced scale (~2 min instead of ~7/seed)"
    )
    table1.set_defaults(func=_table1)

    robustness = sub.add_parser(
        "robustness",
        help="run the robustness-under-shift grid "
        "(methods x corruptions x severities)",
        parents=[backbone_flags, jobs_flags, fault_flags, run_flags],
    )
    robustness.add_argument(
        "--corruptions",
        nargs="+",
        default=None,
        metavar="NAME",
        help="corruption families to evaluate (default: the full catalog; "
        "see docs/robustness.md)",
    )
    robustness.add_argument(
        "--severities",
        type=int,
        nargs="+",
        default=None,
        help="severity rungs in 0..5; 0 is the clean (Table I) pin "
        "(default: 0 1 3 5)",
    )
    robustness.set_defaults(func=_robustness)

    inspect = sub.add_parser(
        "inspect", help="show a method's adapter layout", parents=[backbone_flags]
    )
    inspect.add_argument("--method", choices=METHODS, default="meta_lora_tr")
    inspect.add_argument("--seed", type=int, default=0)
    inspect.set_defaults(func=_inspect)

    compile_cmd = sub.add_parser(
        "compile",
        help="compile a method's features() program and show the step listing",
        parents=[backbone_flags],
    )
    compile_cmd.add_argument("--method", choices=METHODS, default="meta_lora_tr")
    compile_cmd.add_argument("--seed", type=int, default=0)
    compile_cmd.add_argument(
        "--precision",
        choices=("f64", "f32", "int8"),
        default=None,
        help="precision tier (default: REPRO_SERVE_PRECISION, else f64)",
    )
    compile_cmd.add_argument(
        "--describe",
        action="store_true",
        help="print the full per-step listing with resolved output "
        "dtypes/shapes (after one dummy batch)",
    )
    compile_cmd.set_defaults(func=_compile)

    figures = sub.add_parser("figures", help="run the Figure 2/3 numerical checks")
    figures.set_defaults(func=_figures)

    trace = sub.add_parser(
        "trace",
        help="render a run directory's trace.jsonl as a span-tree report",
    )
    trace.add_argument(
        "target",
        help="run directory (from table1 --out-dir) or a trace.jsonl path",
    )
    trace.add_argument(
        "--depth",
        type=int,
        default=4,
        help="span-tree levels to show before eliding (default: 4)",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=8,
        help="how many slowest spans to list (default: 8)",
    )
    trace.set_defaults(func=_trace)

    report = sub.add_parser(
        "report", help="render saved results/ records as markdown tables"
    )
    report.add_argument("--results-dir", default="results")
    report.set_defaults(func=_report)

    bench = sub.add_parser(
        "bench",
        help="time optimized vs reference hot paths (BENCH_*.json)",
        parents=[jobs_flags],
    )
    bench.add_argument(
        "--out",
        default=None,
        help="directory for BENCH_autograd.json / BENCH_table1.json "
        "(omit to just print)",
    )
    bench.add_argument("--scale", choices=("tiny", "small"), default="tiny")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--suite",
        choices=("all", "autograd", "table1", "serve", "load", "robustness"),
        default="all",
        help="run a single bench suite; the load suite (open-loop traffic "
        "against the TCP frontend) and the robustness suite (the full "
        "shift grid with its bit-identity pins) are opt-in and not part "
        "of 'all' (default: all)",
    )
    bench.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="tenant count for the serve suite's multi_tenant section "
        "(>= 3; 0 disables it)",
    )
    bench.add_argument(
        "--load-duration",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="load suite: seconds of traffic per offered-load level "
        "(3 levels; default: 1.0)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=4,
        help="load suite: top shard count for the scaling sweep "
        "(powers of two up to N; < 2 skips the section; default: 4)",
    )
    bench.set_defaults(func=_bench)

    serve = sub.add_parser(
        "serve",
        help="run the TCP serving frontend over a demo multi-tenant fleet",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind (default: 0, an ephemeral port printed at start)",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=3,
        help="demo fleet size: 1 static + N-1 MetaLoRA tenants (>= 3; default: 3)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="admission bound; arrivals past it are answered 'rejected' "
        "(default: 256)",
    )
    serve.add_argument(
        "--target-batch-ms",
        type=float,
        default=25.0,
        help="cost budget one micro-batch aims for (default: 25)",
    )
    serve.add_argument("--scale", choices=("tiny", "small"), default="tiny")
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve the fleet from N worker processes behind the frontend "
        "(1 = in-process engine, no workers; default: 1)",
    )
    serve.add_argument(
        "--selftest",
        action="store_true",
        help="serve one request per tenant over the wire, assert "
        "bit-identity against direct dispatch, and exit",
    )
    serve.set_defaults(func=_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
