"""Continual drift: tracking a stream of shifting tasks without retraining.

The abstract motivates MetaLoRA with "dynamic task requirements".  Here
both a static LoRA model and a MetaLoRA model are adapted *once* on a
fixed set of anchor tasks, then exposed to a drifting stream whose style
interpolates between anchors — so most stream steps are styles neither
model ever trained on.  Per-step classification accuracy shows how each
method tracks the drift with frozen parameters.

Run:  python examples/continual_drift.py   (~3 min)
"""

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.data import TaskDistribution, TaskStream, generate_task_data
from repro.models import FeatureExtractor
from repro.eval.protocol import Table1Config, build_adapted_model, pretrain_backbone
from repro.train import Adam, MetaTrainer, Trainer
from repro.utils.rng import spawn_rngs

STREAM_STEPS = 20


def accuracy(model, images: np.ndarray, labels: np.ndarray) -> float:
    model.eval()
    with no_grad():
        logits = model(Tensor(images))
    return float((logits.data.argmax(axis=1) == labels).mean())


def main() -> None:
    config = Table1Config(
        num_tasks=9,
        adapt_episodes=200,
        methods=("lora", "meta_lora_tr"),
    )
    rng_pre, rng_tasks, rng_stream, rng_lora, rng_meta = spawn_rngs(0, 5)

    print("pretraining backbone ...")
    __, state = pretrain_backbone(config, rng_pre)
    tasks = TaskDistribution(
        config.num_tasks, image_size=config.image_size,
        seed=7, noise_level=config.noise_level,
    )
    train_sets = [
        generate_task_data(
            t, config.adapt_samples_per_task, config.num_classes,
            config.image_size, rng_tasks,
        )
        for t in tasks.shifted_tasks()
    ]

    models = {}
    for method, rng in (("lora", rng_lora), ("meta_lora_tr", rng_meta)):
        print(f"adapting {method} on the anchor tasks ...")
        model = build_adapted_model(method, config, state, rng)
        trainer = Trainer(
            model, Adam(list(model.trainable_parameters()), lr=config.adapt_lr),
            grad_clip=5.0,
        )
        MetaTrainer(trainer, train_sets).run(
            episodes=config.adapt_episodes, batch_size=config.adapt_batch, rng=rng
        )
        model.eval()
        models[method] = model

    print(f"\nstreaming {STREAM_STEPS} drifting steps (styles between anchors):")
    stream = TaskStream(
        tasks, config.num_classes, samples_per_step=48,
        segment_length=5, rng=rng_stream,
    )
    totals = {name: [] for name in models}
    print(f"{'step':>4}  " + "  ".join(f"{name:>13}" for name in models))
    for step in stream.steps(STREAM_STEPS):
        row = []
        for name, model in models.items():
            acc = accuracy(model, step.data.images, step.data.labels)
            totals[name].append(acc)
            row.append(f"{100 * acc:12.1f}%")
        print(f"{step.step:>4}  " + "  ".join(row))
    print("\nmean over the stream:")
    for name, values in totals.items():
        print(f"  {name:<14} {100 * float(np.mean(values)):5.1f}%")


if __name__ == "__main__":
    main()
