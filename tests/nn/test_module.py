"""Tests for the Module base: registration, traversal, freezing, state."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ShapeError
from repro.nn import Linear, Module, ModuleList, Parameter, Sequential


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.child = Linear(2, 2, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.child(x @ self.weight)


class TestRegistration:
    def test_parameters_discovered(self):
        toy = Toy()
        names = {name for name, __ in toy.named_parameters()}
        assert names == {"weight", "child.weight", "child.bias"}

    def test_reassigning_parameter_replaces(self):
        toy = Toy()
        toy.weight = Parameter(np.zeros((2, 2)))
        assert np.all(dict(toy.named_parameters())["weight"].data == 0)
        assert sum(1 for __ in toy.parameters()) == 3

    def test_modules_traversal_preorder(self):
        toy = Toy()
        kinds = [type(m).__name__ for m in toy.modules()]
        assert kinds == ["Toy", "Linear"]

    def test_named_modules(self):
        toy = Toy()
        names = dict(toy.named_modules())
        assert "" in names and "child" in names

    def test_children(self):
        toy = Toy()
        assert [type(c).__name__ for c in toy.children()] == ["Linear"]

    def test_module_list_registers(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 3)])
        assert len(ml) == 2
        assert ml.parameter_count() == (2 * 2 + 2) + (2 * 3 + 3)
        assert type(ml[1]).__name__ == "Linear"


class TestFreezeAndModes:
    def test_freeze_stops_gradients(self):
        toy = Toy()
        toy.freeze()
        assert toy.parameter_count(trainable_only=True) == 0
        toy.unfreeze()
        assert toy.parameter_count(trainable_only=True) == toy.parameter_count()

    def test_train_eval_recursive(self):
        toy = Toy()
        toy.eval()
        assert not toy.training and not toy.child.training
        toy.train()
        assert toy.training and toy.child.training

    def test_zero_grad_clears(self):
        toy = Toy()
        out = toy(Tensor(np.ones((1, 2), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self):
        toy = Toy()
        state = toy.state_dict()
        toy.weight.data[...] = 7.0
        toy.load_state_dict(state)
        assert np.all(toy.weight.data == 1.0)

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["weight"][...] = 9.0
        assert np.all(toy.weight.data == 1.0)

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["weight"]
        with pytest.raises(ShapeError, match="missing"):
            toy.load_state_dict(state)

    def test_unexpected_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(ShapeError, match="unexpected"):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ShapeError, match="expected shape"):
            toy.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_sequential_state_roundtrip(self, rng):
        net = Sequential(Linear(3, 4, rng=rng), Linear(4, 2, rng=rng))
        state = net.state_dict()
        net2 = Sequential(
            Linear(3, 4, rng=np.random.default_rng(99)),
            Linear(4, 2, rng=np.random.default_rng(98)),
        )
        net2.load_state_dict(state)
        x = Tensor(rng.normal(size=(2, 3)).astype(np.float32))
        assert np.allclose(net(x).data, net2(x).data)
