"""AdapterRegistry + MultiTenantEngine: naming, sharing, churn, identity.

The acceptance contract: a multi-tenant engine serving N named adapters
produces rows bit-identical to N separate single-tenant engines, even
though seed-slot tenants are stacked *across* tenants into shared
extractor/body runs.
"""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.models import FeatureExtractor, resnet_small
from repro.peft import (
    MetaLoRAModel,
    attach,
    load_adapter,
    save_adapter,
    state_digest,
)
from repro.serve import (
    ENGINES,
    AdapterRegistry,
    EmbeddingEngine,
    MultiTenantEngine,
    ServeRequest,
    build_engine,
    compile_features,
    program_key,
)
from repro.utils.rng import new_rng
from tests.serve.conftest import serve_bulk


def images_for(rng, n=6):
    return rng.normal(size=(n, 3, 16, 16)).astype(np.float32)


def randomize_zero_params(model, rng):
    for param in model.parameters():
        if not np.any(param.data):
            param.data[...] = (rng.normal(size=param.data.shape) * 0.2).astype(
                param.data.dtype
            )


def static_lora_result(seed=0):
    backbone = resnet_small(4, new_rng(seed))
    result = attach(backbone, "lora", rank=2, rng=new_rng(seed + 1))
    randomize_zero_params(backbone, np.random.default_rng(seed + 2))
    return result


def meta_model(fmt="meta_tr", seed=10, extractor_seed=99):
    """A MetaLoRA model; same ``extractor_seed`` ⇒ shared extractor weights."""
    backbone = resnet_small(4, new_rng(seed))
    result = attach(backbone, fmt, rank=2, rng=new_rng(seed + 1))
    extractor = FeatureExtractor(resnet_small(4, new_rng(extractor_seed)))
    model = MetaLoRAModel(backbone, extractor, rng=new_rng(seed + 2), adapters=result)
    randomize_zero_params(model, np.random.default_rng(seed + 3))
    return model


def perturb_mapping(model, rng):
    """New mapping weights in place: what a tenant's fine-tune produces."""
    model.trunk.weight.data[...] += (
        rng.normal(size=model.trunk.weight.data.shape) * 0.05
    )
    for head in model.heads:
        head.weight.data[...] += rng.normal(size=head.weight.data.shape) * 0.05


class TestRegistry:
    def test_register_get_evict(self):
        registry = AdapterRegistry()
        entry = registry.register("a", static_lora_result(0))
        assert registry.names() == ["a"]
        assert "a" in registry and len(registry) == 1
        assert registry.get("a") is entry
        assert entry.kind == "static" and entry.version == 1
        evicted = registry.evict("a")
        assert evicted is entry
        assert "a" not in registry

    def test_unknown_names_raise(self):
        registry = AdapterRegistry()
        with pytest.raises(ServeError, match="unknown adapter"):
            registry.get("ghost")
        with pytest.raises(ServeError, match="swap unknown"):
            registry.swap("ghost", static_lora_result(0))
        with pytest.raises(ServeError, match="evict unknown"):
            registry.evict("ghost")

    def test_duplicate_register_requires_replace(self):
        registry = AdapterRegistry()
        registry.register("a", static_lora_result(0))
        with pytest.raises(ServeError, match="already registered"):
            registry.register("a", static_lora_result(1))
        entry = registry.register("a", static_lora_result(1), replace=True)
        assert entry.version == 2

    def test_rejects_non_models(self):
        registry = AdapterRegistry()
        with pytest.raises(ServeError, match="Module or AttachResult"):
            registry.register("a", object())

    def test_identical_static_tenants_share_one_program(self):
        registry = AdapterRegistry()
        # Two names over byte-identical merged weights ⇒ one compile.
        a = registry.register("a", static_lora_result(0))
        b = registry.register("b", static_lora_result(0))
        assert a.program is b.program
        stats = registry.stats()
        assert stats["serve.program_cache.hit"]["calls"] == 1
        assert stats["serve.program_cache.miss"]["calls"] == 1

    def test_seeded_tenants_share_extractor_and_body(self):
        registry = AdapterRegistry()
        first = meta_model(seed=10)
        second = meta_model(seed=10)
        perturb_mapping(second, np.random.default_rng(7))
        a = registry.register("a", first)
        b = registry.register("b", second)
        assert a.kind == b.kind == "seeded"
        assert a.extractor is b.extractor  # shared backbone/extractor...
        assert a.body is b.body
        assert a.mapping is not b.mapping  # ...but tenant-specific mapping
        stats = registry.stats()
        assert stats["serve.program_cache.hit"]["calls"] == 2
        assert stats["serve.program_cache.miss"]["calls"] == 4

    def test_program_cache_evicts_lru(self):
        registry = AdapterRegistry(program_cache_size=1)
        registry.register("a", static_lora_result(0))
        registry.register("b", static_lora_result(1))
        stats = registry.stats()
        assert stats["serve.program_cache.evict"]["calls"] >= 1

    def test_register_checkpoint(self, tmp_path):
        donor = meta_model(seed=10)
        perturb_mapping(donor, np.random.default_rng(3))
        path = tmp_path / "adapter.npz"
        save_adapter(donor, path)
        target = meta_model(seed=10)  # same shapes, different mapping state
        registry = AdapterRegistry()
        entry = registry.register_checkpoint("tenant", target, path)
        assert entry.kind == "seeded"
        # The restored tenant serves the donor's weights.
        images = images_for(np.random.default_rng(0), 3)
        assert np.array_equal(entry.run(images), compile_features(donor).run(images))


class TestDigest:
    def test_attach_result_digest_tracks_weights(self):
        result = static_lora_result(0)
        before = result.digest()
        assert before == result.digest()  # deterministic
        next(iter(result.adapters.values())).lora_a.data[...] += 1.0
        assert result.digest() != before

    def test_checkpoint_manifest_shares_the_digest_function(self, tmp_path):
        from repro.peft.checkpoint import adapter_state_dict, _adapter_meta

        model = meta_model(seed=10)
        path = tmp_path / "adapter.npz"
        save_adapter(model, path)
        manifest_meta = load_adapter(model, path)
        meta = _adapter_meta(model)
        expected = state_digest(
            adapter_state_dict(model),
            extra={"families": meta["families"], "ranks": meta["ranks"]},
        )
        assert manifest_meta["digest"] == expected

    def test_program_keys_reuse_state_digest(self):
        result = static_lora_result(0)
        model = result.serving_model(merge=True)
        key = program_key(model)
        # The key's weight component is the shared state_digest over the
        # model's full state, tagged with families/ranks.
        from repro.peft.checkpoint import model_digest

        assert key.weights == model_digest(model)

    def test_program_keys_split_by_precision(self):
        model = static_lora_result(0).serving_model(merge=True)
        f64 = program_key(model, precision="f64")
        f32 = program_key(model, precision="f32")
        assert f64.precision == "f64" and f32.precision == "f32"
        assert f64 != f32  # tiers never collide in the program cache
        assert program_key(model, precision="f32") == f32

    def test_program_cache_keeps_tiers_apart_and_labels_counters(self):
        from repro.serve import ProgramCache

        model = static_lora_result(0).serving_model(merge=True)
        cache = ProgramCache(capacity=4)
        compiled = []
        for precision in ("f64", "f32", "f32"):
            program = cache.get(
                program_key(model, precision=precision),
                lambda p=precision: compile_features(model, precision=p),
            )
            compiled.append(program)
        assert compiled[0] is not compiled[1]  # different tier → recompile
        assert compiled[1] is compiled[2]  # same tier → shared program
        stats = cache.stats()
        assert stats["serve.program_cache.miss"]["calls"] == 2
        assert stats["serve.program_cache.miss{precision=f64}"]["calls"] == 1
        assert stats["serve.program_cache.miss{precision=f32}"]["calls"] == 1
        assert stats["serve.program_cache.hit{precision=f32}"]["calls"] == 1


class TestMultiTenantServing:
    def test_single_tenant_engine_matches_embedding_engine(self, rng):
        """Acceptance: one-tenant MultiTenantEngine ≡ EmbeddingEngine."""
        model = meta_model(seed=10)
        images = images_for(rng, 5)
        with build_engine(model, cache_size=0) as single:
            reference = serve_bulk(single, images)
        # A generous max_delay lets the worker coalesce all enqueues into
        # one flush, so the meta mapping net sees the same row composition
        # as the 5-row reference chunk (it is not batch-composition
        # invariant — that is why grouped dispatch runs it per-tenant).
        engine = MultiTenantEngine(cache_size=0, max_delay=0.25)
        engine.register("only", model)
        try:
            assert np.array_equal(serve_bulk(engine, images, adapter="only"), reference)
            rows = [
                f.result(timeout=10.0).require()
                for f in [
                    engine.enqueue(ServeRequest(sample=sample, adapter="only"))
                    for sample in images
                ]
            ]
            for index, row in enumerate(rows):
                assert np.array_equal(row, reference[index])
        finally:
            engine.close()

    def test_three_tenants_bit_identical_to_three_engines(self, rng):
        """Acceptance: N=3 (one merged LoRA, two MetaLoRA seed-slot
        tenants) — grouped cross-tenant dispatch reproduces three
        separate single-tenant engines bit for bit."""
        static = static_lora_result(0)
        meta_a = meta_model(seed=10)
        meta_b = meta_model(seed=10)
        perturb_mapping(meta_b, np.random.default_rng(7))
        images = {name: images_for(rng, 2) for name in ("static", "meta_a", "meta_b")}

        reference = {}
        for name, source in (("static", static), ("meta_a", meta_a), ("meta_b", meta_b)):
            with build_engine(source, cache_size=0) as engine:
                reference[name] = serve_bulk(engine, images[name])

        # Generous max_delay: one flush per submit burst, so each meta
        # tenant's mapping net sees the same 2-row composition as its
        # reference chunks.
        engine = MultiTenantEngine(cache_size=0, max_delay=0.25)
        engine.register("static", static)  # already merged by build_engine
        engine.register("meta_a", meta_a)
        engine.register("meta_b", meta_b)
        try:
            # Seed-slot tenants share extractor+body: their requests stack.
            entries = [engine.registry.get(n) for n in ("meta_a", "meta_b")]
            assert entries[0].body is entries[1].body
            batch = [
                (name, images[name][index])
                for index in range(2)
                for name in ("static", "meta_a", "meta_b")
            ]
            results = engine.serve(
                [ServeRequest(sample=sample, adapter=name) for name, sample in batch]
            )
            for position, (name, __) in enumerate(batch):
                index = position // 3
                assert np.array_equal(
                    results[position].require(), reference[name][index]
                )
            # The same identity holds through the queued enqueue path.
            futures = [
                (
                    name,
                    index,
                    engine.enqueue(
                        ServeRequest(sample=images[name][index], adapter=name)
                    ),
                )
                for index in range(2)
                for name in ("static", "meta_a", "meta_b")
            ]
            for name, index, future in futures:
                assert np.array_equal(
                    future.result(timeout=10.0).require(), reference[name][index]
                )
            stats = engine.stats()
            assert stats["serve.requests"]["calls"] == 6
            assert "serve.requests{tenant=meta_a}" in stats
            assert sum(stats["serve.batch.tenants"]["buckets"].values()) >= 1
        finally:
            engine.close()

    def test_adapter_churn_swap_serves_new_weights(self, rng):
        """register → serve → swap → serve: new outputs, correct program
        cache traffic, no stale result-cache hits."""
        engine = MultiTenantEngine(cache_size=8)
        model = meta_model(seed=10)
        engine.register("tenant", model)
        sample = images_for(rng, 1)[0]
        def embed_one(sample):
            future = engine.enqueue(ServeRequest(sample=sample, adapter="tenant"))
            return future.result(timeout=10.0).require()

        try:
            before = embed_one(sample)
            baseline = engine.stats()
            # Swap in new mapping weights (same extractor/backbone).
            perturb_mapping(model, np.random.default_rng(3))
            entry = engine.swap("tenant", model)
            assert entry.version == 2
            after = embed_one(sample)
            assert not np.array_equal(before, after)  # new weights serve
            stats = engine.stats()
            # The swap recompiled only the mapping program (miss) and
            # cache-hit the unchanged extractor + body.
            hits_before = baseline.get("serve.program_cache.hit", {}).get("calls", 0)
            assert stats["serve.program_cache.hit"]["calls"] - hits_before == 2
            assert (
                stats["serve.program_cache.miss"]["calls"]
                - baseline["serve.program_cache.miss"]["calls"]
            ) == 1
            assert stats["serve.registry.swap"]["calls"] == 1
            # The identical sample missed the result cache after the swap:
            # rows cached under version 1 are unreachable from version 2.
            assert stats["serve.cache.miss"]["calls"] == 2
            assert "serve.cache.hit" not in stats  # zero stale hits
            # ...and resubmitting now hits under the new version.
            again = embed_one(sample)
            assert np.array_equal(again, after)
            assert engine.stats()["serve.cache.hit"]["calls"] == 1
        finally:
            engine.close()

    def test_unknown_adapter_raises_everywhere(self, rng):
        engine = MultiTenantEngine(cache_size=0)
        sample = images_for(rng, 1)
        try:
            with pytest.raises(ServeError, match="unknown adapter"):
                engine.serve(ServeRequest(sample=sample, adapter="ghost"))
            with pytest.raises(ServeError, match="unknown adapter"):
                engine.enqueue(ServeRequest(sample=sample[0], adapter="ghost"))
        finally:
            engine.close()

    def test_closed_engine_rejects_calls(self, rng):
        engine = MultiTenantEngine(cache_size=0)
        engine.register("a", static_lora_result(0))
        engine.close()
        with pytest.raises(ServeError, match="closed"):
            engine.serve(ServeRequest(sample=images_for(rng, 1), adapter="a"))
        with pytest.raises(ServeError, match="closed"):
            engine.enqueue(ServeRequest(sample=images_for(rng, 1)[0], adapter="a"))
        engine.close()  # idempotent

    def test_invalid_limits_rejected(self):
        for kwargs in (
            {"max_batch": 0},
            {"max_delay": -0.1},
            {"cache_size": -1},
            {"drain_timeout": -1.0},
        ):
            with pytest.raises(ServeError):
                MultiTenantEngine(**kwargs)


class TestBuildEngineValidation:
    def test_rejects_objects_without_serving_model(self):
        with pytest.raises(ServeError, match="Module or AttachResult"):
            build_engine(object())

    def test_rejects_non_callable_serving_model(self):
        class Impostor:
            serving_model = "not-a-method"

        with pytest.raises(ServeError, match="not callable"):
            build_engine(Impostor())

    def test_rejects_serving_model_returning_non_module(self):
        class Impostor:
            def serving_model(self, merge=True):
                return {"weights": 1}

        with pytest.raises(ServeError, match="not a Module"):
            build_engine(Impostor())


class TestEnginesHandle:
    def test_handle_caches_per_model(self, rng):
        from repro.serve.engine import Engines

        handle = Engines(cache_size=0)
        model = resnet_small(4, rng)
        engine = handle.get(model)
        assert handle.get(model) is engine
        assert model in handle and len(handle) == 1
        handle.clear()
        assert len(handle) == 0
        replacement = handle.get(model)
        assert replacement is not engine

    def test_module_level_shims_removed(self):
        """The deprecated globals are gone — ``Engines`` is the only API."""
        import repro.serve
        import repro.serve.engine

        for mod in (repro.serve, repro.serve.engine):
            assert not hasattr(mod, "shared_engine")
            assert not hasattr(mod, "clear_shared_engines")
            assert "shared_engine" not in mod.__all__
            assert "clear_shared_engines" not in mod.__all__


class TestMultiInputPrograms:
    def test_run_arity_checked(self, rng):
        program = compile_features(resnet_small(4, rng))
        with pytest.raises(ServeError, match="1 input"):
            program.run(images_for(rng, 1), images_for(rng, 1))

    def test_external_seed_split_is_bit_identical(self, rng):
        from repro.serve import compile_forward, compile_seed_mapping

        model = meta_model(seed=10)
        images = images_for(rng, 4)
        fused = compile_features(model)
        # quantize=False mirrors the registry: the extractor feeds the
        # seed path, which is exempt from int8 weight quantization.
        extractor = compile_forward(model.extractor, quantize=False)
        mapping = compile_seed_mapping(model)
        body = compile_features(model, external_seeds=True)
        assert len(body.input_slots) == 2
        seeds = mapping.run(extractor.run(images))
        assert np.array_equal(body.run(images, seeds), fused.run(images))
