"""repro — a full reproduction of "MetaLoRA: Tensor-Enhanced Adaptive
Low-Rank Fine-Tuning" (ICDE 2025).

Subpackages
-----------
- :mod:`repro.autograd` — numpy reverse-mode autodiff engine (the torch
  substitute for this offline reproduction)
- :mod:`repro.nn` — neural layers (Linear, Conv2d, norms, pooling, ...)
- :mod:`repro.models` — ResNet and MLP-Mixer backbones
- :mod:`repro.tensornet` — tensor contraction, CP, Tensor Ring, Tucker,
  dummy-tensor convolution, tensor-network graphs
- :mod:`repro.peft` — LoRA, Conv-LoRA, Multi-LoRA, MoE-LoRA and the
  MetaLoRA CP/TR adapters with the mapping net (the paper's contribution)
- :mod:`repro.data` — synthetic multi-task image distribution
- :mod:`repro.train` — optimizers, schedules, trainer loops
- :mod:`repro.eval` — KNN protocol, metrics, significance, Table I runner

Quickstart
----------
>>> import numpy as np
>>> from repro.eval import Table1Config, run_table1
>>> rows = run_table1(Table1Config().quick(), seed=0)  # doctest: +SKIP
"""

from repro import autograd, data, eval, models, nn, peft, tensornet, train, utils
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "autograd",
    "data",
    "eval",
    "models",
    "nn",
    "peft",
    "tensornet",
    "train",
    "utils",
]
