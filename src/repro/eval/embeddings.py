"""Embedding extraction for the KNN protocol."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.errors import EvaluationError
from repro.nn.module import Module, eval_mode
from repro.obs import TRACER
from repro.perf import FLAGS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.engine import EmbeddingEngine


def extract_embeddings(
    model: Module,
    images: np.ndarray,
    batch_size: int = 64,
    engine: "EmbeddingEngine | None" = None,
) -> np.ndarray:
    """Run ``model.features`` over ``images`` in eval mode, without grads.

    Works for plain backbones and for :class:`MetaLoRAModel` alike — meta
    models regenerate their per-sample seeds inside ``features``.  The
    model's prior train/eval mode is restored afterwards.

    With ``engine`` given — or ``FLAGS.serve_embeddings`` set (env
    ``REPRO_SERVE_EMBEDDINGS=1``) — extraction routes through the compiled
    ``repro.serve`` engine instead of the autograd path.  The engine chunks
    identically, so the result is bit-identical; it also returns freshly
    allocated buffers, so no defensive copy is needed on that path.
    """
    if not hasattr(model, "features"):
        raise EvaluationError(
            f"{type(model).__name__} does not expose features(); cannot embed"
        )
    if engine is None and FLAGS.serve_embeddings:
        from repro.serve.engine import ENGINES

        engine = ENGINES.get(model)
    if engine is not None:
        from repro.serve.api import ServeRequest, ingest_sample

        with TRACER.span(
            "eval.embed", path="serve", samples=int(images.shape[0])
        ):
            # Chunk exactly like the autograd loop below, so the served
            # rows stay bit-identical to the reference path.
            ingested = ingest_sample(images)
            requests = [
                ServeRequest(sample=ingested[start : start + batch_size])
                for start in range(0, ingested.shape[0], batch_size)
            ]
            results = engine.serve(requests)
            return np.concatenate(
                [result.require() for result in results], axis=0
            )
    with TRACER.span(
        "eval.embed", path="autograd", samples=int(images.shape[0])
    ), eval_mode(model), no_grad():
        chunks = []
        for start in range(0, images.shape[0], batch_size):
            batch = Tensor(images[start : start + batch_size])
            # .data is safe to hand out uncopied: the final concatenate
            # always allocates a fresh result array.
            chunks.append(model.features(batch).data)
        return np.concatenate(chunks, axis=0)
