"""Transformer extension (Sec. III-E): MetaLoRA on a Vision Transformer.

The paper closes by suggesting MetaLoRA's "broader applications in
transformer architectures".  This example implements that future-work
direction: the same MetaLoRA (TR) adapters attach to every linear layer
of a tiny ViT — including the q/k/v/out attention projections — and are
compared against static LoRA on the multi-task distribution.

Run:  python examples/transformer_extension.py   (~2 min)
"""

import numpy as np

from repro.data import TaskDistribution, generate_task_data
from repro.eval import KNNClassifier, extract_embeddings
from repro.models import FeatureExtractor, vit_small
from repro.nn import Linear
from repro.peft import MetaLoRAModel, attach
from repro.train import Adam, MetaTrainer, Trainer
from repro.utils.rng import spawn_rngs

NUM_CLASSES = 8
IMAGE_SIZE = 16
RANK = 2
NUM_TASKS = 7


def knn_over_tasks(model, tasks, rng) -> float:
    scores = []
    for task in tasks.shifted_tasks():
        support = generate_task_data(task, 40, NUM_CLASSES, IMAGE_SIZE, rng)
        query = generate_task_data(task, 40, NUM_CLASSES, IMAGE_SIZE, rng)
        knn = KNNClassifier().fit(
            extract_embeddings(model, support.images), support.labels
        )
        scores.append(
            knn.score(extract_embeddings(model, query.images), query.labels, k=5)
        )
    return float(np.mean(scores))


def main() -> None:
    rng_pre, rng_adapt, rng_data, rng_eval = spawn_rngs(seed=0, count=4)
    tasks = TaskDistribution(NUM_TASKS, image_size=IMAGE_SIZE, seed=0)

    print("pretraining a tiny ViT on the base task ...")
    base_data = generate_task_data(tasks.base_task, 512, NUM_CLASSES, IMAGE_SIZE, rng_data)
    vit = vit_small(NUM_CLASSES, rng_pre)
    Trainer(vit, Adam(vit.parameters(), lr=3e-3)).fit(
        base_data.images, base_data.labels, epochs=5, batch_size=32, rng=rng_pre
    )
    state = vit.state_dict()

    train_sets = [
        generate_task_data(task, 64, NUM_CLASSES, IMAGE_SIZE, rng_data)
        for task in tasks.shifted_tasks()
    ]

    def evaluate(name: str, model) -> None:
        trainable = list(model.trainable_parameters())
        if trainable:
            trainer = Trainer(model, Adam(trainable, lr=3e-3), grad_clip=5.0)
            MetaTrainer(trainer, train_sets).run(episodes=120, batch_size=16, rng=rng_adapt)
            model.eval()
        acc = knn_over_tasks(model, tasks, rng_eval)
        budget = sum(p.size for p in model.trainable_parameters())
        print(f"  {name:<22} KNN@5 = {100 * acc:5.1f}%   trainable = {budget:,}")

    print("\nadapting on shifted tasks (attention projections included):")

    frozen = vit_small(NUM_CLASSES, rng_pre)
    frozen.load_state_dict(state)
    frozen.freeze()
    evaluate("frozen ViT", frozen)

    lora_vit = vit_small(NUM_CLASSES, rng_pre)
    lora_vit.load_state_dict(state)
    attach(lora_vit, "lora", rank=RANK, targets=(Linear,), rng=rng_adapt)
    evaluate("LoRA", lora_vit)

    meta_vit = vit_small(NUM_CLASSES, rng_pre)
    meta_vit.load_state_dict(state)
    result = attach(meta_vit, "meta_tr", rank=RANK, targets=(Linear,), rng=rng_adapt)
    extractor_vit = vit_small(NUM_CLASSES, rng_pre)
    extractor_vit.load_state_dict(state)
    meta = MetaLoRAModel(
        meta_vit, FeatureExtractor(extractor_vit), rng=rng_adapt, adapters=result
    )
    attention_adapters = sum(1 for name in result.adapters if "proj" in name)
    print(f"  (MetaLoRA attached to {len(result)} linears, "
          f"{attention_adapters} of them attention projections)")
    evaluate("MetaLoRA TR", meta)


if __name__ == "__main__":
    main()
