"""Tests for prefix tuning on transformer attention."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import AdapterError
from repro.models import MultiHeadSelfAttention, vit_small
from repro.nn import Linear
from repro.peft import PrefixTuningAttention, attach


class TestPrefixTuning:
    def test_near_identity_at_init(self, rng):
        """Zero-init prefix values contribute nothing to the weighted sum
        except a small attention-mass shift toward the prefix slots."""
        base = MultiHeadSelfAttention(16, 2, rng=rng)
        adapter = PrefixTuningAttention(base, prefix_length=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32))
        base_out = base(x).data
        adapted_out = adapter(x).data
        # values are zero -> output is a downweighted base attention;
        # directions agree even though magnitudes shrink slightly
        cosine = (base_out * adapted_out).sum() / (
            np.linalg.norm(base_out) * np.linalg.norm(adapted_out) + 1e-9
        )
        assert cosine > 0.95

    def test_output_shape(self, rng):
        base = MultiHeadSelfAttention(16, 2, rng=rng)
        adapter = PrefixTuningAttention(base, prefix_length=3, rng=rng)
        x = Tensor(rng.normal(size=(3, 7, 16)).astype(np.float32))
        assert adapter(x).shape == (3, 7, 16)

    def test_prefix_changes_output_when_trained(self, rng):
        base = MultiHeadSelfAttention(16, 2, rng=rng)
        adapter = PrefixTuningAttention(base, prefix_length=2, rng=rng)
        adapter.prefix_values.data[...] = rng.normal(
            size=adapter.prefix_values.shape
        ).astype(np.float32)
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32))
        assert not np.allclose(adapter(x).data, base(x).data, atol=1e-3)

    def test_only_prefix_trainable(self, rng):
        base = MultiHeadSelfAttention(16, 2, rng=rng)
        adapter = PrefixTuningAttention(base, prefix_length=2, rng=rng)
        trainable = {n for n, p in adapter.named_parameters() if p.requires_grad}
        assert trainable == {"prefix_keys", "prefix_values"}

    def test_gradients_flow_to_prefix(self, rng):
        base = MultiHeadSelfAttention(16, 2, rng=rng)
        adapter = PrefixTuningAttention(base, prefix_length=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32))
        adapter(x).sum().backward()
        assert adapter.prefix_keys.grad is not None
        assert adapter.prefix_values.grad is not None

    def test_parameter_budget(self, rng):
        base = MultiHeadSelfAttention(32, 4, rng=rng)
        adapter = PrefixTuningAttention(base, prefix_length=4, rng=rng)
        assert adapter.extra_parameter_count() == 2 * 4 * 4 * 8

    def test_injection_into_vit(self, rng):
        model = vit_small(4, rng)
        result = attach(
            model,
            lambda m: PrefixTuningAttention(m, 2, rng=rng),
            targets=(MultiHeadSelfAttention,),
        )
        assert len(result.adapters) == 2  # one per block
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        out = model(x)
        out.sum().backward()
        assert out.shape == (2, 4)

    def test_validation(self, rng):
        with pytest.raises(AdapterError):
            PrefixTuningAttention(Linear(4, 4, rng=rng), prefix_length=2)
        base = MultiHeadSelfAttention(16, 2, rng=rng)
        with pytest.raises(AdapterError):
            PrefixTuningAttention(base, prefix_length=0)

    def test_no_static_delta(self, rng):
        base = MultiHeadSelfAttention(16, 2, rng=rng)
        adapter = PrefixTuningAttention(base, prefix_length=2, rng=rng)
        with pytest.raises(AdapterError):
            adapter.delta_weight()
