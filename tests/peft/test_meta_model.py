"""Tests for the full MetaLoRAModel (Fig. 4 architecture) and MappingNet."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import AdapterError, ConfigError
from repro.models import FeatureExtractor, mixer_small, resnet_small
from repro.nn import Linear
from repro.peft import MappingNet, MetaLoRAModel, attach


def make_meta_resnet(rng, fmt="tr"):
    backbone = resnet_small(4, rng)
    extractor = FeatureExtractor(resnet_small(4, np.random.default_rng(9)))
    result = attach(backbone, f"meta_{fmt}", rank=2, rng=rng)
    return MetaLoRAModel(backbone, extractor, rng=rng, adapters=result)


class TestMappingNet:
    def test_output_shape(self, rng):
        net = MappingNet(16, 9, hidden_dims=(8,), rng=rng)
        out = net(Tensor(rng.normal(size=(5, 16)).astype(np.float32)))
        assert out.shape == (5, 9)

    def test_output_bounded_by_scale(self, rng):
        net = MappingNet(16, 4, rng=rng)
        out = net(Tensor((rng.normal(size=(8, 16)) * 100).astype(np.float32)))
        assert np.all(np.abs(out.data) <= np.abs(net.scale.data[0]) + 1e-6)

    def test_neutral_start_constant_seed(self, rng):
        net = MappingNet(16, 4, rng=rng)
        out = net(Tensor(rng.normal(size=(6, 16)).astype(np.float32))).data
        assert np.allclose(out, out[0])  # same seed for every sample at init

    def test_dim_validation(self, rng):
        with pytest.raises(ConfigError):
            MappingNet(0, 4)

    def test_deeper_hidden_stack(self, rng):
        net = MappingNet(16, 4, hidden_dims=(8, 8), rng=rng)
        assert len(net.hidden) == 2


class TestMetaLoRAModel:
    def test_requires_meta_adapters(self, rng):
        backbone = resnet_small(4, rng)
        attach(backbone, "lora", rank=2, targets=(Linear,), rng=rng)
        extractor = FeatureExtractor(resnet_small(4, rng))
        with pytest.raises(AdapterError, match="meta"):
            MetaLoRAModel(backbone, extractor)

    def test_forward_shape(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(3, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (3, 4)

    def test_features_shape(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(3, 3, 16, 16)).astype(np.float32))
        assert model.features(x).shape == (3, model.embedding_dim)

    def test_generate_seeds_one_per_adapter(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        seeds = model.generate_seeds(x)
        assert len(seeds) == len(model.adapter_names)
        for seed, adapter in zip(seeds, model._meta_adapters):
            assert seed.shape == (2,) + adapter.seed_shape

    def test_seeds_cleared_after_forward(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        model(x)
        assert all(a._seed is None for a in model._meta_adapters)

    def test_seeds_cleared_even_on_error(self, rng):
        model = make_meta_resnet(rng)
        bad = Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32))  # wrong spatial size is fine for resnet; use wrong channels
        bad = Tensor(np.zeros((2, 5, 16, 16), dtype=np.float32))
        with pytest.raises(Exception):
            model(bad)
        assert all(a._seed is None for a in model._meta_adapters)

    def test_gradients_flow_to_mapping_net(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        model(x).sum().backward()
        assert model.trunk.weight.grad is not None
        assert all(head.weight.grad is not None for head in model.heads)

    def test_backbone_base_weights_stay_frozen(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        model(x).sum().backward()
        for name, param in model.backbone.named_parameters():
            if "base" in name:
                assert param.grad is None, name

    def test_cp_variant_works(self, rng):
        model = make_meta_resnet(rng, fmt="cp")
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (2, 4)

    def test_mixer_backbone(self, rng):
        backbone = mixer_small(4, rng)
        extractor = FeatureExtractor(mixer_small(4, np.random.default_rng(3)))
        result = attach(backbone, "meta_cp", rank=2, targets=(Linear,), rng=rng)
        model = MetaLoRAModel(backbone, extractor, rng=rng, adapters=result)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (2, 4)

    def test_head_gain_scales_seeds(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        base_seed = model.generate_seeds(x)[0].data.copy()
        model.head_gains.data[0] = 3.0
        scaled_seed = model.generate_seeds(x)[0].data
        assert np.allclose(scaled_seed, 3.0 * base_seed, atol=1e-5)

    def test_head_gains_receive_gradients(self, rng):
        model = make_meta_resnet(rng)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        model(x).sum().backward()
        assert model.head_gains.grad is not None

    def test_different_inputs_get_different_seeds_after_training_signal(self, rng):
        """After perturbing the trunk, seeds become input-dependent."""
        model = make_meta_resnet(rng)
        model.heads[0].weight.data[...] = rng.normal(
            size=model.heads[0].weight.shape
        ).astype(np.float32)
        a = Tensor(rng.normal(size=(1, 3, 16, 16)).astype(np.float32))
        b = Tensor((rng.normal(size=(1, 3, 16, 16)) + 3).astype(np.float32))
        seed_a = model.generate_seeds(a)[0].data
        seed_b = model.generate_seeds(b)[0].data
        assert not np.allclose(seed_a, seed_b)
