"""Benchmark-harness configuration.

Every bench prints the table/figure it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
evaluation artifacts.  ``REPRO_BENCH_SCALE=quick`` (the default for CI)
shrinks the Table I run; set ``REPRO_BENCH_SCALE=paper`` for the
full-scale multi-seed version with significance testing.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()
