"""Optimization passes and runtime helpers for compiled slot-programs.

Three independent levers sit between :class:`~repro.serve.compile.ProgramBuilder`
output and execution, each with its own knob:

- **Precision tiers** (``precision={"f64","f32","int8"}``).  ``f64`` is
  the bit-exactness tier: folded constants stay exactly as the autograd
  path computes them and compiled output remains byte-identical to
  ``extract_embeddings``.  ``f32`` casts every folded constant (and with
  it all kernel compute) to float32 — the recommended serving tier.
  ``int8`` additionally fake-quantizes large weight matrices per output
  channel (symmetric, 127-step) and dequantizes them back to float32 at
  *compile* time, so runs pay f32 GEMM cost while outputs carry true
  int8 rounding error — the standard simulated-quantization accuracy
  model.  The default tier comes from ``REPRO_SERVE_PRECISION`` (f64
  when unset), so the library default preserves the bit-exactness
  contract.

- **Chain fusion** (:func:`fuse_program`, ``REPRO_SERVE_FUSION``).
  Collapses single-consumer producer→consumer chains (conv→bn→relu,
  norm→transpose→fc→gelu→fc, …) into one composed kernel per chain.
  Composition calls the original kernels in the original order on the
  original operands, so fused programs are bit-identical to unfused
  ones at every tier; the win is slot traffic, liveness bookkeeping and
  interpreter overhead, not changed arithmetic.

- **Arena allocation and thread parallelism** (:class:`Arena`,
  :func:`run_parallel`; ``REPRO_SERVE_ARENA`` / ``REPRO_SERVE_PARALLEL``).
  Steps that declare an out-variant kernel (``fn_out`` + ``out_spec``)
  draw their output buffer from a per-run (shape, dtype) bucket pool
  fed by the liveness pass's freed slots.  A buffer is only pooled when
  it owns its memory and no live slot value can see it
  (``np.may_share_memory`` scan), so views handed out by
  transpose/reshape/slice kernels can never be clobbered.  With
  ``parallel > 1`` the program runs under a dependency-graph scheduler:
  independent slots (residual branches, per-head seed kernels) execute
  concurrently on a shared worker pool, and a lone wide elementwise
  step is row-sharded across workers instead.  Sharding is restricted
  to steps tagged row-independent, so parallel runs are bit-identical
  to serial ones.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

import numpy as np

from repro.errors import ServeError

#: The compile precision tiers, in decreasing exactness order.
PRECISIONS = ("f64", "f32", "int8")

#: Row-sharding only pays for itself on wide activations; below this
#: output size the submit/wait overhead dominates the kernel.
SHARD_MIN_BYTES = 1 << 20


def resolve_precision(precision: str | None) -> str:
    """Validate a tier, defaulting to ``REPRO_SERVE_PRECISION`` then f64."""
    if precision is None:
        precision = os.environ.get("REPRO_SERVE_PRECISION", "").strip() or "f64"
    if precision not in PRECISIONS:
        raise ServeError(
            f"unknown serve precision {precision!r}; "
            f"choose one of {', '.join(PRECISIONS)}"
        )
    return precision


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


def fusion_enabled() -> bool:
    """Default for the fusion pass (``REPRO_SERVE_FUSION``, on)."""
    return _env_flag("REPRO_SERVE_FUSION", True)


def arena_enabled() -> bool:
    """Default for the arena allocator (``REPRO_SERVE_ARENA``, on)."""
    return _env_flag("REPRO_SERVE_ARENA", True)


def resolve_parallel(parallel: int | None) -> int:
    """Worker count for slot execution (``REPRO_SERVE_PARALLEL``, 1)."""
    if parallel is None:
        raw = os.environ.get("REPRO_SERVE_PARALLEL", "").strip()
        parallel = int(raw) if raw else 1
    parallel = int(parallel)
    if parallel < 1:
        raise ServeError(f"serve parallelism must be >= 1, got {parallel}")
    return parallel


#: Measured serial run seconds below which the thread scheduler is a
#: net loss: on programs this small the submit/wait overhead dominates
#: the kernels and parallel execution *slows the program down* (the
#: "when does sharding pay off" headroom from the PR 7 matrix).  The
#: crossover on the bench backbones sits around a couple of
#: milliseconds of serial work per run.
PARALLEL_MIN_SERIAL_SECONDS = 0.002


def resolve_parallel_threshold(threshold: float | None = None) -> float:
    """Serial-seconds gate for the thread scheduler.

    A program compiled with ``parallel > 1`` first runs serially and
    measures itself; the dependency-graph scheduler engages only once
    the measured serial run time reaches this threshold
    (``REPRO_SERVE_PARALLEL_MIN_SECONDS``, default
    :data:`PARALLEL_MIN_SERIAL_SECONDS`).  ``0`` disables the gate and
    engages parallel execution unconditionally.
    """
    if threshold is None:
        raw = os.environ.get("REPRO_SERVE_PARALLEL_MIN_SECONDS", "").strip()
        threshold = float(raw) if raw else PARALLEL_MIN_SERIAL_SECONDS
    threshold = float(threshold)
    if threshold < 0:
        raise ServeError(
            f"serve parallel threshold must be >= 0 seconds, got {threshold}"
        )
    return threshold


def quantize_weight(array: np.ndarray) -> np.ndarray:
    """Symmetric per-channel int8 fake-quantization of a weight matrix.

    Channels run along the trailing axis (the output dimension of every
    folded matrix the compiler produces: linear weights, im2col conv
    matrices, adapter factor matrices).  The int8 codes are dequantized
    back to float32 immediately, so the returned matrix folds true int8
    rounding into an f32-accumulation GEMM — runs measure int8 accuracy
    at f32 speed.
    """
    array = np.asarray(array, dtype=np.float64)
    reduce_axes = tuple(range(array.ndim - 1))
    amax = np.max(np.abs(array), axis=reduce_axes, keepdims=True)
    scale = np.where(amax > 0.0, amax / 127.0, 1.0)
    codes = np.clip(np.rint(array / scale), -127.0, 127.0)
    return (codes * scale).astype(np.float32)


# -- fusion -------------------------------------------------------------------


def fuse_program(steps: list, output_slot: int) -> tuple[list, int]:
    """Collapse single-consumer chains into composed kernels.

    A step folds into its predecessor when it reads exactly the slot the
    previous (already folded) step wrote and nothing else consumes that
    slot.  The composed kernel calls the two originals in order, so the
    fused program computes bit-identical values; the fused step keeps
    both component names (``conv2d+batchnorm2d+relu``) so program
    listings still show what ran.  Returns ``(steps, eliminated)``.
    """
    consumers: dict[int, int] = {output_slot: 1}
    for step in steps:
        for slot in step.inputs:
            consumers[slot] = consumers.get(slot, 0) + 1
    fused: list = []
    for step in steps:
        prev = fused[-1] if fused else None
        if (
            prev is not None
            and len(step.inputs) == 1
            and step.inputs[0] == prev.output
            and consumers.get(prev.output, 0) == 1
        ):
            fused[-1] = _compose(prev, step)
        else:
            fused.append(step)
    return fused, len(steps) - len(fused)


def _compose(prev, step):
    """One step computing ``step.fn(prev.fn(...))`` (chain order kept)."""
    first, second = prev.fn, step.fn

    def chained(*args: np.ndarray) -> np.ndarray:
        return second(first(*args))

    return type(step)(
        f"{prev.name}+{step.name}", chained, prev.inputs, step.output
    )


#: Kernels whose bit-level result depends on their input's memory layout:
#: numpy's pairwise summation walks the array in stride order, so a
#: reduction over a C-contiguous arena buffer can differ by ~1 ulp from
#: the same reduction over the transposed view the autograd path produces
#: (conv outputs are NHWC-storage transposes, and elementwise ufuncs
#: preserve that layout).  Elementwise kernels are bitwise
#: layout-independent; reductions are not.
LAYOUT_SENSITIVE = frozenset({"global_avg_pool2d", "layernorm", "mean", "sum"})

#: Kernels whose output layout does not depend on their input layout:
#: conv gathers im2col patches by value and linear goes through BLAS,
#: both materializing a fresh output — they stop the backward layout
#: taint.  Elementwise ufuncs, by contrast, propagate whatever layout
#: their inputs carry.
LAYOUT_BARRIERS = frozenset({"conv2d", "linear"})


def _layout_sensitive(step) -> bool:
    return any(part in LAYOUT_SENSITIVE for part in step.name.split("+"))


def pin_layouts(steps: list) -> None:
    """Drop ``fn_out`` upstream of layout-sensitive reductions (f64 only).

    Writing into an arena buffer (or a sharded output) forces the result
    C-contiguous, and elementwise ufuncs then carry that layout forward —
    so a downstream pairwise sum walks memory in a different order than
    the autograd reference (~1 ulp).  Taint flows backward from each
    reduction through every layout-preserving step until a barrier kernel
    resets the layout; tainted steps run their plain ``fn`` so the
    reduction sees the exact layout the reference saw.
    """
    sensitive: set[int] = set()
    for step in reversed(steps):
        tainted = step.output in sensitive
        if _layout_sensitive(step):
            sensitive.update(step.inputs)
            tainted = True
        if not tainted:
            continue
        if step.fn_out is not None:
            step.fn_out = None
            step.out_spec = None
            step.shardable = False
        if not any(part in LAYOUT_BARRIERS for part in step.name.split("+")):
            sensitive.update(step.inputs)


# -- arena allocator ----------------------------------------------------------


class Arena:
    """Per-run buffer pool over (shape, dtype) buckets.

    Freed intermediate buffers (from the liveness pass) are recycled as
    outputs for later steps of the same geometry.  The pool lives for
    one ``run()`` only, so a returned program output can never be
    overwritten by a later request.  ``poison=True`` fills every pooled
    buffer with NaN — the booby-trap tests use it to prove no kernel
    ever reads a recycled buffer before fully overwriting it.
    """

    __slots__ = ("_buckets", "hits", "allocs", "poison")

    def __init__(self, poison: bool = False) -> None:
        self._buckets: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.allocs = 0
        self.poison = poison

    def take(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        bucket = self._buckets.get((shape, dtype))
        if bucket:
            self.hits += 1
            return bucket.pop()
        self.allocs += 1
        return np.empty(shape, dtype=dtype)

    def put(self, array: np.ndarray, live: list) -> None:
        """Pool a freed buffer unless anything live could still see it.

        Only arrays that own their memory are pooled, and only when no
        live slot value shares memory with them — a transpose/reshape
        view of a freed buffer keeps the buffer out of the pool for the
        rest of the run, which is what makes recycling alias-safe.
        """
        if array.base is not None or not array.flags.c_contiguous:
            return
        for value in live:
            if value is not None and np.may_share_memory(array, value):
                return
        if self.poison and array.dtype.kind == "f":
            array.fill(np.nan)
        self._buckets.setdefault((array.shape, array.dtype), []).append(array)


def run_step(step, inputs: list, arena: Arena | None, lock=None):
    """Execute one step, drawing the output from ``arena`` when it can."""
    if arena is not None and step.fn_out is not None:
        shape, dtype = step.out_spec(*inputs)
        if lock is None:
            out = arena.take(shape, np.dtype(dtype))
        else:
            with lock:
                out = arena.take(shape, np.dtype(dtype))
        step.fn_out(out, *inputs)
        return out
    return step.fn(*inputs)


# -- parallel execution -------------------------------------------------------

_POOL: ThreadPoolExecutor | None = None
_POOL_LOCK = threading.Lock()


def _shared_pool() -> ThreadPoolExecutor:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=min(8, os.cpu_count() or 1),
                thread_name_prefix="repro-serve-slot",
            )
        return _POOL


def _shard_step(step, inputs: list, arena, lock, workers: int) -> tuple[np.ndarray, int]:
    """Row-shard one wide elementwise step across the worker pool.

    Only steps tagged ``shardable`` (row-independent ufunc kernels —
    activations, batch norm, residual adds) qualify: each output row
    depends on the same-index input rows alone, so slicing the batch
    axis changes nothing but scheduling.  The caller's thread computes
    the first shard itself while the pool runs the rest.
    """
    shape, dtype = step.out_spec(*inputs)
    if lock is None:
        out = np.empty(shape, dtype=np.dtype(dtype)) if arena is None else arena.take(
            shape, np.dtype(dtype)
        )
    else:
        with lock:
            out = np.empty(shape, dtype=np.dtype(dtype)) if arena is None else arena.take(
                shape, np.dtype(dtype)
            )
    rows = shape[0]
    bounds = np.linspace(0, rows, workers + 1).astype(int)
    spans = [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]
    pool = _shared_pool()
    futures = [
        pool.submit(step.fn_out, out[lo:hi], *(a[lo:hi] for a in inputs))
        for lo, hi in spans[1:]
    ]
    lo, hi = spans[0]
    step.fn_out(out[lo:hi], *(a[lo:hi] for a in inputs))
    for future in futures:
        future.result()
    return out, len(spans)


def _can_shard(step, inputs: list, workers: int) -> bool:
    if not (step.shardable and step.fn_out is not None and step.out_spec is not None):
        return False
    shape, dtype = step.out_spec(*inputs)
    if len(shape) == 0 or shape[0] < 2 * workers:
        return False
    if int(np.prod(shape)) * np.dtype(dtype).itemsize < SHARD_MIN_BYTES:
        return False
    return all(a.shape[:1] == shape[:1] for a in inputs)


def run_parallel(program, values: list, arena: Arena | None) -> list[int]:
    """Dependency-graph execution of a program's steps.

    Ready steps (all producers finished) run concurrently on the shared
    pool, bounded by ``program.parallel`` in flight; slots are released
    by per-slot pending-consumer counts (out-of-order completion makes
    the serial last-use index unusable here).  When exactly one step is
    runnable — the common sequential backbone — a wide elementwise step
    is row-sharded across the pool instead, so the workers never idle
    on purely sequential programs.  Returns the concurrency level
    sampled at each scheduling round (the ``serve.parallel.slots``
    histogram feed).
    """
    steps = program.steps
    workers = program.parallel
    producer: dict[int, int] = {}
    for index, step in enumerate(steps):
        producer[step.output] = index
    indegree = [0] * len(steps)
    dependents: list[list[int]] = [[] for _ in steps]
    for index, step in enumerate(steps):
        deps = {producer[slot] for slot in step.inputs if slot in producer}
        indegree[index] = len(deps)
        for dep in deps:
            dependents[dep].append(index)
    pending: dict[int, int] = {}
    for step in steps:
        for slot in step.inputs:
            pending[slot] = pending.get(slot, 0) + 1
    protected = set(program.input_slots) | {program.output_slot}
    lock = threading.Lock()
    pool = _shared_pool()
    ready = [index for index, degree in enumerate(indegree) if degree == 0]
    ready.reverse()  # pop() then runs steps in program order
    futures: dict = {}
    samples: list[int] = []

    def finish(index: int, out: np.ndarray) -> None:
        step = steps[index]
        values[step.output] = out
        program._record_shape(index, out)
        for slot in step.inputs:
            pending[slot] -= 1
            if pending[slot] == 0 and slot not in protected:
                freed = values[slot]
                values[slot] = None
                if arena is not None and freed is not None:
                    with lock:
                        arena.put(freed, values)
        for dep in dependents[index]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)

    while ready or futures:
        if not futures and len(ready) == 1:
            # Sequential stretch: spend the workers on rows instead.
            index = ready.pop()
            step = steps[index]
            inputs = [values[slot] for slot in step.inputs]
            if _can_shard(step, inputs, workers):
                out, shards = _shard_step(step, inputs, arena, lock, workers)
                samples.append(shards)
            else:
                out = run_step(step, inputs, arena, lock)
                samples.append(1)
            finish(index, out)
            continue
        launched = False
        while ready and len(futures) < workers:
            index = ready.pop()
            step = steps[index]
            inputs = [values[slot] for slot in step.inputs]
            futures[pool.submit(run_step, step, inputs, arena, lock)] = index
            launched = True
        if launched:
            samples.append(len(futures))
        done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
        for future in done:
            index = futures.pop(future)
            finish(index, future.result())
    return samples
