"""Graph-structured tensor networks with contraction planning (Fig. 1).

A :class:`TensorNetwork` holds named tensors whose axes carry index labels;
axes of different tensors sharing a label are bond (contracted) indices,
labels appearing on exactly one tensor are free (dangling) indices.  The
network contracts either in one shot via einsum or pairwise following a
greedy schedule that always merges the pair producing the smallest
intermediate — the classic heuristic for contraction-order planning.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ShapeError


@dataclass
class ContractionStep:
    """One pairwise merge in a contraction schedule."""

    left: str
    right: str
    result: str
    result_size: int


class TensorNetwork:
    """A collection of labeled tensors forming a contractible network."""

    def __init__(self) -> None:
        self._tensors: dict[str, np.ndarray] = {}
        self._labels: dict[str, tuple[str, ...]] = {}
        self._dims: dict[str, int] = {}

    # -- construction -------------------------------------------------------

    def add(self, name: str, tensor: np.ndarray, labels: tuple[str, ...] | list[str]) -> None:
        """Add ``tensor`` with one label per axis.

        Labels shared with existing tensors become bonds and must agree in
        dimension; a label may appear on at most two tensors (tensor-network
        edges are pairwise).
        """
        tensor = np.asarray(tensor)
        labels = tuple(labels)
        if name in self._tensors:
            raise ShapeError(f"tensor {name!r} already in network")
        if len(labels) != tensor.ndim:
            raise ShapeError(
                f"tensor {name!r} has order {tensor.ndim} but {len(labels)} labels"
            )
        if len(set(labels)) != len(labels):
            raise ShapeError(f"tensor {name!r} repeats a label: {labels}")
        for label, dim in zip(labels, tensor.shape):
            if label in self._dims:
                if self._dims[label] != dim:
                    raise ShapeError(
                        f"label {label!r} has dimension {self._dims[label]} in the "
                        f"network but {dim} on tensor {name!r}"
                    )
                holders = self._holders(label)
                if len(holders) >= 2:
                    raise ShapeError(
                        f"label {label!r} already connects {holders}; a bond joins "
                        "at most two tensors"
                    )
            self._dims[label] = dim
        self._tensors[name] = tensor
        self._labels[name] = labels

    def _holders(self, label: str) -> list[str]:
        return [name for name, labels in self._labels.items() if label in labels]

    # -- structure -----------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return list(self._tensors)

    def order(self, name: str) -> int:
        return self._tensors[name].ndim

    def free_labels(self) -> list[str]:
        """Dangling indices, in first-appearance order (the output axes)."""
        counts: dict[str, int] = {}
        ordered: list[str] = []
        for labels in self._labels.values():
            for label in labels:
                if label not in counts:
                    ordered.append(label)
                counts[label] = counts.get(label, 0) + 1
        return [label for label in ordered if counts[label] == 1]

    def bond_labels(self) -> list[str]:
        counts: dict[str, int] = {}
        for labels in self._labels.values():
            for label in labels:
                counts[label] = counts.get(label, 0) + 1
        return sorted(label for label, c in counts.items() if c == 2)

    def graph(self) -> nx.Graph:
        """The network as an undirected graph: nodes = tensors, edges = bonds."""
        g = nx.Graph()
        for name, tensor in self._tensors.items():
            g.add_node(name, order=tensor.ndim, shape=tensor.shape)
        for label in self.bond_labels():
            left, right = self._holders(label)
            g.add_edge(left, right, label=label, dim=self._dims[label])
        return g

    # -- contraction ------------------------------------------------------------

    def _einsum_spec(self) -> tuple[str, list[np.ndarray]]:
        alphabet = string.ascii_letters
        all_labels: list[str] = []
        for labels in self._labels.values():
            for label in labels:
                if label not in all_labels:
                    all_labels.append(label)
        if len(all_labels) > len(alphabet):
            raise ShapeError(f"too many distinct labels ({len(all_labels)}) for einsum")
        letter = {label: alphabet[i] for i, label in enumerate(all_labels)}
        parts = [
            "".join(letter[lab] for lab in self._labels[name]) for name in self._tensors
        ]
        out = "".join(letter[lab] for lab in self.free_labels())
        spec = ",".join(parts) + "->" + out
        return spec, list(self._tensors.values())

    def contract(self) -> np.ndarray:
        """Contract the whole network; output axes follow free-label order."""
        if not self._tensors:
            raise ShapeError("cannot contract an empty network")
        spec, arrays = self._einsum_spec()
        return np.einsum(spec, *arrays, optimize=True)

    def greedy_schedule(self) -> list[ContractionStep]:
        """Plan pairwise contractions, smallest intermediate first.

        Only pairs connected by a bond are considered (falling back to outer
        products when the network is disconnected).  Returns the sequence of
        merges with the size of each intermediate, which the Figure 1 bench
        compares against naive left-to-right contraction.
        """
        labels = {name: list(lab) for name, lab in self._labels.items()}
        sizes = dict(self._dims)
        steps: list[ContractionStep] = []
        live = set(labels)
        counter = 0

        def result_info(a: str, b: str) -> tuple[list[str], int]:
            shared = set(labels[a]) & set(labels[b])
            out = [lab for lab in labels[a] + labels[b] if lab not in shared]
            size = 1
            for lab in out:
                size *= sizes[lab]
            return out, size

        while len(live) > 1:
            candidates = []
            for a in live:
                for b in live:
                    if a >= b:
                        continue
                    shared = set(labels[a]) & set(labels[b])
                    out, size = result_info(a, b)
                    candidates.append((not shared, size, a, b, out))
            __, size, a, b, out = min(candidates)[0:5]
            counter += 1
            new_name = f"t{counter}"
            steps.append(ContractionStep(left=a, right=b, result=new_name, result_size=size))
            labels[new_name] = out
            live.discard(a)
            live.discard(b)
            live.add(new_name)
        return steps

    def contract_with_schedule(self) -> tuple[np.ndarray, list[ContractionStep]]:
        """Execute the greedy schedule pairwise; returns (result, steps).

        The result axes are permuted to match :meth:`contract` so the two
        paths are directly comparable in tests.
        """
        schedule = self.greedy_schedule()
        arrays = dict(self._tensors)
        labels = {name: list(lab) for name, lab in self._labels.items()}
        for step in schedule:
            a, b = arrays.pop(step.left), arrays.pop(step.right)
            la, lb = labels.pop(step.left), labels.pop(step.right)
            shared = [lab for lab in la if lab in lb]
            axes_a = tuple(la.index(lab) for lab in shared)
            axes_b = tuple(lb.index(lab) for lab in shared)
            merged = np.tensordot(a, b, axes=(axes_a, axes_b))
            out_labels = [lab for lab in la if lab not in shared] + [
                lab for lab in lb if lab not in shared
            ]
            arrays[step.result] = merged
            labels[step.result] = out_labels
        (final_name,) = arrays
        result = arrays[final_name]
        final_labels = labels[final_name]
        target = self.free_labels()
        if final_labels != target:
            perm = tuple(final_labels.index(lab) for lab in target)
            result = result.transpose(perm)
        return result, schedule
