"""Tests for the legacy profiler shim over ``repro.obs``.

``TestProfiler`` / ``TestGlobalProfilerInstrumentation`` predate the
redesign and run unchanged — the shim's compatibility contract.
``TestLegacyShimRegression`` additionally pins the derived output format
to what the pre-redesign flat profiler produced.
"""

import numpy as np

from repro.autograd import Tensor
from repro.autograd import conv_ops, ops
from repro.obs import OBS
from repro.utils.profiling import PROFILER, OpStats, Profiler, profiled


class TestProfiler:
    def test_disabled_by_default_records_nothing(self):
        profiler = Profiler()
        profiler.record("op", 1.0, 10)
        assert profiler.snapshot() == {}

    def test_record_accumulates(self):
        profiler = Profiler(enabled=True)
        profiler.record("op", 0.5, 10)
        profiler.record("op", 0.25, 30)
        stats = profiler.snapshot()["op"]
        assert stats.calls == 2
        assert stats.seconds == 0.75
        assert stats.bytes == 40

    def test_bump_counts_without_duration(self):
        profiler = Profiler(enabled=True)
        profiler.bump("cache.hit", 128)
        stats = profiler.snapshot()["cache.hit"]
        assert (stats.calls, stats.seconds, stats.bytes) == (1, 0.0, 128)

    def test_track_times_block(self):
        profiler = Profiler(enabled=True)
        with profiler.track("block"):
            pass
        stats = profiler.snapshot()["block"]
        assert stats.calls == 1
        assert stats.seconds >= 0.0

    def test_reset_clears(self):
        profiler = Profiler(enabled=True)
        profiler.bump("op")
        profiler.reset()
        assert profiler.snapshot() == {}

    def test_snapshot_is_a_copy(self):
        profiler = Profiler(enabled=True)
        profiler.bump("op")
        snap = profiler.snapshot()
        profiler.bump("op")
        assert snap["op"].calls == 1

    def test_as_dict_is_json_friendly(self):
        import json

        profiler = Profiler(enabled=True)
        profiler.record("op", 0.1, 5)
        payload = json.dumps(profiler.as_dict())
        assert '"calls": 1' in payload

    def test_opstats_merge(self):
        stats = OpStats()
        stats.merge(1.0, 2)
        assert (stats.calls, stats.seconds, stats.bytes) == (1, 1.0, 2)


class TestGlobalProfilerInstrumentation:
    def test_profiled_context_restores_state(self):
        assert not PROFILER.enabled
        with profiled():
            assert PROFILER.enabled
        assert not PROFILER.enabled

    def test_einsum_counters_fire(self, rng):
        ops.clear_einsum_plan_cache()
        with profiled() as profiler:
            a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
            b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
            ops.einsum("ij,jk->ik", a, b).sum().backward()
            counters = profiler.as_dict()
        assert counters["einsum.forward"]["calls"] >= 1
        assert counters["einsum.backward"]["calls"] >= 1

    def test_conv_counters_fire(self, rng):
        conv_ops.clear_conv_caches()
        with profiled() as profiler:
            x = Tensor(rng.normal(size=(1, 2, 6, 6)))
            w = Tensor(rng.normal(size=(3, 3, 2, 2)), requires_grad=True)
            conv_ops.conv2d(x, w, None, stride=1, padding=1).sum().backward()
            counters = profiler.as_dict()
        assert counters["conv2d.forward"]["calls"] >= 1
        assert counters["conv2d.backward"]["calls"] >= 1


class TestLegacyShimRegression:
    """Pin the shim's derived output to the pre-redesign flat format."""

    def test_global_profiler_shares_the_obs_registry(self):
        assert PROFILER.registry is OBS

    def test_as_dict_matches_the_pre_redesign_format_exactly(self):
        profiler = Profiler(enabled=True)
        profiler.record("einsum.forward", 0.5, 100)
        profiler.record("einsum.forward", 0.25, 28)
        profiler.bump("einsum.plan_cache.hit")
        assert profiler.as_dict() == {
            "einsum.forward": {"calls": 2, "seconds": 0.75, "bytes": 128},
            "einsum.plan_cache.hit": {"calls": 1, "seconds": 0.0, "bytes": 0},
        }

    def test_obs_recorded_events_are_visible_through_the_shim(self):
        profiler = Profiler(enabled=True)
        reg = profiler.registry
        reg.inc("serve.batches", 3)
        reg.observe("serve.run", 0.5, bytes=64)
        reg.hist("serve.batch.size", 8)
        reg.hist("serve.batch.size", 8)
        reg.hist("serve.batch.size", 32)
        flat = profiler.as_dict()
        # Histograms flatten to their historical name.<bucket> spelling.
        assert flat["serve.batch.size.8"] == {"calls": 2, "seconds": 0.0, "bytes": 0}
        assert flat["serve.batch.size.32"] == {"calls": 1, "seconds": 0.0, "bytes": 0}
        assert "serve.batch.size" not in flat
        assert flat["serve.batches"]["calls"] == 3
        assert flat["serve.run"] == {"calls": 1, "seconds": 0.5, "bytes": 64}

    def test_snapshot_yields_opstats_values(self):
        profiler = Profiler(enabled=True)
        profiler.record("op", 0.5, 10)
        stats = profiler.snapshot()["op"]
        assert isinstance(stats, OpStats)
        assert (stats.calls, stats.seconds, stats.bytes) == (1, 0.5, 10)

    def test_merge_counters_accepts_both_schemas(self):
        target = Profiler()  # disabled: merges still land, as before
        target.merge_counters({"op": {"calls": 2, "seconds": 0.5, "bytes": 8}})
        target.merge_counters(
            {
                "op": {"kind": "counter", "calls": 1, "seconds": 0.5, "bytes": 2},
                "sizes": {"kind": "histogram", "calls": 1, "seconds": 0.0,
                          "bytes": 0, "buckets": {"8": 1}},
            }
        )
        flat = target.as_dict()
        assert flat["op"] == {"calls": 3, "seconds": 1.0, "bytes": 10}
        assert flat["sizes.8"]["calls"] == 1

    def test_enable_disable_round_trip_drives_the_registry(self):
        profiler = Profiler(enabled=True)
        assert profiler.registry.enabled
        profiler.disable()
        profiler.record("op", 1.0, 1)
        assert profiler.as_dict() == {}
        profiler.enable()
        profiler.bump("op")
        assert profiler.as_dict()["op"]["calls"] == 1
