"""Typed experiment grids: one :class:`GridSpec`, every runtime feature.

Before this module, the fault-tolerant grid machinery — run-directory
checkpointing, ``--resume``, retry with deterministic backoff, per-cell
soft timeouts, and the observability span tree — lived welded to Table I
inside ``runtime/table1.py``; a second evaluation axis meant
copy-pasting all of it.  :func:`run_grid` owns that machinery once,
parameterized by a :class:`GridSpec`:

- **axes** — an ordered mapping of axis name to values; the grid's cells
  are the cartesian product, keyed by tuples in axis order, executed in
  product order (first axis outermost).
- **cell fn** — a picklable module-level callable executed per cell in a
  pool worker (or in-process on the serial fallback), fed a payload the
  spec builds in the parent from ``(config, context, key)``.
- **contexts** (optional) — expensive per-group state shared by many
  cells (the Table I per-seed pretraining): ``context_key`` buckets cell
  keys into groups, ``context_fn`` builds each group's context once, and
  only groups with missing cells are rebuilt on resume.
- **artifact kind** — every completed cell is checkpointed as a
  versioned artifact (:mod:`repro.utils.serialization`) under the spec's
  filename scheme; a resumed grid loads completed cells and re-runs only
  the missing ones, bit-identically, because cells must derive all
  randomness from their key alone.

Span names derive from ``spec.name`` — ``<name>.grid`` →
``<name>.contexts`` / ``<name>.cells`` → ``<name>.context`` /
``<name>.cell`` — and the run-dir manifest kind is ``<name>_run``, so
every grid gets the same ``repro trace`` report and the same refusal
behavior on mismatched resumes.

``run_table1_grid`` is a thin shim over this module, pinned bit-identical
to its pre-refactor implementation by the resume/parallel acceptance
tests; the robustness grid (:mod:`repro.runtime.robustness`) is the
second client.
"""

from __future__ import annotations

import contextlib
import itertools
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError
from repro.obs import OBS, TRACER
from repro.runtime.pool import CellResult, raise_failures, run_cells
from repro.runtime.rundir import RunDir, resolve_run_dirs


@dataclass
class GridSpec:
    """Everything :func:`run_grid` needs to run one experiment grid.

    ``cell_fn`` / ``context_fn`` must be picklable (module-level) — they
    execute inside pool workers.  The payload builders and codec hooks
    run in the parent and may be closures.
    """

    #: Grid family name: span prefix and (``<name>_run``) manifest kind.
    name: str
    #: The experiment configuration; fingerprinted into the manifest.
    config: object
    #: Ordered axis name -> values; cells = cartesian product, in order.
    axes: "dict[str, tuple]"
    #: Worker-side cell executor: ``cell_fn(payload) -> value``.
    cell_fn: Callable[[object], object]
    #: Parent-side payload builder: ``(config, context, key) -> payload``.
    cell_payload: Callable[[object, object, tuple], object]
    #: Artifact ``kind`` of a persisted cell checkpoint.
    artifact_kind: str
    #: Cell key -> checkpoint filename (under ``<run_dir>/cells/``).
    cell_filename: Callable[[tuple], str]
    #: ``(key, value) -> (arrays, meta)`` for the cell artifact.
    encode_cell: Callable[[tuple, object], "tuple[dict, dict]"]
    #: ``(key, arrays, meta, path) -> value``; must raise
    #: :class:`repro.errors.CheckpointError` on a key/meta mismatch.
    decode_cell: Callable[[tuple, dict, dict, str], object]
    #: Optional shared-context phase (all three set, or none).
    context_fn: Callable[[object], object] | None = None
    context_payload: Callable[[object, object], object] | None = None
    context_key: Callable[[tuple], object] | None = None
    #: Extra non-axis manifest ``grid`` entries (e.g. the backbone name).
    manifest_extra: dict = field(default_factory=dict)
    #: Perf-flag overrides applied around every cell execution.
    perf: dict | None = None

    @property
    def run_kind(self) -> str:
        """Manifest ``kind`` of this grid's run directories."""
        return f"{self.name}_run"

    def cells(self) -> list[tuple]:
        """Every cell key, in execution order (first axis outermost)."""
        return list(itertools.product(*self.axes.values()))

    def manifest_grid(self) -> dict:
        """The manifest's ``grid`` section: extras plus one entry per axis.

        Integer axes are stored sorted and deduplicated — they may be
        extended across invocations of the same run dir (the Table I
        ``seeds`` axis) and the manifest keeps a canonical union.
        Categorical axes are stored in order; the config fingerprint pins
        them, so they can never legally change between invocations.
        """
        grid = dict(self.manifest_extra)
        for axis, values in self.axes.items():
            if all(isinstance(value, (int, bool)) for value in values):
                grid[axis] = sorted({int(value) for value in values})
            else:
                grid[axis] = list(values)
        return grid

    def validate(self) -> None:
        if not self.axes:
            raise ConfigError(f"grid {self.name!r} has no axes")
        for axis, values in self.axes.items():
            if not tuple(values):
                raise ConfigError(
                    f"grid {self.name!r} axis {axis!r} has no values"
                )
        context_hooks = (self.context_fn, self.context_payload, self.context_key)
        if any(h is not None for h in context_hooks) and not all(
            h is not None for h in context_hooks
        ):
            raise ConfigError(
                f"grid {self.name!r} must set all of context_fn/"
                f"context_payload/context_key, or none"
            )


@dataclass
class GridResult:
    """Outcome of one :func:`run_grid` call.

    ``values`` maps every completed cell key (restored or freshly
    computed) to its value; ``restored`` lists the keys loaded from the
    run directory; ``cell_results`` carries per-cell diagnostics in
    execution order (context phase first).
    """

    spec: GridSpec
    values: dict
    cell_results: list[CellResult] = field(default_factory=list)
    restored: list = field(default_factory=list)
    run_dir: str | None = None

    @property
    def failures(self) -> list:
        return [r.failure for r in self.cell_results if not r.ok]


@contextlib.contextmanager
def _grid_observability(
    active: bool, rundir: RunDir | None, span_name: str, **attrs: object
):
    """Enable metrics + tracing around the grid, restoring prior state.

    Yields the open grid span (``None`` when inactive) and exports its
    finished tree to the run directory on exit — in a ``finally``, so a
    grid that dies mid-flight (strict failure, ctrl-C) still leaves its
    partial trace, with the grid span marked ``error``.  If this context
    enabled the tracer itself, the grid root is drained on exit so
    repeated grids in one process don't accumulate; a caller-enabled
    tracer keeps its own roots.
    """
    if not active:
        yield None
        return
    previous = (OBS.enabled, TRACER.enabled)
    OBS.enabled = True
    TRACER.enabled = True
    try:
        with TRACER.span(span_name, **attrs) as grid_span:
            yield grid_span
    finally:
        OBS.enabled, TRACER.enabled = previous
        if not previous[1]:
            TRACER.drain()
        if rundir is not None:
            rundir.write_trace([grid_span.to_dict()])


def run_grid(
    spec: GridSpec,
    jobs: int = 1,
    strict: bool = True,
    *,
    out_dir: str | os.PathLike | None = None,
    resume: str | os.PathLike | None = None,
    max_retries: int = 0,
    retry_backoff: float = 0.05,
    cell_timeout: float | None = None,
    obs: bool | None = None,
) -> GridResult:
    """Execute ``spec``'s grid over ``jobs`` workers, durably.

    Bit-identical at any ``jobs`` (including the serial fallback), with
    or without a run directory, provided every cell derives its
    randomness from its key alone.  With ``strict`` (default), any cell
    failure raises :class:`repro.errors.WorkerError` after the whole grid
    has drained; otherwise failed cells appear in ``result.cell_results``
    and their values are omitted.

    ``out_dir`` persists every completed cell into a run directory as it
    finishes; ``resume`` additionally loads the directory's already-
    completed cells and re-runs only the missing ones (``resume`` implies
    ``out_dir``; pointing them at different paths is an error).  Failed
    cells are retried ``max_retries`` times with deterministic
    exponential backoff, and ``cell_timeout`` arms the per-cell soft
    timeout — see :func:`repro.runtime.pool.run_cells`.

    ``obs`` turns the observability layer on (metrics + per-cell trace
    spans, exported to ``<run_dir>/trace.jsonl``); the default enables it
    exactly when the grid has a run directory to export into.
    """
    spec.validate()
    all_cells = spec.cells()

    root, resuming = resolve_run_dirs(out_dir, resume)
    rundir = None
    if root is not None:
        if resuming:
            RunDir.open(root, kind=spec.run_kind)  # must already exist
        rundir = RunDir.create_for(
            root, spec.run_kind, spec.config, spec.manifest_grid()
        )
    restored: dict = {}
    if rundir is not None and resuming:
        for key in all_cells:
            path = rundir.artifact_path(spec.cell_filename(key))
            if not os.path.exists(path):
                continue
            arrays, meta = rundir.load_cell_artifact(
                spec.cell_filename(key), spec.artifact_kind
            )
            restored[key] = spec.decode_cell(key, arrays, meta, path)

    pool_options = {
        "jobs": jobs,
        "max_retries": max_retries,
        "retry_backoff": retry_backoff,
        "cell_timeout": cell_timeout,
    }

    missing = [key for key in all_cells if key not in restored]

    obs_active = (rundir is not None) if obs is None else bool(obs)
    grid_attrs = {axis: list(values) for axis, values in spec.axes.items()}
    with _grid_observability(
        obs_active,
        rundir,
        f"{spec.name}.grid",
        **grid_attrs,
        jobs=jobs,
        restored=len(restored),
    ):
        # Contexts are rebuilt only for groups that still have missing cells.
        contexts: dict = {}
        context_results: list[CellResult] = []
        if spec.context_fn is not None:
            context_keys = sorted({spec.context_key(key) for key in missing})
            with TRACER.span(f"{spec.name}.contexts", cells=len(context_keys)):
                context_results = run_cells(
                    spec.context_fn,
                    [spec.context_payload(spec.config, ck) for ck in context_keys],
                    keys=[("context", ck) for ck in context_keys],
                    span_name=f"{spec.name}.context",
                    **pool_options,
                )
                if strict:
                    raise_failures(context_results)
            contexts = {
                result.key[1]: result.value
                for result in context_results
                if result.ok
            }

        cells = []
        keys = []
        for key in missing:
            context = None
            if spec.context_fn is not None:
                ck = spec.context_key(key)
                if ck not in contexts:
                    continue  # non-strict: the group's context failed
                context = contexts[ck]
            cells.append(spec.cell_payload(spec.config, context, key))
            keys.append(key)

        def checkpoint(result: CellResult) -> None:
            if rundir is not None and result.ok:
                arrays, meta = spec.encode_cell(result.key, result.value)
                rundir.save_cell_artifact(
                    spec.cell_filename(result.key),
                    arrays,
                    spec.artifact_kind,
                    meta,
                )

        with TRACER.span(f"{spec.name}.cells", cells=len(cells)):
            cell_results = run_cells(
                spec.cell_fn,
                cells,
                keys=keys,
                perf=dict(spec.perf) if spec.perf else None,
                on_result=checkpoint,
                span_name=f"{spec.name}.cell",
                **pool_options,
            )
            if strict:
                raise_failures(cell_results)

    values = dict(restored)
    for result in cell_results:
        if result.ok:
            values[result.key] = result.value
    return GridResult(
        spec=spec,
        values=values,
        cell_results=context_results + cell_results,
        restored=sorted(restored),
        run_dir=rundir.root if rundir is not None else None,
    )
