"""Learning-rate schedules; called once per step with the step index."""

from __future__ import annotations

import math

from repro.errors import TrainingError


class ConstantSchedule:
    """Always the base rate."""

    def __init__(self, lr: float) -> None:
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class CosineSchedule:
    """Cosine decay from ``lr`` to ``final_lr`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, final_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise TrainingError(f"total_steps must be positive, got {total_steps}")
        self.lr = lr
        self.final_lr = final_lr
        self.total_steps = total_steps

    def __call__(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_lr + (self.lr - self.final_lr) * cosine


class StepSchedule:
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise TrainingError(f"step_size must be positive, got {step_size}")
        self.lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, step: int) -> float:
        return self.lr * self.gamma ** (step // self.step_size)
