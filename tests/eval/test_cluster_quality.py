"""Tests for embedding cluster-quality metrics."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import (
    class_centroid_separation,
    intra_inter_ratio,
    silhouette_score,
)


def blobs(rng, gap: float, n=20, dim=4):
    a = rng.normal(size=(n, dim)) + gap
    b = rng.normal(size=(n, dim)) - gap
    x = np.concatenate([a, b])
    y = np.concatenate([np.zeros(n, np.int64), np.ones(n, np.int64)])
    return x, y


class TestSilhouette:
    def test_well_separated_near_one(self, rng):
        x, y = blobs(rng, gap=20.0)
        assert silhouette_score(x, y) > 0.9

    def test_overlapping_near_zero(self, rng):
        x, y = blobs(rng, gap=0.0)
        assert abs(silhouette_score(x, y)) < 0.2

    def test_better_separation_higher_score(self, rng):
        x1, y1 = blobs(rng, gap=1.0)
        x2, y2 = blobs(rng, gap=5.0)
        assert silhouette_score(x2, y2) > silhouette_score(x1, y1)

    def test_range(self, rng):
        x, y = blobs(rng, gap=2.0)
        assert -1.0 <= silhouette_score(x, y) <= 1.0

    def test_singleton_cluster_scored_zero(self, rng):
        x = rng.normal(size=(5, 3))
        y = np.array([0, 0, 0, 0, 1])
        score = silhouette_score(x, y)
        assert np.isfinite(score)

    def test_validation(self, rng):
        with pytest.raises(EvaluationError):
            silhouette_score(rng.normal(size=(5, 3)), np.zeros(5))
        with pytest.raises(EvaluationError):
            silhouette_score(rng.normal(size=(5, 3, 2)), np.zeros(5))


class TestIntraInterRatio:
    def test_tight_clusters_small_ratio(self, rng):
        x, y = blobs(rng, gap=20.0)
        assert intra_inter_ratio(x, y) < 0.2

    def test_overlap_near_one(self, rng):
        x, y = blobs(rng, gap=0.0)
        assert 0.7 < intra_inter_ratio(x, y) < 1.3

    def test_monotone_in_separation(self, rng):
        x1, y1 = blobs(rng, gap=1.0)
        x2, y2 = blobs(rng, gap=5.0)
        assert intra_inter_ratio(x2, y2) < intra_inter_ratio(x1, y1)


class TestCentroidSeparation:
    def test_grows_with_gap(self, rng):
        x1, y1 = blobs(rng, gap=1.0)
        x2, y2 = blobs(rng, gap=5.0)
        assert class_centroid_separation(x2, y2) > class_centroid_separation(x1, y1)

    def test_three_classes_min_pair(self, rng):
        x = np.concatenate(
            [rng.normal(size=(10, 2)), rng.normal(size=(10, 2)) + 10,
             rng.normal(size=(10, 2)) + 10.5]
        )
        y = np.repeat([0, 1, 2], 10)
        # classes 1 and 2 are the closest pair
        assert class_centroid_separation(x, y) < 3.0
