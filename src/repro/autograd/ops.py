"""Differentiable functional operations.

The most important op here is :func:`einsum`: every tensor-network
contraction in the library (CP, Tensor Ring, Conv-LoRA, the MetaLoRA
formats) is expressed as an einsum, so making einsum differentiable makes
the whole tensor-network layer differentiable for free.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.autograd.tensor import GradFn, Tensor, grad_enabled, unbroadcast
from repro.errors import ShapeError
from repro.perf import FLAGS
from repro.obs import OBS

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


# -- graph-free forward kernels ----------------------------------------------
#
# The raw-array forward computations, split out so the serve compiler can
# run them without Tensor wrapping or graph bookkeeping.  The autograd ops
# below call the same functions, which keeps the two paths bit-identical.


def relu_forward(data: np.ndarray) -> np.ndarray:
    return np.maximum(data, 0.0)


def tanh_forward(data: np.ndarray) -> np.ndarray:
    return np.tanh(data)


def sigmoid_forward(data: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-data))


def gelu_forward(data: np.ndarray) -> np.ndarray:
    out, __ = _gelu_parts(data)
    return out


def _gelu_parts(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """GELU output plus the inner tanh (which the backward pass reuses)."""
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * data**3)
    t = np.tanh(inner)
    return 0.5 * data * (1.0 + t), t


def softmax_forward(data: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = data - data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


# -- elementwise -------------------------------------------------------------


def exp(x: Tensor) -> Tensor:
    out = np.exp(x.data)
    return Tensor._result(out, (x,), (lambda g: g * out,))


def log(x: Tensor) -> Tensor:
    data = x.data
    return Tensor._result(np.log(data), (x,), (lambda g: g / data,))


def sqrt(x: Tensor) -> Tensor:
    out = np.sqrt(x.data)
    return Tensor._result(out, (x,), (lambda g: g * 0.5 / out,))


def tanh(x: Tensor) -> Tensor:
    out = tanh_forward(x.data)
    return Tensor._result(out, (x,), (lambda g: g * (1.0 - out**2),))


def sigmoid(x: Tensor) -> Tensor:
    out = sigmoid_forward(x.data)
    return Tensor._result(out, (x,), (lambda g: g * out * (1.0 - out),))


def relu(x: Tensor) -> Tensor:
    data = x.data
    out = relu_forward(data)
    return Tensor._result(out, (x,), (lambda g: g * (data > 0),))


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in MLP-Mixer)."""
    data = x.data
    out, t = _gelu_parts(data)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * data**2)
        return g * (0.5 * (1.0 + t) + 0.5 * data * (1.0 - t**2) * d_inner)

    return Tensor._result(out, (x,), (grad_fn,))


def maximum(x: Tensor, y: Tensor) -> Tensor:
    """Elementwise max; at ties the gradient is split evenly."""
    out = np.maximum(x.data, y.data)
    x_wins = (x.data > y.data).astype(x.data.dtype)
    tie = (x.data == y.data).astype(x.data.dtype) * 0.5
    wx, wy = x_wins + tie, (1.0 - x_wins) - tie

    return Tensor._result(
        out,
        (x, y),
        (
            lambda g: unbroadcast(g * wx, x.shape),
            lambda g: unbroadcast(g * wy, y.shape),
        ),
    )


def where(condition: np.ndarray, x: Tensor, y: Tensor) -> Tensor:
    """Select from ``x`` where ``condition`` else ``y`` (condition is constant)."""
    cond = np.asarray(condition, dtype=bool)
    out = np.where(cond, x.data, y.data)
    return Tensor._result(
        out,
        (x, y),
        (
            lambda g: unbroadcast(g * cond, x.shape),
            lambda g: unbroadcast(g * ~cond, y.shape),
        ),
    )


# -- softmax family -----------------------------------------------------------


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    out = softmax_forward(x.data, axis=axis)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return Tensor._result(out, (x,), (grad_fn,))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    soft = np.exp(out)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._result(out, (x,), (grad_fn,))


# -- structural ----------------------------------------------------------------


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis``; gradient splits back to each input."""
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_grad(i: int) -> GradFn:
        def grad_fn(g: np.ndarray) -> np.ndarray:
            index = [slice(None)] * g.ndim
            index[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            return g[tuple(index)]

        return grad_fn

    return Tensor._result(
        out, tuple(tensors), tuple(make_grad(i) for i in range(len(tensors)))
    )


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack along a new axis; gradient indexes back per input."""
    if not tensors:
        raise ShapeError("stack requires at least one tensor")
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_grad(i: int) -> GradFn:
        def grad_fn(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return grad_fn

    return Tensor._result(
        out, tuple(tensors), tuple(make_grad(i) for i in range(len(tensors)))
    )


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept units by 1/(1-rate) during training."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out = x.data * mask
    return Tensor._result(out, (x,), (lambda g: g * mask,))


# -- einsum ---------------------------------------------------------------------


def _parse_einsum_spec(spec: str, operand_count: int) -> tuple[list[str], str]:
    if "..." in spec:
        raise ShapeError("ellipsis einsum specs are not supported")
    if "->" not in spec:
        raise ShapeError("einsum spec must be explicit (contain '->')")
    inputs_part, output = spec.split("->")
    inputs = [part.strip() for part in inputs_part.split(",")]
    for labels in inputs:
        if len(set(labels)) != len(labels):
            raise ShapeError(
                f"einsum spec {labels!r} repeats a label within one operand; "
                "diagonal extraction is not differentiable in this engine"
            )
    if len(inputs) != operand_count:
        raise ShapeError(
            f"einsum spec {spec!r} names {len(inputs)} operands, got {operand_count}"
        )
    return inputs, output.strip()


def _contraction_path(
    spec: str, shapes: tuple[tuple[int, ...], ...]
) -> list | None:
    """Optimal pairwise contraction order for >=3-operand einsums.

    Pairwise contraction changes floating-point summation order, so the
    path is only *applied* when ``FLAGS.einsum_optimize`` is set; 2-operand
    contractions always use numpy's direct kernel (bit-identical to the
    reference path).
    """
    if len(shapes) < 3:
        return None
    dummies = [np.broadcast_to(np.float32(0.0), shape) for shape in shapes]
    path, __ = np.einsum_path(spec, *dummies, optimize="optimal")
    return path


class _GradPlan:
    """Everything operand ``i``'s gradient einsum needs, derived once."""

    __slots__ = ("direct_spec", "missing_dims", "perm", "path")

    def __init__(
        self,
        direct_spec: str,
        missing_dims: tuple[int, ...],
        perm: tuple[int, ...],
        path: list | None,
    ) -> None:
        self.direct_spec = direct_spec
        self.missing_dims = missing_dims
        self.perm = perm
        self.path = path


class _EinsumPlan:
    """Parsed spec + contraction order + per-operand gradient plans.

    Cached on ``(spec, shapes)`` so repeated contractions (every training
    step re-runs the same adapter einsums) skip spec parsing, gradient-spec
    derivation and contraction-order search entirely.  Gradient plans are
    derived lazily: inference-only einsums never pay for them.
    """

    __slots__ = ("spec", "inputs", "output", "shapes", "path", "_grad_plans")

    def __init__(self, spec: str, shapes: tuple[tuple[int, ...], ...], operand_count: int):
        inputs, output = _parse_einsum_spec(spec, operand_count)
        for labels, shape in zip(inputs, shapes):
            if len(labels) != len(shape):
                raise ShapeError(
                    f"einsum operand with spec {labels!r} has {len(shape)} axes; "
                    f"shape {shape}"
                )
        self.spec = spec
        self.inputs = inputs
        self.output = output
        self.shapes = shapes
        self.path = _contraction_path(spec, shapes)
        self._grad_plans: list[_GradPlan] | None = None

    def grad_plans(self) -> list[_GradPlan]:
        if self._grad_plans is None:
            self._grad_plans = [self._derive_grad(i) for i in range(len(self.inputs))]
        return self._grad_plans

    def _derive_grad(self, i: int) -> _GradPlan:
        inputs, output = self.inputs, self.output
        target = inputs[i]
        other_specs = [output] + [inputs[j] for j in range(len(inputs)) if j != i]
        available = set("".join(other_specs))
        direct = [label for label in target if label in available]
        missing = [label for label in target if label not in available]
        direct_spec = ",".join(other_specs) + "->" + "".join(direct)
        target_shape = self.shapes[i]
        label_dims = {label: target_shape[k] for k, label in enumerate(target)}
        current = "".join(missing) + "".join(direct)
        perm = tuple(current.index(label) for label in target)
        dims = {}
        for labels, shape in zip(inputs, self.shapes):
            dims.update(zip(labels, shape))
        out_shape = tuple(dims[label] for label in output)
        other_shapes = tuple(self.shapes[j] for j in range(len(inputs)) if j != i)
        path = _contraction_path(direct_spec, (out_shape,) + other_shapes)
        return _GradPlan(
            direct_spec, tuple(label_dims[m] for m in missing), perm, path
        )


_PLAN_CACHE: "OrderedDict[tuple[str, tuple[tuple[int, ...], ...]], _EinsumPlan]" = (
    OrderedDict()
)
_PLAN_CACHE_CAPACITY = 512
_PLAN_CACHE_STATS = {"hits": 0, "misses": 0}


def einsum_plan_cache_stats() -> dict[str, int]:
    """Hit/miss counters plus current size of the plan cache."""
    return dict(_PLAN_CACHE_STATS, size=len(_PLAN_CACHE))


def clear_einsum_plan_cache() -> None:
    _PLAN_CACHE.clear()
    _PLAN_CACHE_STATS["hits"] = 0
    _PLAN_CACHE_STATS["misses"] = 0


def _get_plan(spec: str, shapes: tuple[tuple[int, ...], ...], count: int) -> _EinsumPlan:
    if not FLAGS.einsum_plan_cache:
        return _EinsumPlan(spec, shapes, count)
    key = (spec, shapes)
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_CACHE_STATS["hits"] += 1
        _PLAN_CACHE.move_to_end(key)
        OBS.enabled and OBS.inc("einsum.plan_cache.hit")
        return plan
    plan = _EinsumPlan(spec, shapes, count)
    _PLAN_CACHE_STATS["misses"] += 1
    OBS.enabled and OBS.inc("einsum.plan_cache.miss")
    _PLAN_CACHE[key] = plan
    if len(_PLAN_CACHE) > _PLAN_CACHE_CAPACITY:
        _PLAN_CACHE.popitem(last=False)
    return plan


def einsum_forward(spec: str, *arrays: np.ndarray) -> np.ndarray:
    """Graph-free einsum on raw arrays, sharing the plan cache.

    The serve compiler's pre-planned contractions call this: the first
    request populates :data:`_PLAN_CACHE` (including the optimal pairwise
    path for >=3 operands) and every subsequent request reuses it.  The
    differentiable :func:`einsum` runs the identical forward, so the two
    paths are bit-exact under the same ``FLAGS``.
    """
    shapes = tuple(a.shape for a in arrays)
    plan = _get_plan(spec, shapes, len(arrays))
    out = _apply_plan(plan, spec, arrays)
    if OBS.enabled:
        OBS.inc("einsum.forward", bytes=np.asarray(out).nbytes)
    return out


def _apply_plan(plan: _EinsumPlan, spec: str, arrays) -> np.ndarray:
    if plan.path is not None and FLAGS.einsum_optimize:
        return np.einsum(spec, *arrays, optimize=plan.path)
    return np.einsum(spec, *arrays)


def einsum(spec: str, *operands: Tensor) -> Tensor:
    """Differentiable Einstein summation with an explicit output spec.

    The gradient with respect to operand ``i`` is itself an einsum: contract
    the output gradient with every *other* operand, targeting operand ``i``'s
    index string.  Indices that appear only in operand ``i`` (summed out on
    their own) receive a broadcast gradient.

    Spec parsing, gradient-spec derivation and (for >=3 operands) optimal
    contraction-order search are memoized per ``(spec, shapes)`` — see
    :class:`_EinsumPlan`; disable via ``repro.perf.FLAGS``.
    """
    arrays = [op.data for op in operands]
    shapes = tuple(a.shape for a in arrays)
    plan = _get_plan(spec, shapes, len(operands))

    out = _apply_plan(plan, spec, arrays)
    if OBS.enabled:
        OBS.inc("einsum.forward", bytes=np.asarray(out).nbytes)

    if not grad_enabled():
        return Tensor(out)

    def make_grad(i: int) -> GradFn:
        gplan = plan.grad_plans()[i]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            others = [arrays[j] for j in range(len(arrays)) if j != i]
            if gplan.path is not None and FLAGS.einsum_optimize:
                partial = np.einsum(gplan.direct_spec, g, *others, optimize=gplan.path)
            else:
                partial = np.einsum(gplan.direct_spec, g, *others)
            if gplan.missing_dims:
                # Axes summed out alone in the forward pass: the gradient is
                # constant along them, so broadcast to the full shape.
                partial = np.broadcast_to(
                    np.expand_dims(partial, tuple(range(len(gplan.missing_dims)))),
                    gplan.missing_dims + partial.shape,
                )
            partial = partial.transpose(gplan.perm)
            if OBS.enabled:
                OBS.inc("einsum.backward", bytes=partial.nbytes)
            return np.ascontiguousarray(partial)

        return grad_fn

    return Tensor._result(
        np.asarray(out), tuple(operands), tuple(make_grad(i) for i in range(len(operands)))
    )
