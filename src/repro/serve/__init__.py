"""Graph-free compiled inference for embedding serving.

``compile_features`` lowers a model's ``features()`` into a flat program
of raw-numpy kernels (no Tensor wrapping, no autograd bookkeeping);
``EmbeddingEngine`` serves it with micro-batching and an LRU result
cache.  See docs/serving.md.
"""

from repro.serve.compile import CompiledProgram, ProgramBuilder, compile_features, compiles, compiles_features
from repro.serve.engine import (
    EmbeddingEngine,
    build_engine,
    clear_shared_engines,
    shared_engine,
)

__all__ = [
    "CompiledProgram",
    "EmbeddingEngine",
    "ProgramBuilder",
    "build_engine",
    "clear_shared_engines",
    "compile_features",
    "compiles",
    "compiles_features",
    "shared_engine",
]
