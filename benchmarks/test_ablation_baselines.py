"""Ablation bench: the wider static-PEFT landscape at matched budgets.

The related-work section situates MetaLoRA against the broader adapter
family.  This bench trains every *static* adapter the library ships —
LoRA, TT-LoRA (the LoRETTA family), DoRA and bottleneck adapter tuning —
on the same mixer-style task mixture over linear layers, and reports KNN
accuracy next to each adapter's trainable budget.  The point the table
makes: the static variants cluster together, because no amount of static
parameterization confers input-conditioned adaptation.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PAPER_MIXER
from repro.data.synthetic import generate_task_data
from repro.data.tasks import TaskDistribution
from repro.eval.protocol import _adapt, _knn_accuracy, build_backbone, pretrain_backbone
from repro.nn.linear import Linear
from repro.peft import attach
from repro.utils.rng import spawn_rngs

#: registry method names, all at rank 4 (bottleneck width 4)
ADAPTERS = ("lora", "tt_lora", "dora", "bottleneck")


@pytest.mark.benchmark(group="ablation")
def test_ablation_static_baselines(benchmark, scale):
    config = replace(
        PAPER_MIXER,
        num_tasks=7 if scale == "quick" else PAPER_MIXER.num_tasks,
        adapt_episodes=100 if scale == "quick" else PAPER_MIXER.adapt_episodes,
        support_per_task=32 if scale == "quick" else PAPER_MIXER.support_per_task,
        query_per_task=32 if scale == "quick" else PAPER_MIXER.query_per_task,
        pretrain_epochs=4 if scale == "quick" else PAPER_MIXER.pretrain_epochs,
    )

    def run():
        rng_pre, rng_tasks, rng_eval, *adapter_rngs = spawn_rngs(0, 3 + len(ADAPTERS))
        __, state = pretrain_backbone(config, rng_pre)
        tasks = TaskDistribution(
            config.num_tasks,
            image_size=config.image_size,
            seed=int(rng_tasks.integers(2**31)),
            noise_level=config.noise_level,
        )
        train_sets = [
            generate_task_data(
                t, config.adapt_samples_per_task, config.num_classes,
                config.image_size, rng_tasks,
            )
            for t in tasks.shifted_tasks()
        ]
        eval_sets = []
        for t in tasks.shifted_tasks():
            support = generate_task_data(
                t, config.support_per_task, config.num_classes, config.image_size, rng_eval
            )
            query = generate_task_data(
                t, config.query_per_task, config.num_classes, config.image_size, rng_eval
            )
            eval_sets.append((support, query))

        results = {}
        for name, rng in zip(ADAPTERS, adapter_rngs):
            model = build_backbone(config, rng)
            model.load_state_dict(state)
            attach(model, name, rank=4, targets=(Linear,), rng=rng)
            _adapt(model, train_sets, config, rng)
            accuracy = _knn_accuracy(model, eval_sets, 5, config.knn_metric)
            budget = model.parameter_count(trainable_only=True)
            results[name] = (accuracy, budget)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'adapter':<12} {'KNN@5':>7}  {'trainable':>10}")
    for name, (accuracy, budget) in results.items():
        print(f"{name:<12} {100 * accuracy:>6.1f}%  {budget:>10,}")
    accuracies = [accuracy for accuracy, __ in results.values()]
    assert all(a > 1.0 / config.num_classes for a in accuracies)
    # Static variants cluster: max spread far below the meta-vs-original gap.
    spread = max(accuracies) - min(accuracies)
    print(f"static-family spread: {100 * spread:.1f} pts")
