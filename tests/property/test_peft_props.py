"""Property-based tests for adapter invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.nn import Linear
from repro.peft import LoRALinear, MetaLoRACPLinear, MetaLoRATRLinear

SETTINGS = dict(max_examples=25, deadline=None)

dims = st.integers(2, 10)
ranks = st.integers(1, 4)
seeds = st.integers(0, 2**31 - 1)


class TestAdapterInvariants:
    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_lora_identity_at_init(self, i, o, rank, seed):
        """B = 0 at init ⇒ the adapter is exactly the base layer."""
        rng = np.random.default_rng(seed)
        base = Linear(i, o, rng=rng)
        adapter = LoRALinear(base, rank=rank, rng=rng)
        x = Tensor(rng.normal(size=(3, i)).astype(np.float32))
        assert np.allclose(adapter(x).data, base(x).data)

    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_lora_delta_rank_bounded(self, i, o, rank, seed):
        """ΔW = A B has linear-algebra rank at most the LoRA rank."""
        rng = np.random.default_rng(seed)
        adapter = LoRALinear(Linear(i, o, rng=rng), rank=rank, rng=rng)
        adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape).astype(
            np.float32
        )
        assert np.linalg.matrix_rank(adapter.delta_weight(), tol=1e-5) <= rank

    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_cp_delta_linear_in_seed(self, i, o, rank, seed):
        """Eq. 6 is linear in c: ΔW(c₁ + c₂) = ΔW(c₁) + ΔW(c₂)."""
        rng = np.random.default_rng(seed)
        adapter = MetaLoRACPLinear(Linear(i, o, rng=rng), rank=rank, rng=rng)
        adapter.factor_b.data[...] = rng.normal(size=adapter.factor_b.shape).astype(
            np.float32
        )
        a_mat, b_mat = adapter.factor_a.data, adapter.factor_b.data
        c1, c2 = rng.normal(size=rank), rng.normal(size=rank)
        delta = lambda c: np.einsum("ir,ro,r->io", a_mat, b_mat, c)
        assert np.allclose(delta(c1 + c2), delta(c1) + delta(c2), atol=1e-8)

    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_tr_delta_linear_in_seed(self, i, o, rank, seed):
        """Eq. 7 is linear in the closure matrix C."""
        rng = np.random.default_rng(seed)
        adapter = MetaLoRATRLinear(Linear(i, o, rng=rng), rank=rank, rng=rng)
        adapter.core_b.data[...] = rng.normal(size=adapter.core_b.shape).astype(
            np.float32
        )
        a_core, b_core = adapter.core_a.data, adapter.core_b.data
        c1 = rng.normal(size=(rank, rank))
        c2 = rng.normal(size=(rank, rank))
        delta = lambda c: np.einsum("pir,roq,qp->io", a_core, b_core, c)
        assert np.allclose(delta(c1 + c2), delta(c1) + delta(c2), atol=1e-8)

    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_tr_delta_rank_bounded_by_r_squared(self, i, o, rank, seed):
        """TR ΔW has matrix rank at most R² (the format's expressiveness cap)."""
        rng = np.random.default_rng(seed)
        adapter = MetaLoRATRLinear(Linear(i, o, rng=rng), rank=rank, rng=rng)
        adapter.core_b.data[...] = rng.normal(size=adapter.core_b.shape).astype(
            np.float32
        )
        seed_c = rng.normal(size=(rank, rank))
        delta = np.einsum(
            "pir,roq,qp->io", adapter.core_a.data, adapter.core_b.data, seed_c
        )
        assert np.linalg.matrix_rank(delta, tol=1e-5) <= rank * rank

    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_per_sample_batch_equals_per_sample_loop(self, i, o, rank, seed):
        """Batched meta forward ≡ one-sample-at-a-time forward."""
        rng = np.random.default_rng(seed)
        base = Linear(i, o, rng=rng)
        adapter = MetaLoRACPLinear(base, rank=rank, rng=rng)
        adapter.factor_b.data[...] = rng.normal(size=adapter.factor_b.shape).astype(
            np.float32
        )
        x = rng.normal(size=(4, i)).astype(np.float32)
        seeds_arr = rng.normal(size=(4, rank)).astype(np.float32)
        adapter.set_seed(Tensor(seeds_arr))
        batched = adapter(Tensor(x)).data
        for n in range(4):
            adapter.set_seed(Tensor(seeds_arr[n : n + 1]))
            single = adapter(Tensor(x[n : n + 1])).data
            assert np.allclose(batched[n : n + 1], single, atol=1e-4)
