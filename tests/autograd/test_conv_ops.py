"""Tests for conv2d / pooling / padding ops against references and FD."""

import numpy as np
import pytest

from repro.autograd import (
    avg_pool2d,
    check_gradients,
    conv2d,
    max_pool2d,
    pad2d,
    tensor,
)
from repro.errors import ShapeError
from repro.tensornet.dummy import conv2d_via_dummy


def _t(rng, shape):
    return tensor(rng.normal(size=shape), requires_grad=True, dtype=np.float64)


class TestConvForward:
    def test_output_shape(self, rng):
        x, w = _t(rng, (2, 3, 8, 8)), _t(rng, (3, 3, 3, 6))
        assert conv2d(x, w, padding=1).shape == (2, 6, 8, 8)
        assert conv2d(x, w, stride=2, padding=1).shape == (2, 6, 4, 4)
        assert conv2d(x, w).shape == (2, 6, 6, 6)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_dummy_tensor_reference(self, rng, stride, padding):
        x, w = _t(rng, (2, 3, 9, 9)), _t(rng, (3, 3, 3, 4))
        ours = conv2d(x, w, stride=stride, padding=padding).data
        reference = conv2d_via_dummy(x.data, w.data, stride=stride, padding=padding)
        assert np.allclose(ours, reference, atol=1e-10)

    def test_1x1_conv_is_channel_matmul(self, rng):
        x, w = _t(rng, (2, 4, 5, 5)), _t(rng, (1, 1, 4, 3))
        out = conv2d(x, w).data
        manual = np.einsum("nchw,co->nohw", x.data, w.data[0, 0])
        assert np.allclose(out, manual)

    def test_bias_added_per_channel(self, rng):
        x, w = _t(rng, (1, 2, 4, 4)), _t(rng, (3, 3, 2, 5))
        bias = tensor(np.arange(5, dtype=np.float64), requires_grad=True)
        with_bias = conv2d(x, w, bias).data
        without = conv2d(x, w).data
        assert np.allclose(with_bias - without, np.arange(5)[None, :, None, None])

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            conv2d(_t(rng, (1, 3, 4, 4)), _t(rng, (3, 3, 5, 2)))

    def test_wrong_rank_raises(self, rng):
        with pytest.raises(ShapeError):
            conv2d(_t(rng, (3, 4, 4)), _t(rng, (3, 3, 3, 2)))

    def test_empty_output_raises(self, rng):
        with pytest.raises(ShapeError):
            conv2d(_t(rng, (1, 1, 2, 2)), _t(rng, (5, 5, 1, 1)))


class TestConvGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_full_gradients(self, rng, stride, padding):
        x, w = _t(rng, (2, 2, 6, 6)), _t(rng, (3, 3, 2, 3))
        b = _t(rng, (3,))
        check_gradients(
            lambda x, w, b: conv2d(x, w, b, stride=stride, padding=padding), [x, w, b]
        )

    def test_gradient_without_bias(self, rng):
        x, w = _t(rng, (1, 2, 5, 5)), _t(rng, (2, 2, 2, 2))
        check_gradients(lambda x, w: conv2d(x, w), [x, w])


class TestPooling:
    def test_max_pool_values(self):
        x = tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradient_routes_to_argmax(self):
        x = tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.allclose(x.grad[0, 0], expected)

    def test_avg_pool_gradient_spreads(self):
        x = tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_pool_gradients_fd(self, rng):
        x = _t(rng, (2, 2, 6, 6))
        check_gradients(lambda x: avg_pool2d(x, 2), [x])
        check_gradients(lambda x: max_pool2d(x, 3, stride=3), [x])

    def test_strided_pooling_shape(self, rng):
        x = _t(rng, (1, 1, 8, 8))
        assert max_pool2d(x, 2, stride=1).shape == (1, 1, 7, 7)


class TestPad:
    def test_pad_shape_and_values(self):
        x = tensor(np.ones((1, 1, 2, 2)))
        out = pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 0] == 0.0
        assert out.data[0, 0, 1, 1] == 1.0

    def test_pad_zero_is_identity(self):
        x = tensor(np.ones((1, 1, 2, 2)))
        assert pad2d(x, 0) is x

    def test_pad_negative_raises(self):
        with pytest.raises(ShapeError):
            pad2d(tensor(np.ones((1, 1, 2, 2))), -1)

    def test_pad_gradient(self, rng):
        check_gradients(lambda x: pad2d(x, 2), [_t(rng, (1, 2, 3, 3))])
