"""Deterministic random-number management.

All stochastic components of the library (initializers, data generators,
dropout, samplers) draw from :class:`numpy.random.Generator` instances
created here, so experiments are reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a new PCG64 generator seeded with ``seed``.

    ``None`` yields an OS-seeded generator, which is only appropriate for
    exploratory use; every experiment entry point passes an explicit seed.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, the supported way of
    producing independent child streams (unlike ``seed + i`` arithmetic,
    which can correlate streams).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


class RngMixin:
    """Mixin giving an object a lazily created, seedable ``rng`` attribute."""

    _rng: np.random.Generator | None = None
    _seed: int | None = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: int) -> None:
        """Reset the stream so subsequent draws are reproducible."""
        self._seed = seed
        self._rng = new_rng(seed)
