"""The :class:`Tensor` type: a numpy array plus a reverse-mode AD tape.

Design
------
Each differentiable operation creates a result ``Tensor`` holding

* ``_parents`` — the input tensors the result depends on, and
* ``_grad_fns`` — one callable per parent that maps the gradient of the
  result to the gradient contribution for that parent.

``backward()`` topologically sorts the graph reachable from the output and
applies the chain rule.  Gradients broadcast exactly like numpy: a helper
(:func:`unbroadcast`) sums gradient contributions back down to each
parent's shape, so ``(B, N) + (N,)`` behaves as expected.

Gradient recording is thread-unsafe by design (the library is
single-process) and can be paused with the :func:`no_grad` context manager,
which the evaluation protocol uses to extract embeddings cheaply.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import GradientError, ShapeError
from repro.perf import FLAGS
from repro.obs import OBS

GradFn = Callable[[np.ndarray], np.ndarray]

_grad_enabled = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph recording inside the block (like ``torch.no_grad``)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Summing over leading added axes and over axes that were size-1 in the
    original operand inverts broadcasting in the backward pass.
    """
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A numpy array that supports reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_grad_fns", "_released")

    # Make numpy defer to Tensor.__radd__ etc. instead of elementwise-looping.
    __array_priority__ = 100

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _grad_fns: tuple[GradFn, ...] = (),
    ) -> None:
        array = np.asarray(data)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self._released = False
        self.requires_grad = bool(requires_grad) and _grad_enabled
        if _grad_enabled:
            self._parents = _parents
            self._grad_fns = _grad_fns
        else:
            self._parents = ()
            self._grad_fns = ()

    # -- introspection ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy; do not mutate)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ShapeError(f"item() requires a single-element tensor, got shape {self.shape}")

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def __len__(self) -> int:
        if self.ndim == 0:
            raise ShapeError("len() of a 0-d tensor")
        return self.shape[0]

    # -- graph construction -----------------------------------------------

    @staticmethod
    def _result(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        grad_fns: tuple[GradFn, ...],
    ) -> "Tensor":
        if not _grad_enabled:
            # Under no_grad() the result carries no graph state at all: no
            # parent references, no grad-fn closures.  The closures passed
            # in are dropped here, so anything they captured (patch
            # matrices, pre-activation buffers) is freed immediately.
            return Tensor(data)
        if not any(p.requires_grad for p in parents):
            return Tensor(data)
        kept_parents = []
        kept_fns = []
        for parent, fn in zip(parents, grad_fns):
            if parent.requires_grad or parent._parents:
                kept_parents.append(parent)
                kept_fns.append(fn)
        return Tensor(
            data,
            requires_grad=True,
            _parents=tuple(kept_parents),
            _grad_fns=tuple(kept_fns),
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``gradient`` defaults to ones (only valid to omit for scalars,
        matching common autograd semantics).

        Two flag-guarded memory optimizations (see :mod:`repro.perf`):
        with ``backward_inplace_accum`` (default on), gradients flowing
        into a tensor with several consumers accumulate in place once the
        buffer is owned by this sweep — bit-identical to the reference
        ``existing + contribution``; with ``backward_release`` (opt-in),
        each node's parents and gradient closures — which capture the
        forward activations — are dropped as soon as the sweep has
        consumed them, so peak memory no longer holds the whole graph.
        A released graph raises :class:`GradientError` if backpropagated
        again (the equivalent of PyTorch's ``retain_graph=False``).
        """
        if self._released:
            raise GradientError(
                "backward() on a released graph: backward_release "
                "(REPRO_BACKWARD_RELEASE) freed this graph during a previous "
                "backward() pass; rebuild the graph or disable the flag to "
                "backpropagate the same graph twice"
            )
        if not self.requires_grad and not self._parents:
            raise GradientError("backward() called on a tensor with no graph")
        if gradient is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=self.data.dtype)
        if gradient.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {gradient.shape} does not match output shape {self.shape}"
            )

        inplace = FLAGS.backward_inplace_accum
        release = FLAGS.backward_release
        profile = OBS.enabled
        start = time.perf_counter() if profile else 0.0
        inplace_adds = 0
        released_nodes = 0

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): gradient}
        #: ids whose accumulation buffer is private to this sweep, hence
        #: safe to mutate (first contributions may alias caller arrays).
        owned: set[int] = set()
        for node in order:
            if node._released:
                raise GradientError(
                    "backward() through a released graph: a backward() pass "
                    "under backward_release (REPRO_BACKWARD_RELEASE) already "
                    "consumed part of this graph; rebuild it or disable the "
                    "flag to backpropagate shared subgraphs twice"
                )
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            for parent, grad_fn in zip(node._parents, node._grad_fns):
                contribution = grad_fn(node_grad)
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = contribution
                elif (
                    inplace
                    and id(parent) in owned
                    and type(existing) is np.ndarray  # np scalars reject out=
                    and existing.dtype == contribution.dtype
                    and existing.shape == contribution.shape
                ):
                    np.add(existing, contribution, out=existing)
                    inplace_adds += 1
                else:
                    grads[id(parent)] = existing + contribution
                    owned.add(id(parent))
            if release and node._parents:
                node._parents = ()
                node._grad_fns = ()
                node._released = True
                released_nodes += 1
        if profile:
            OBS.observe("backward.sweep", time.perf_counter() - start)
            OBS.inc("backward.inplace_accum", inplace_adds)
            OBS.inc("backward.released", released_nodes)

    def _topological_order(self) -> list["Tensor"]:
        """Nodes reachable from ``self``, outputs first (reverse topo order)."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """A view of the same data with no graph attached."""
        return Tensor(self.data)

    # -- arithmetic ---------------------------------------------------------

    @staticmethod
    def _coerce(other: "Tensor | np.ndarray | float | int") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out = self.data + other.data
        return Tensor._result(
            out,
            (self, other),
            (
                lambda g: unbroadcast(g, self.shape),
                lambda g: unbroadcast(g, other.shape),
            ),
        )

    __radd__ = __add__

    def __sub__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out = self.data - other.data
        return Tensor._result(
            out,
            (self, other),
            (
                lambda g: unbroadcast(g, self.shape),
                lambda g: unbroadcast(-g, other.shape),
            ),
        )

    def __rsub__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out = self.data * other.data
        return Tensor._result(
            out,
            (self, other),
            (
                lambda g: unbroadcast(g * other.data, self.shape),
                lambda g: unbroadcast(g * self.data, other.shape),
            ),
        )

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out = self.data / other.data
        return Tensor._result(
            out,
            (self, other),
            (
                lambda g: unbroadcast(g / other.data, self.shape),
                lambda g: unbroadcast(-g * self.data / (other.data**2), other.shape),
            ),
        )

    def __rtruediv__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._result(-self.data, (self,), (lambda g: -g,))

    def __pow__(self, exponent: float | int) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self.data**exponent
        base = self.data

        def grad_base(g: np.ndarray) -> np.ndarray:
            return g * exponent * base ** (exponent - 1)

        return Tensor._result(out, (self,), (grad_base,))

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out = self.data @ other.data

        def grad_left(g: np.ndarray) -> np.ndarray:
            if other.data.ndim == 1:
                return unbroadcast(np.multiply.outer(g, other.data), self.shape)
            grad = g @ np.swapaxes(other.data, -1, -2)
            return unbroadcast(grad, self.shape)

        def grad_right(g: np.ndarray) -> np.ndarray:
            if self.data.ndim == 1:
                return unbroadcast(np.multiply.outer(self.data, g), other.shape)
            grad = np.swapaxes(self.data, -1, -2) @ g
            return unbroadcast(grad, other.shape)

        return Tensor._result(out, (self, other), (grad_left, grad_right))

    # -- shaping --------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out = self.data.reshape(shape)
        return Tensor._result(out, (self,), (lambda g: g.reshape(original),))

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out = self.data.transpose(axes)
        return Tensor._result(out, (self,), (lambda g: g.transpose(inverse),))

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten(self, start_axis: int = 0) -> "Tensor":
        """Collapse all axes from ``start_axis`` onward into one."""
        kept = self.shape[:start_axis]
        return self.reshape(*kept, -1)

    def __getitem__(self, key) -> "Tensor":
        out = self.data[key]
        shape = self.shape
        dtype = self.data.dtype

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, key, g)
            return full

        return Tensor._result(np.asarray(out), (self,), (grad_fn,))

    # -- reductions ------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).astype(g.dtype)
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            if not keepdims:
                g = np.expand_dims(g, tuple(a % len(shape) for a in axes))
            return np.broadcast_to(g, shape).astype(g.dtype)

        return Tensor._result(np.asarray(out), (self,), (grad_fn,))

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        data = self.data

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = (data == data.max()).astype(g.dtype)
                mask /= mask.sum()
                return mask * g
            expanded = out if keepdims else np.expand_dims(out, axis)
            mask = (data == expanded).astype(g.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return mask * g_expanded

        return Tensor._result(np.asarray(out), (self,), (grad_fn,))

    # -- misc -------------------------------------------------------------------

    def clip(self, low: float, high: float) -> "Tensor":
        out = np.clip(self.data, low, high)
        data = self.data

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return g * ((data >= low) & (data <= high)).astype(g.dtype)

        return Tensor._result(out, (self,), (grad_fn,))

    def abs(self) -> "Tensor":
        out = np.abs(self.data)
        data = self.data
        return Tensor._result(out, (self,), (lambda g: g * np.sign(data),))


def tensor(
    data: np.ndarray | float | int | Sequence,
    requires_grad: bool = False,
    dtype: np.dtype | type = np.float32,
) -> Tensor:
    """Build a :class:`Tensor` with an explicit dtype (default float32)."""
    return Tensor(np.asarray(data, dtype=dtype), requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """A zero tensor with the same shape and dtype as ``t``."""
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)
