"""Synthetic multi-task vision data (the offline substitute for the
paper's image datasets — see DESIGN.md, substitution table)."""

from repro.data.tasks import TaskDistribution, TaskSpec
from repro.data.synthetic import SyntheticTaskData, generate_task_data, merge_tasks
from repro.data.loaders import batches
from repro.data.stream import StreamStep, TaskStream, interpolate_tasks
from repro.data.corruptions import (
    CORRUPTIONS,
    DEFAULT_CORRUPTIONS,
    Corruption,
    corruption_rng,
    get_corruption,
)

__all__ = [
    "CORRUPTIONS",
    "Corruption",
    "DEFAULT_CORRUPTIONS",
    "StreamStep",
    "SyntheticTaskData",
    "TaskDistribution",
    "TaskSpec",
    "TaskStream",
    "batches",
    "corruption_rng",
    "generate_task_data",
    "get_corruption",
    "interpolate_tasks",
    "merge_tasks",
]
