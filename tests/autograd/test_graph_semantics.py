"""Tests for subtler autograd graph semantics."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, tensor


class TestGraphPruning:
    def test_constant_branches_not_tracked(self, rng):
        """Results of ops on constants carry no graph."""
        a = tensor(rng.normal(size=3))
        b = tensor(rng.normal(size=3))
        out = a * b + a
        assert out._parents == ()
        assert not out.requires_grad

    def test_mixed_branch_keeps_only_grad_paths(self, rng):
        x = tensor(rng.normal(size=3), requires_grad=True)
        c = tensor(rng.normal(size=3))
        out = x * c
        # the constant c is pruned from the recorded parents
        assert all(p is not c for p in out._parents)
        out.sum().backward()
        assert np.allclose(x.grad, c.data)

    def test_requires_grad_propagates_transitively(self, rng):
        x = tensor(rng.normal(size=3), requires_grad=True)
        y = x * 2
        z = y + 1
        assert z.requires_grad

    def test_backward_twice_on_same_graph_accumulates(self, rng):
        x = tensor(rng.normal(size=3), requires_grad=True)
        y = (x * 3).sum()
        y.backward()
        y.backward()
        assert np.allclose(x.grad, 6.0)


class TestSharedSubgraphs:
    def test_shared_intermediate_counted_once_per_use(self, rng):
        x = tensor(np.array([2.0]), requires_grad=True)
        shared = x * x  # x^2
        out = shared + shared  # 2 x^2, d/dx = 4x = 8
        out.backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(8.0)

    def test_two_outputs_from_one_graph(self, rng):
        x = tensor(np.array([3.0]), requires_grad=True)
        base = x * 2
        out_a = base * 1.0
        out_b = base * 10.0
        out_a.backward(np.array([1.0], dtype=np.float32))
        out_b.backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(2.0 + 20.0)


class TestNoGradInterleaving:
    def test_graph_built_outside_usable_after_no_grad_block(self, rng):
        x = tensor(rng.normal(size=3), requires_grad=True)
        y = x * 2
        with no_grad():
            __ = x * 100  # untracked
        y.sum().backward()
        assert np.allclose(x.grad, 2.0)

    def test_tensor_created_inside_no_grad_never_requires(self):
        with no_grad():
            t = tensor(np.ones(3), requires_grad=True)
        assert not t.requires_grad

    def test_no_grad_results_carry_zero_graph_state(self, rng):
        # The serve engine relies on this: under no_grad(), _result must
        # not record parents or grad fns even when inputs have live graphs.
        x = tensor(rng.normal(size=(2, 3)), requires_grad=True)
        w = tensor(rng.normal(size=(3, 3)), requires_grad=True)
        live = x * 2  # a graph exists before entering the block
        with no_grad():
            for out in (live @ w, live + x, live * live, live.sum(), -live):
                assert out._parents == ()
                assert out._grad_fns == ()
                assert not out.requires_grad

    def test_detach_mid_graph_blocks_upstream(self, rng):
        x = tensor(rng.normal(size=3), requires_grad=True)
        mid = (x * 2).detach()
        y = mid * 3
        # y has no path to x
        assert y._parents == ()


class TestDtypePropagation:
    def test_float64_preserved_through_ops(self, rng):
        x = tensor(rng.normal(size=(3, 3)), dtype=np.float64, requires_grad=True)
        y = (x @ x).sum()
        y.backward()
        assert x.grad.dtype == np.float64

    def test_float32_default(self):
        assert tensor([1.0, 2.0]).dtype == np.float32
