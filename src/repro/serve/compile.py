"""Lowering compiler: a model's ``features()`` as a flat, graph-free program.

The autograd path pays three per-op taxes that inference never needs:
``Tensor`` wrapping, parent bookkeeping, and grad-fn closure allocation.
This module removes all three by *lowering* a model once, at compile time,
into a flat list of steps over raw ``numpy`` arrays:

- every step is a plain callable closed over pre-folded constants (the
  im2col weight matrix, the batch-norm ``sqrt(var + eps)`` denominator,
  concatenated meta-head weights, pre-reshaped TR cores), so per-request
  work is only the arithmetic;
- steps read and write integer *slots*; a tiny liveness pass frees each
  intermediate after its last consumer, so peak memory tracks the widest
  layer instead of the whole forward;
- the heavy kernels are the *same functions* the autograd ops call
  (:func:`repro.autograd.conv_ops.conv2d_forward`,
  :func:`repro.autograd.ops.einsum_forward`, …), so compiled outputs are
  bit-identical to the reference ``features()`` under the same
  ``repro.perf.FLAGS`` — including the shared einsum plan cache and conv
  patch/pad workspaces.

On top of lowering sit the :mod:`repro.serve.optimize` passes — all
selected per program at compile time:

- ``precision`` picks the compute tier.  ``"f64"`` (the default) folds
  constants exactly as the autograd path computes them, preserving the
  bit-exactness contract above.  ``"f32"`` casts folded constants (and
  with them all kernel compute) to float32; ``"int8"`` additionally
  fake-quantizes weight matrices per output channel (see
  :func:`repro.serve.optimize.quantize_weight`).  Non-f64 programs are
  held to a KNN-accuracy budget instead of bit-identity — measured by
  the serve bench and pinned by the tier tests.
- the **fusion pass** collapses single-consumer kernel chains into
  composed steps (bit-identical at every tier);
- the **arena allocator** recycles freed intermediate buffers for steps
  that declare out-variant kernels;
- ``parallel > 1`` runs the program under a dependency-graph scheduler
  with row-sharding of wide elementwise steps.

Lowering is rule-based: ``@compiles(ModuleType)`` registers how one module
forward becomes steps, ``@compiles_features(ModelType)`` does the same for
a model's top-level ``features()``.  Unknown module types raise
:class:`~repro.errors.ServeError` — static adapters should be baked with
``AttachResult.merge()`` first (see :func:`repro.serve.engine.build_engine`),
while MetaLoRA CP/TR adapters lower to pre-planned einsums fed by seed
slots produced by the mapping network.

Compilation snapshots the model: folded constants are computed from the
weights as they are *at compile time* (and batch norms lower in eval mode).
Mutating parameters afterwards requires recompiling.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.autograd import ops
from repro.autograd.conv_ops import conv2d_forward, fold_conv_weight
from repro.autograd.conv_ops import avg_pool2d_forward, max_pool2d_forward
from repro.errors import ServeError
from repro.models.feature_extractor import FeatureExtractor
from repro.models.mlp_mixer import MixerBlock, MLPMixer
from repro.models.resnet import BasicBlock, ResNet
from repro.nn.activations import GELU, ReLU, Sigmoid, Tanh
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module, eval_mode
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.peft.conv_lora import ConvLoRA
from repro.peft.lora import LoRALinear
from repro.peft.meta_cp import MetaLoRACPConv, MetaLoRACPLinear
from repro.peft.meta_model import MetaLoRAModel
from repro.peft.meta_tr import MetaLoRATRConv, MetaLoRATRLinear
from repro.peft.multi_lora import MultiLoRAConv, MultiLoRALinear
from repro.perf import FLAGS
from repro.serve import optimize
from repro.serve.optimize import Arena, quantize_weight

Kernel = Callable[..., np.ndarray]


def _scalar(value: float) -> np.ndarray:
    """A 0-d float64 constant.

    ``Tensor`` arithmetic coerces python scalars through ``np.asarray``,
    which makes them *strong* float64 operands under NEP 50 — a float32
    activation times a python float promotes to float64 on the autograd
    path.  Kernels must multiply by the same 0-d array, not the raw float
    (which numpy treats as weak and would keep float32), or bit-exactness
    with the reference path breaks.
    """
    return np.asarray(float(value))


class Step:
    """One lowered op: ``slots[output] = fn(*slots[inputs])``.

    ``fn_out`` is an optional out-variant (``fn_out(out, *inputs)``
    applying the exact same ufunc sequence into a caller-provided
    buffer) with ``out_spec(*inputs) -> (shape, dtype)`` describing that
    buffer — what lets the arena recycle freed intermediates.
    ``shardable`` marks row-independent kernels the parallel executor
    may split along the batch axis.
    """

    __slots__ = ("name", "fn", "inputs", "output", "fn_out", "out_spec", "shardable")

    def __init__(
        self,
        name: str,
        fn: Kernel,
        inputs: tuple[int, ...],
        output: int,
        *,
        fn_out: Callable | None = None,
        out_spec: Callable | None = None,
        shardable: bool = False,
    ) -> None:
        self.name = name
        self.fn = fn
        self.inputs = inputs
        self.output = output
        self.fn_out = fn_out
        self.out_spec = out_spec
        self.shardable = shardable


class CompiledProgram:
    """A flat step list with slot liveness, runnable on raw arrays.

    ``run`` is batch-polymorphic: kernels read batch/spatial sizes from
    the input at call time, so one program serves any request size.

    A program may take more than one input (``input_slot`` accepts a
    sequence of slots): the seed-fed backbone *body* programs used for
    multi-tenant serving take ``(images, seeds)``.  ``input_slot`` stays
    the first input for single-input callers.

    Construction applies the :mod:`repro.serve.optimize` passes: the
    fusion pass (unless ``fuse=False``) rewrites the step list before
    liveness is computed, ``parallel`` fixes the executor's worker
    count, and the arena allocator is armed per ``REPRO_SERVE_ARENA``.
    Programs carry their own optimizer counters (fusion eliminations,
    arena hits/allocs, parallel concurrency samples), which the serving
    engines fold into ``stats()``.
    """

    def __init__(
        self,
        steps: list[Step],
        n_slots: int,
        input_slot: int | tuple[int, ...] | list[int],
        output_slot: int,
        source: str,
        *,
        precision: str = "f64",
        fuse: bool | None = None,
        parallel: int | None = None,
        quantized: int = 0,
    ) -> None:
        if isinstance(input_slot, int):
            self.input_slots: tuple[int, ...] = (input_slot,)
        else:
            self.input_slots = tuple(int(slot) for slot in input_slot)
        self.input_slot = self.input_slots[0]
        self.output_slot = output_slot
        self.source = source
        self.precision = precision
        self.quantized = int(quantized)
        self.fusion_eliminated = 0
        steps = list(steps)
        if fuse if fuse is not None else optimize.fusion_enabled():
            steps, self.fusion_eliminated = optimize.fuse_program(steps, output_slot)
        if precision == "f64":
            # Bit-identity to autograd is contracted only at f64; the
            # relaxed tiers keep every fn_out/arena/shard opportunity.
            optimize.pin_layouts(steps)
        self.steps = tuple(steps)
        self.n_slots = n_slots
        self.parallel = optimize.resolve_parallel(parallel)
        #: Serial-seconds gate before the thread scheduler engages (the
        #: cost model for "does parallelism pay off here"); 0 disables
        #: the gate.  See :func:`repro.serve.optimize.resolve_parallel_threshold`.
        self.parallel_threshold = optimize.resolve_parallel_threshold()
        #: Arena recycling on/off; ``arena_poison`` NaN-fills every pooled
        #: buffer (the booby-trap tests flip it on a live program).
        self.arena = optimize.arena_enabled()
        self.arena_poison = False
        # Last-use liveness: after step i runs, every slot whose final
        # consumer was step i is dropped (except the program output).
        last_use: dict[int, int] = {}
        for index, step in enumerate(self.steps):
            for slot in step.inputs:
                last_use[slot] = index
        release: list[list[int]] = [[] for _ in self.steps]
        for slot, index in last_use.items():
            if slot != output_slot:
                release[index].append(slot)
        self._release = tuple(tuple(slots) for slots in release)
        # Inputs are caller-owned (and the output is caller-visible):
        # their buffers must never enter the arena pool.
        self._pool_exempt = set(self.input_slots) | {output_slot}
        # Optimizer counters + per-step output specs (seen on first run).
        self._counter_lock = threading.Lock()
        self.arena_hits = 0
        self.arena_allocs = 0
        self.parallel_slot_counts: dict[str, int] = {}
        self.parallel_skipped = 0
        #: EMA of measured serial run seconds (None until the first
        #: serial run of a parallel-capable program) — the cost-model
        #: input the gate compares against :attr:`parallel_threshold`.
        self._serial_seconds: float | None = None
        self._shapes: list[str | None] = [None] * len(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def _record_shape(self, index: int, out: np.ndarray) -> None:
        if self._shapes[index] is None:
            dims = ", ".join(str(dim) for dim in out.shape)
            self._shapes[index] = f"{out.dtype}({dims})"

    def describe(self) -> list[str]:
        """Human-readable step listing (for tests and debugging).

        After the program has run at least once each line carries the
        step's resolved output dtype and shape, so listings show what
        the fusion pass produced and which tier the program computes in.
        """
        lines = []
        for index, step in enumerate(self.steps):
            args = ", ".join("%" + str(slot) for slot in step.inputs)
            line = f"{index}: %{step.output} = {step.name}({args})"
            if self._shapes[index] is not None:
                line += f" -> {self._shapes[index]}"
            lines.append(line)
        return lines

    def counters(self) -> dict[str, object]:
        """This program's optimizer counters (cumulative across runs)."""
        with self._counter_lock:
            return {
                "fusion_eliminated": self.fusion_eliminated,
                "quantized": self.quantized,
                "arena_hits": self.arena_hits,
                "arena_allocs": self.arena_allocs,
                "parallel_slots": dict(self.parallel_slot_counts),
                "parallel_skipped": self.parallel_skipped,
            }

    def run(self, *inputs: np.ndarray) -> np.ndarray:
        if len(inputs) != len(self.input_slots):
            raise ServeError(
                f"program {self.source!r} takes {len(self.input_slots)} "
                f"input(s), got {len(inputs)}"
            )
        if self.precision != "f64":
            inputs = tuple(
                array.astype(np.float32)
                if array.dtype.kind == "f" and array.dtype != np.float32
                else array
                for array in inputs
            )
        values: list[np.ndarray | None] = [None] * self.n_slots
        for slot, array in zip(self.input_slots, inputs):
            values[slot] = array
        arena = Arena(poison=self.arena_poison) if self.arena else None
        from repro.obs import OBS  # local: keep the run loop import-light

        # Cost-model gate: a parallel-capable program engages the thread
        # scheduler only once its *measured* serial run time clears the
        # threshold — tiny programs stay serial (submit/wait overhead
        # would dominate) and count a skip instead.
        capable = self.parallel > 1 and len(self.steps) > 1
        if capable and self.parallel_threshold > 0.0:
            with self._counter_lock:
                measured = self._serial_seconds
            engage = measured is not None and measured >= self.parallel_threshold
        else:
            engage = capable
        if engage:
            samples = optimize.run_parallel(self, values, arena)
            with self._counter_lock:
                for sample in samples:
                    bucket = str(sample)
                    self.parallel_slot_counts[bucket] = (
                        self.parallel_slot_counts.get(bucket, 0) + 1
                    )
            if OBS.enabled:
                for sample in samples:
                    OBS.hist("serve.parallel.slots", sample)
        else:
            serial_start = time.perf_counter() if capable else 0.0
            exempt = self._pool_exempt
            for index, (step, dead) in enumerate(zip(self.steps, self._release)):
                ins = [values[slot] for slot in step.inputs]
                out = optimize.run_step(step, ins, arena)
                values[step.output] = out
                self._record_shape(index, out)
                for slot in dead:
                    freed = values[slot]
                    values[slot] = None
                    if arena is not None and freed is not None and slot not in exempt:
                        arena.put(freed, values)
            if capable:
                elapsed = time.perf_counter() - serial_start
                with self._counter_lock:
                    self._serial_seconds = (
                        elapsed
                        if self._serial_seconds is None
                        else 0.7 * self._serial_seconds + 0.3 * elapsed
                    )
                    self.parallel_skipped += 1
                if OBS.enabled:
                    OBS.inc("serve.parallel.skipped")
        if arena is not None:
            with self._counter_lock:
                self.arena_hits += arena.hits
                self.arena_allocs += arena.allocs
            if OBS.enabled:
                OBS.inc("serve.arena.hit", arena.hits)
                OBS.inc("serve.arena.alloc", arena.allocs)
        out = values[self.output_slot]
        assert out is not None
        return out


class ProgramBuilder:
    """Accumulates steps while lowering rules walk the module tree.

    ``precision`` fixes how rules fold constants: :meth:`const` casts
    floating constants to the tier's compute dtype, :meth:`scalar`
    produces the 0-d strong operand matching ``Tensor`` scalar
    coercion at that tier, and :meth:`weight` additionally runs int8
    fake-quantization over weight matrices (suppressed while
    ``quantize`` is off — the seed-generation path keeps full f32
    weights at every tier, since seeds parameterize downstream
    kernels).
    """

    def __init__(self, external_seeds: bool = False, precision: str = "f64") -> None:
        self.steps: list[Step] = []
        self.n_slots = 0
        self.precision = precision
        self.quantize = True
        #: How many weight matrices int8 fake-quantization touched.
        self.quantized = 0
        #: ``id(adapter) -> slot`` holding that adapter's per-sample seed;
        #: populated by the MetaLoRAModel rule, consumed by CP/TR rules.
        #: Absent means the adapter runs its static-seed path.
        self.seed_slots: dict[int, int] = {}
        #: When set, the MetaLoRAModel rule does not lower the mapping
        #: network; per-sample seeds arrive as a second program input (the
        #: stacked ``(n, total)`` matrix :func:`compile_seed_mapping`
        #: produces) and are sliced per adapter.  This is what lets the
        #: multi-tenant engine stack requests from tenants that share a
        #: backbone but differ in mapping weights.
        self.external_seeds = external_seeds
        self.seed_input_slot: int | None = None

    def const(self, array: object) -> np.ndarray:
        """A folded constant at the program's compute tier.

        At f64 the array passes through untouched (bit-exactness with
        the autograd path); at f32/int8 floating constants cast to
        float32 so kernel compute stays in float32 end to end.
        """
        array = np.asarray(array)
        if self.precision != "f64" and array.dtype.kind == "f" and array.dtype != np.float32:
            return array.astype(np.float32)
        return array

    def scalar(self, value: float) -> np.ndarray:
        """A 0-d scalar constant at the tier (strong operand either way)."""
        if self.precision == "f64":
            return _scalar(value)
        return np.asarray(value, dtype=np.float32)

    def weight(self, array: np.ndarray) -> np.ndarray:
        """A folded weight matrix at the tier (int8 fake-quant applies)."""
        array = np.asarray(array)
        if self.precision == "int8" and self.quantize and array.ndim >= 2:
            self.quantized += 1
            return quantize_weight(array)
        return self.const(array)

    def new_slot(self) -> int:
        self.n_slots += 1
        return self.n_slots - 1

    def seed_input(self) -> int:
        """The (lazily allocated) slot external seeds are fed through."""
        if self.seed_input_slot is None:
            self.seed_input_slot = self.new_slot()
        return self.seed_input_slot

    def emit(
        self,
        name: str,
        fn: Kernel,
        *inputs: int,
        fn_out: Callable | None = None,
        out_spec: Callable | None = None,
        shardable: bool = False,
    ) -> int:
        output = self.new_slot()
        self.steps.append(
            Step(
                name,
                fn,
                tuple(inputs),
                output,
                fn_out=fn_out,
                out_spec=out_spec,
                shardable=shardable,
            )
        )
        return output

    def emit_relu(self, x: int) -> int:
        """A relu step with the arena/shard-capable out-variant."""
        return self.emit(
            "relu",
            ops.relu_forward,
            x,
            fn_out=lambda out, v: np.maximum(v, 0.0, out=out),
            out_spec=lambda v: (v.shape, v.dtype),
            shardable=True,
        )

    def lower(self, module: Module, x: int) -> int:
        """Lower one module's forward; returns the output slot."""
        return _find_rule(_FORWARD_RULES, module)(module, self, x)

    def lower_features(self, model: Module, x: int) -> int:
        """Lower a model's ``features()``; returns the output slot."""
        return _find_rule(_FEATURES_RULES, model)(model, self, x)


_FORWARD_RULES: dict[type, Callable] = {}
_FEATURES_RULES: dict[type, Callable] = {}


def compiles(*types: type) -> Callable:
    """Register a lowering rule for one or more module types."""

    def register(rule: Callable) -> Callable:
        for klass in types:
            _FORWARD_RULES[klass] = rule
        return rule

    return register


def compiles_features(*types: type) -> Callable:
    """Register a ``features()`` lowering rule for one or more model types."""

    def register(rule: Callable) -> Callable:
        for klass in types:
            _FEATURES_RULES[klass] = rule
        return rule

    return register


def _find_rule(registry: dict[type, Callable], module: Module) -> Callable:
    for klass in type(module).__mro__:
        rule = registry.get(klass)
        if rule is not None:
            return rule
    kind = "features()" if registry is _FEATURES_RULES else "forward"
    raise ServeError(
        f"no serve lowering rule for the {kind} of {type(module).__name__}; "
        "merge static adapters first (AttachResult.merge()) or register a "
        "rule with repro.serve.compile.compiles"
    )


def compile_features(
    model: Module,
    *,
    external_seeds: bool = False,
    precision: str | None = None,
    fuse: bool | None = None,
    parallel: int | None = None,
) -> CompiledProgram:
    """Compile ``model.features(x)`` into a :class:`CompiledProgram`.

    The model is put in eval mode for the duration of lowering (batch
    norms fold their running statistics; dropout lowers to identity) and
    restored afterwards.  Compilation is observable: a ``serve.compile``
    span/timer when :mod:`repro.obs` is enabled.

    ``precision`` selects the compute tier (``None`` resolves through
    ``REPRO_SERVE_PRECISION``, default f64 — the bit-exact tier);
    ``fuse`` / ``parallel`` override the fusion pass and executor
    worker count (``REPRO_SERVE_FUSION`` / ``REPRO_SERVE_PARALLEL``).

    With ``external_seeds=True`` (MetaLoRA models only) the mapping
    network is *not* lowered; the program takes ``(images, seeds)`` where
    ``seeds`` is the stacked per-sample matrix a separately compiled
    :func:`compile_seed_mapping` program produces.  Splitting the two lets
    the serve registry share one backbone body program across tenants
    whose mapping weights differ.
    """
    from repro.obs import OBS, TRACER  # local: keep compile import-light

    precision = optimize.resolve_precision(precision)
    with TRACER.span(
        "serve.compile", model=type(model).__name__, precision=precision
    ), OBS.time("serve.compile"):
        builder = ProgramBuilder(external_seeds=external_seeds, precision=precision)
        x = builder.new_slot()
        with eval_mode(model):
            output = builder.lower_features(model, x)
        inputs: tuple[int, ...] = (x,)
        if builder.seed_input_slot is not None:
            inputs = (x, builder.seed_input_slot)
        program = CompiledProgram(
            builder.steps,
            builder.n_slots,
            inputs,
            output,
            type(model).__name__,
            precision=precision,
            fuse=fuse,
            parallel=parallel,
            quantized=builder.quantized,
        )
        OBS.enabled and OBS.inc(
            "serve.fusion.steps_eliminated", program.fusion_eliminated
        )
        return program


def compile_forward(
    module: Module,
    *,
    precision: str | None = None,
    fuse: bool | None = None,
    parallel: int | None = None,
    quantize: bool = True,
) -> CompiledProgram:
    """Compile one module's ``forward`` (not ``features``) into a program.

    Used by the serve registry to compile a MetaLoRA model's feature
    extractor on its own, so tenants sharing an extractor share the
    compiled program.  The registry passes ``quantize=False`` for the
    extractor: it feeds the seed mapping, and the seed-generation path
    is exempt from int8 weight quantization at every tier.
    """
    from repro.obs import OBS, TRACER

    precision = optimize.resolve_precision(precision)
    with TRACER.span(
        "serve.compile", model=type(module).__name__, precision=precision
    ), OBS.time("serve.compile"):
        builder = ProgramBuilder(precision=precision)
        builder.quantize = quantize
        x = builder.new_slot()
        with eval_mode(module):
            output = builder.lower(module, x)
        program = CompiledProgram(
            builder.steps,
            builder.n_slots,
            x,
            output,
            type(module).__name__,
            precision=precision,
            fuse=fuse,
            parallel=parallel,
            quantized=builder.quantized,
        )
        OBS.enabled and OBS.inc(
            "serve.fusion.steps_eliminated", program.fusion_eliminated
        )
        return program


def compile_seed_mapping(
    model: Module,
    *,
    precision: str | None = None,
    fuse: bool | None = None,
    parallel: int | None = None,
) -> CompiledProgram:
    """Compile a MetaLoRA model's mapping network: features in, seeds out.

    The program maps extractor features ``(n, F)`` to the stacked scaled
    seed matrix ``(n, total)`` — exactly the intermediate the fused
    ``features()`` program computes before slicing per adapter, laid out
    by ``model._seed_offsets``.  The seed-generation strategy freezes at
    compile time, mirroring ``generate_seeds``' dispatch on
    ``FLAGS.batched_seeds``; either way each output column is the same
    dot product the matching full-program path computes, so feeding the
    result into an ``external_seeds`` body program is bit-identical to
    the fused program.  Mapping weights are never int8-quantized (the
    seed path is exempt at every tier), matching the fused rule.
    """
    from repro.obs import OBS, TRACER

    if not isinstance(model, MetaLoRAModel):
        raise ServeError(
            f"compile_seed_mapping expects a MetaLoRAModel, got {type(model).__name__}"
        )
    precision = optimize.resolve_precision(precision)
    with TRACER.span(
        "serve.compile", model=f"{type(model).__name__}.seeds", precision=precision
    ), OBS.time("serve.compile"):
        builder = ProgramBuilder(precision=precision)
        builder.quantize = False
        feats = builder.new_slot()
        with eval_mode(model):
            hidden = builder.lower(model.trunk, feats)
            hidden = builder.emit_relu(hidden)
            adapters = model._meta_adapters
            if FLAGS.batched_seeds and len(adapters) > 1:
                fused_w = builder.const(
                    np.concatenate([head.weight.data for head in model.heads], axis=1)
                )
                fused_b = builder.const(
                    np.concatenate([head.bias.data for head in model.heads], axis=0)
                )
                gains = builder.const(model.head_gains.data[model._gain_index])
                out = builder.emit(
                    "fused_seed_heads",
                    lambda h: np.tanh(h @ fused_w + fused_b) * gains,
                    hidden,
                )
            else:
                flats = []
                for index, head in enumerate(model.heads):
                    raw = builder.lower(head, hidden)
                    gain = builder.const(np.asarray(model.head_gains.data[index]))
                    flats.append(
                        builder.emit(
                            f"seed_flat[{index}]",
                            lambda r, gain=gain: np.tanh(r) * gain,
                            raw,
                        )
                    )
                if len(flats) == 1:
                    out = flats[0]
                else:
                    out = builder.emit(
                        "seed_concat",
                        lambda *parts: np.concatenate(parts, axis=1),
                        *flats,
                    )
        program = CompiledProgram(
            builder.steps,
            builder.n_slots,
            feats,
            out,
            f"{type(model).__name__}.seeds",
            precision=precision,
            fuse=fuse,
            parallel=parallel,
        )
        OBS.enabled and OBS.inc(
            "serve.fusion.steps_eliminated", program.fusion_eliminated
        )
        return program


# -- nn layer rules -----------------------------------------------------------


@compiles(Linear)
def _lower_linear(module: Linear, b: ProgramBuilder, x: int) -> int:
    w = b.weight(module.weight.data)
    if module.bias is None:
        return b.emit("linear", lambda x: x @ w, x)
    bias = b.const(module.bias.data)
    return b.emit("linear", lambda x: x @ w + bias, x)


def _conv_kernel(
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    b: ProgramBuilder,
) -> Kernel:
    """Convolution closure with the weight folded to its im2col matrix."""
    kh, kw = weight.shape[0], weight.shape[1]
    w_mat = b.weight(fold_conv_weight(weight))
    if bias is not None:
        bias = b.const(bias)

    def kernel(x: np.ndarray) -> np.ndarray:
        out, _, _, _ = conv2d_forward(x, w_mat, bias, kh, kw, stride, padding)
        return out

    return kernel


@compiles(Conv2d)
def _lower_conv2d(module: Conv2d, b: ProgramBuilder, x: int) -> int:
    bias = module.bias.data if module.bias is not None else None
    return b.emit(
        "conv2d",
        _conv_kernel(module.weight.data, bias, module.stride, module.padding, b),
        x,
    )


@compiles(BatchNorm2d)
def _lower_batchnorm2d(module: BatchNorm2d, b: ProgramBuilder, x: int) -> int:
    if module.training:
        raise ServeError("BatchNorm2d can only be compiled in eval mode")
    mean4 = b.const(module._buffers["running_mean"].reshape(1, -1, 1, 1))
    var4 = module._buffers["running_var"].reshape(1, -1, 1, 1)
    # Fold sqrt(var + eps) once; `var + eps` promotes to float64 exactly
    # as the Tensor path does (eps goes through _scalar).
    denom = b.const(np.sqrt(var4 + _scalar(module.eps)))
    gamma4 = b.const(module.gamma.data.reshape(1, module.channels, 1, 1))
    beta4 = b.const(module.beta.data.reshape(1, module.channels, 1, 1))
    cdtype = np.result_type(mean4, denom, gamma4, beta4)

    def fn_out(out: np.ndarray, x: np.ndarray) -> None:
        np.subtract(x, mean4, out=out)
        np.divide(out, denom, out=out)
        np.multiply(out, gamma4, out=out)
        np.add(out, beta4, out=out)

    return b.emit(
        "batchnorm2d",
        lambda x: (x - mean4) / denom * gamma4 + beta4,
        x,
        fn_out=fn_out,
        out_spec=lambda x: (x.shape, np.result_type(x.dtype, cdtype)),
        shardable=True,
    )


@compiles(LayerNorm)
def _lower_layernorm(module: LayerNorm, b: ProgramBuilder, x: int) -> int:
    gamma, beta = b.const(module.gamma.data), b.const(module.beta.data)
    eps = b.scalar(module.eps)
    # Tensor.mean is sum * (1/count) with the scale coerced to a 0-d
    # float64 — mirrored exactly here.
    inv_count = b.scalar(1.0 / module.features)

    def kernel(x: np.ndarray) -> np.ndarray:
        mean = x.sum(axis=-1, keepdims=True) * inv_count
        centered = x - mean
        var = (centered * centered).sum(axis=-1, keepdims=True) * inv_count
        x_hat = (x - mean) / np.sqrt(var + eps)
        return x_hat * gamma + beta

    return b.emit("layernorm", kernel, x)


@compiles(MaxPool2d)
def _lower_max_pool2d(module: MaxPool2d, b: ProgramBuilder, x: int) -> int:
    kernel, stride = module.kernel, module.stride
    return b.emit("max_pool2d", lambda x: max_pool2d_forward(x, kernel, stride)[0], x)


@compiles(AvgPool2d)
def _lower_avg_pool2d(module: AvgPool2d, b: ProgramBuilder, x: int) -> int:
    kernel, stride = module.kernel, module.stride
    return b.emit("avg_pool2d", lambda x: avg_pool2d_forward(x, kernel, stride)[0], x)


@compiles(GlobalAvgPool2d)
def _lower_global_avg_pool2d(module: GlobalAvgPool2d, b: ProgramBuilder, x: int) -> int:
    if b.precision == "f64":

        def kernel(x: np.ndarray) -> np.ndarray:
            inv = np.asarray(1.0 / (x.shape[2] * x.shape[3]))
            return x.sum(axis=(2, 3)) * inv

    else:

        def kernel(x: np.ndarray) -> np.ndarray:
            return x.sum(axis=(2, 3)) * np.float32(1.0 / (x.shape[2] * x.shape[3]))

    return b.emit("global_avg_pool2d", kernel, x)


@compiles(Sequential)
def _lower_sequential(module: Sequential, b: ProgramBuilder, x: int) -> int:
    for child in module._items:
        x = b.lower(child, x)
    return x


@compiles(Dropout)
def _lower_dropout(module: Dropout, b: ProgramBuilder, x: int) -> int:
    # Inference programs always run in eval mode, where dropout is identity.
    return x


@compiles(ReLU)
def _lower_relu_module(module: ReLU, b: ProgramBuilder, x: int) -> int:
    return b.emit_relu(x)


@compiles(GELU)
def _lower_gelu_module(module: GELU, b: ProgramBuilder, x: int) -> int:
    return b.emit("gelu", ops.gelu_forward, x)


@compiles(Tanh)
def _lower_tanh_module(module: Tanh, b: ProgramBuilder, x: int) -> int:
    return b.emit(
        "tanh",
        ops.tanh_forward,
        x,
        fn_out=lambda out, v: np.tanh(v, out=out),
        out_spec=lambda v: (v.shape, v.dtype),
        shardable=True,
    )


@compiles(Sigmoid)
def _lower_sigmoid_module(module: Sigmoid, b: ProgramBuilder, x: int) -> int:
    return b.emit("sigmoid", ops.sigmoid_forward, x)


# -- backbone rules -----------------------------------------------------------


@compiles(BasicBlock)
def _lower_basic_block(module: BasicBlock, b: ProgramBuilder, x: int) -> int:
    out = b.lower(module.conv1, x)
    out = b.lower(module.bn1, out)
    out = b.emit_relu(out)
    out = b.lower(module.conv2, out)
    out = b.lower(module.bn2, out)
    identity = b.lower(module.shortcut, x) if module.shortcut is not None else x

    def fn_out(out: np.ndarray, a: np.ndarray, c: np.ndarray) -> None:
        np.add(a, c, out=out)
        np.maximum(out, 0.0, out=out)

    return b.emit(
        "residual_relu",
        lambda a, c: np.maximum(a + c, 0.0),
        out,
        identity,
        fn_out=fn_out,
        out_spec=lambda a, c: (a.shape, np.result_type(a, c)),
        shardable=True,
    )


@compiles(MixerBlock)
def _lower_mixer_block(module: MixerBlock, b: ProgramBuilder, x: int) -> int:
    y = b.lower(module.norm1, x)
    y = b.emit("transpose(0,2,1)", lambda y: y.transpose(0, 2, 1), y)
    y = b.lower(module.token_fc1, y)
    y = b.emit("gelu", ops.gelu_forward, y)
    y = b.lower(module.token_fc2, y)
    x = b.emit(
        "token_residual",
        lambda x, y: x + y.transpose(0, 2, 1),
        x,
        y,
        fn_out=lambda out, x, y: np.add(x, y.transpose(0, 2, 1), out=out),
        out_spec=lambda x, y: (x.shape, np.result_type(x, y)),
        shardable=True,
    )
    z = b.lower(module.norm2, x)
    z = b.lower(module.channel_fc1, z)
    z = b.emit("gelu", ops.gelu_forward, z)
    z = b.lower(module.channel_fc2, z)
    return b.emit(
        "channel_residual",
        lambda x, z: x + z,
        x,
        z,
        fn_out=lambda out, x, z: np.add(x, z, out=out),
        out_spec=lambda x, z: (x.shape, np.result_type(x, z)),
        shardable=True,
    )


@compiles_features(ResNet)
def _features_resnet(model: ResNet, b: ProgramBuilder, x: int) -> int:
    out = b.lower(model.stem, x)
    out = b.lower(model.stem_bn, out)
    out = b.emit_relu(out)
    for block in model.blocks:
        out = b.lower(block, out)
    return b.lower(model.pool, out)


@compiles_features(MLPMixer)
def _features_mixer(model: MLPMixer, b: ProgramBuilder, x: int) -> int:
    p = model.patch_size
    grid = model.image_size // p
    c = model.in_channels

    def patchify(x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        tiles = x.reshape(n, c, grid, p, grid, p)
        tiles = tiles.transpose(0, 2, 4, 1, 3, 5)
        return tiles.reshape(n, grid * grid, c * p * p)

    tokens = b.emit("patchify", patchify, x)
    tokens = b.lower(model.embed, tokens)
    for block in model.mixer_blocks:
        tokens = b.lower(block, tokens)
    tokens = b.lower(model.norm, tokens)
    inv = b.scalar(1.0 / model.num_patches)
    return b.emit("token_mean", lambda t: t.sum(axis=1) * inv, tokens)


@compiles(FeatureExtractor)
def _lower_feature_extractor(module: FeatureExtractor, b: ProgramBuilder, x: int) -> int:
    feats = b.lower_features(module.backbone, x)
    normalize = module.normalize
    include_stats = module.include_stats
    input_channels = module.input_channels

    # The reference forward operates on raw arrays already (it detaches
    # through no_grad + .data), so this kernel is the same numpy code.
    def kernel(feats: np.ndarray, x: np.ndarray) -> np.ndarray:
        if normalize:
            norms = np.linalg.norm(feats, axis=1, keepdims=True)
            feats = feats / np.maximum(norms, 1e-12)
        if include_stats:
            if x.ndim == 4:
                means = x.mean(axis=(2, 3))
                stds = x.std(axis=(2, 3))
            else:
                means = np.zeros((x.shape[0], input_channels), dtype=feats.dtype)
                stds = np.zeros((x.shape[0], input_channels), dtype=feats.dtype)
            feats = np.concatenate(
                [feats, means.astype(feats.dtype), stds.astype(feats.dtype)], axis=1
            )
        return feats

    return b.emit("extractor_stats", kernel, feats, x)


# -- adapter fast paths -------------------------------------------------------


@compiles(LoRALinear)
def _lower_lora_linear(module: LoRALinear, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    a, bb = b.weight(module.lora_a.data), b.weight(module.lora_b.data)
    scale = b.scalar(module.scaling)
    return b.emit("lora_linear", lambda o, x: o + (x @ a @ bb) * scale, base, x)


@compiles(ConvLoRA)
def _lower_conv_lora(module: ConvLoRA, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    # The adapter conv shares geometry with the base conv, so its
    # _im2col_contiguous call hits the patch cache populated one step ago.
    mid_conv = _conv_kernel(
        module.lora_a.data, None, module.base.stride, module.base.padding, b
    )
    lb = b.weight(module.lora_b.data)
    scale = b.scalar(module.scaling)

    def kernel(o: np.ndarray, x: np.ndarray) -> np.ndarray:
        delta = ops.einsum_forward("nrhw,ro->nohw", mid_conv(x), lb)
        return o + delta * scale

    return b.emit("conv_lora", kernel, base, x)


def _fold_gates(module, b: ProgramBuilder) -> list[np.ndarray]:
    """Per-branch ``gates[k] * scaling`` constants (0-d, as on the Tensor
    path where the python-float scaling promotes the product — cast to
    the tier's compute dtype like every other folded constant)."""
    return [
        b.const(module.gates.data[k] * _scalar(module.scaling))
        for k in range(module.branches)
    ]


@compiles(MultiLoRALinear)
def _lower_multi_lora_linear(module: MultiLoRALinear, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    branches = [
        (b.weight(branch.lora_a.data), b.weight(branch.lora_b.data))
        for branch in module.lora_branches
    ]
    gates = _fold_gates(module, b)

    def kernel(o: np.ndarray, x: np.ndarray) -> np.ndarray:
        for (a, bb), gate in zip(branches, gates):
            o = o + (x @ a @ bb) * gate
        return o

    return b.emit("multi_lora_linear", kernel, base, x)


@compiles(MultiLoRAConv)
def _lower_multi_lora_conv(module: MultiLoRAConv, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    stride, padding = module.base.stride, module.base.padding
    branches = [
        (
            _conv_kernel(branch.lora_a.data, None, stride, padding, b),
            b.weight(branch.lora_b.data),
        )
        for branch in module.lora_branches
    ]
    gates = _fold_gates(module, b)

    def kernel(o: np.ndarray, x: np.ndarray) -> np.ndarray:
        for (mid_conv, lb), gate in zip(branches, gates):
            delta = ops.einsum_forward("nrhw,ro->nohw", mid_conv(x), lb)
            o = o + delta * gate
        return o

    return b.emit("multi_lora_conv", kernel, base, x)


@compiles(MetaLoRACPLinear)
def _lower_meta_cp_linear(module: MetaLoRACPLinear, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    fa, fb = b.weight(module.factor_a.data), b.weight(module.factor_b.data)
    rank = module.rank
    out_features = module.base.out_features
    scale = b.scalar(module.scaling)
    seed_slot = b.seed_slots.get(id(module))
    static = b.const(module.static_seed.data.reshape(1, 1, rank))

    def kernel(o: np.ndarray, x: np.ndarray, seed: np.ndarray | None = None) -> np.ndarray:
        squeeze = x.ndim == 2
        x3 = x.reshape(x.shape[0], 1, x.shape[1]) if squeeze else x
        mid = ops.einsum_forward("nti,ir->ntr", x3, fa)
        if seed is None:
            mid = mid * static
        else:
            mid = mid * seed.reshape(seed.shape[0], 1, rank)
        delta = ops.einsum_forward("ntr,ro->nto", mid, fb) * scale
        if squeeze:
            delta = delta.reshape(x.shape[0], out_features)
        return o + delta

    if seed_slot is None:
        return b.emit("meta_cp_linear[static]", kernel, base, x)
    return b.emit("meta_cp_linear", kernel, base, x, seed_slot)


@compiles(MetaLoRACPConv)
def _lower_meta_cp_conv(module: MetaLoRACPConv, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    mid_conv = _conv_kernel(
        module.factor_a.data, None, module.base.stride, module.base.padding, b
    )
    fb = b.weight(module.factor_b.data)
    static = b.const(module.static_seed.data)
    scale = b.scalar(module.scaling)
    seed_slot = b.seed_slots.get(id(module))

    def kernel(o: np.ndarray, x: np.ndarray, seed: np.ndarray | None = None) -> np.ndarray:
        mid = mid_conv(x)
        if seed is None:
            delta = ops.einsum_forward("nrhw,r,ro->nohw", mid, static, fb)
        else:
            delta = ops.einsum_forward("nrhw,nr,ro->nohw", mid, seed, fb)
        return o + delta * scale

    if seed_slot is None:
        return b.emit("meta_cp_conv[static]", kernel, base, x)
    return b.emit("meta_cp_conv", kernel, base, x, seed_slot)


@compiles(MetaLoRATRLinear)
def _lower_meta_tr_linear(module: MetaLoRATRLinear, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    ca, cb = b.weight(module.core_a.data), b.weight(module.core_b.data)
    static = b.const(module.static_seed.data)
    out_features = module.base.out_features
    scale = b.scalar(module.scaling)
    seed_slot = b.seed_slots.get(id(module))

    def kernel(o: np.ndarray, x: np.ndarray, seed: np.ndarray | None = None) -> np.ndarray:
        squeeze = x.ndim == 2
        x3 = x.reshape(x.shape[0], 1, x.shape[1]) if squeeze else x
        t1 = ops.einsum_forward("nti,pir->ntpr", x3, ca)
        if seed is None:
            delta = ops.einsum_forward("ntpr,roq,qp->nto", t1, cb, static)
        else:
            delta = ops.einsum_forward("ntpr,roq,nqp->nto", t1, cb, seed)
        delta = delta * scale
        if squeeze:
            delta = delta.reshape(x.shape[0], out_features)
        return o + delta

    if seed_slot is None:
        return b.emit("meta_tr_linear[static]", kernel, base, x)
    return b.emit("meta_tr_linear", kernel, base, x, seed_slot)


@compiles(MetaLoRATRConv)
def _lower_meta_tr_conv(module: MetaLoRATRConv, b: ProgramBuilder, x: int) -> int:
    base = b.lower(module.base, x)
    r = module.rank
    k = module.base.kernel_size
    # The Tensor path rebuilds A's (K, K, I, R·R) conv layout every
    # forward; fold it (and its im2col matrix) once here.
    a_conv = module.core_a.data.transpose(1, 2, 3, 0, 4).reshape(
        k, k, module.base.in_channels, r * r
    )
    mid_conv = _conv_kernel(a_conv, None, module.base.stride, module.base.padding, b)
    cb = b.weight(module.core_b.data)
    static = b.const(module.static_seed.data)
    scale = b.scalar(module.scaling)
    seed_slot = b.seed_slots.get(id(module))

    def kernel(o: np.ndarray, x: np.ndarray, seed: np.ndarray | None = None) -> np.ndarray:
        mid = mid_conv(x)
        n, __, h, w = mid.shape
        mid = mid.reshape(n, r, r, h, w)
        if seed is None:
            delta = ops.einsum_forward("nprhw,roq,qp->nohw", mid, cb, static)
        else:
            delta = ops.einsum_forward("nprhw,roq,nqp->nohw", mid, cb, seed)
        return o + delta * scale

    if seed_slot is None:
        return b.emit("meta_tr_conv[static]", kernel, base, x)
    return b.emit("meta_tr_conv", kernel, base, x, seed_slot)


# -- MetaLoRA: mapping network + seed-fed backbone ----------------------------


@compiles_features(MetaLoRAModel)
def _features_meta_lora(model: MetaLoRAModel, b: ProgramBuilder, x: int) -> int:
    adapters = model._meta_adapters
    if b.external_seeds:
        # Seeds arrive pre-computed as the stacked (n, total) matrix from a
        # compile_seed_mapping program; only slice them per adapter.  The
        # slice kernels are the same ones the fused path emits, so the
        # split program sequence is bit-identical to the fused program.
        seeds = b.seed_input()
        for index, adapter in enumerate(adapters):
            lo = model._seed_offsets[index]
            hi = model._seed_offsets[index + 1]
            shape = adapter.seed_shape

            def slice_seed(s: np.ndarray, lo: int = lo, hi: int = hi, shape=shape) -> np.ndarray:
                return s[:, lo:hi].reshape(s.shape[0], *shape)

            b.seed_slots[id(adapter)] = b.emit(f"seed[{index}]", slice_seed, seeds)
        return b.lower_features(model.backbone, x)
    # The whole seed-generation path (extractor, trunk, heads) is exempt
    # from int8 weight quantization: seeds parameterize downstream
    # kernels, and this matches the registry's split compilation.
    quantize = b.quantize
    b.quantize = False
    try:
        feats = b.lower(model.extractor, x)
        hidden = b.lower(model.trunk, feats)
        hidden = b.emit_relu(hidden)
        # Freeze the seed-generation strategy at compile time, mirroring
        # generate_seeds' dispatch on FLAGS.batched_seeds.
        if FLAGS.batched_seeds and len(adapters) > 1:
            fused_w = b.const(
                np.concatenate([head.weight.data for head in model.heads], axis=1)
            )
            fused_b = b.const(
                np.concatenate([head.bias.data for head in model.heads], axis=0)
            )
            gains = b.const(model.head_gains.data[model._gain_index])
            scaled = b.emit(
                "fused_seed_heads",
                lambda h: np.tanh(h @ fused_w + fused_b) * gains,
                hidden,
            )
            for index, adapter in enumerate(adapters):
                lo = model._seed_offsets[index]
                hi = model._seed_offsets[index + 1]
                shape = adapter.seed_shape

                def slice_seed(s: np.ndarray, lo: int = lo, hi: int = hi, shape=shape) -> np.ndarray:
                    return s[:, lo:hi].reshape(s.shape[0], *shape)

                b.seed_slots[id(adapter)] = b.emit(f"seed[{index}]", slice_seed, scaled)
        else:
            for index, (adapter, head) in enumerate(zip(adapters, model.heads)):
                raw = b.lower(head, hidden)
                gain = b.const(np.asarray(model.head_gains.data[index]))
                shape = adapter.seed_shape

                def seed_kernel(r: np.ndarray, gain=gain, shape=shape) -> np.ndarray:
                    return (np.tanh(r) * gain).reshape(r.shape[0], *shape)

                b.seed_slots[id(adapter)] = b.emit(f"seed[{index}]", seed_kernel, raw)
    finally:
        b.quantize = quantize
    return b.lower_features(model.backbone, x)
