"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.backbone == "resnet"
        assert args.seeds == [0]
        assert not args.quick

    def test_table1_options(self):
        args = build_parser().parse_args(
            ["table1", "--backbone", "mixer", "--seeds", "0", "1", "--quick"]
        )
        assert args.backbone == "mixer"
        assert args.seeds == [0, 1]
        assert args.quick

    def test_table1_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.out_dir is None
        assert args.resume is None
        assert args.max_retries == 0
        assert args.cell_timeout is None

    def test_table1_rundir_flags(self):
        args = build_parser().parse_args(
            [
                "table1", "--out-dir", "runs/t1", "--max-retries", "2",
                "--cell-timeout", "30.5",
            ]
        )
        assert args.out_dir == "runs/t1"
        assert args.max_retries == 2
        assert args.cell_timeout == 30.5

    def test_shared_jobs_flag_consistent_across_subcommands(self):
        # --jobs comes from one parent parser, so its default cannot drift.
        table1 = build_parser().parse_args(["table1"])
        bench = build_parser().parse_args(["bench"])
        assert table1.jobs == bench.jobs == 1

    def test_robustness_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.backbone == "resnet"
        assert args.seeds == [0]
        assert args.corruptions is None  # None = the full catalog
        assert args.severities is None  # None = the config default ladder
        assert not args.smoke
        assert args.out_dir is None and args.resume is None

    def test_robustness_options(self):
        args = build_parser().parse_args(
            [
                "robustness", "--smoke", "--seeds", "0", "1",
                "--corruptions", "contrast", "occlusion",
                "--severities", "0", "3", "--jobs", "2",
            ]
        )
        assert args.smoke
        assert args.seeds == [0, 1]
        assert args.corruptions == ["contrast", "occlusion"]
        assert args.severities == [0, 3]
        assert args.jobs == 2

    def test_shared_run_flags_consistent_across_subcommands(self):
        # --smoke/--out-dir/--resume live on one parent parser: both grid
        # subcommands parse them identically.
        for command in ("table1", "robustness"):
            args = build_parser().parse_args(
                [command, "--smoke", "--out-dir", "runs/x"]
            )
            assert args.smoke and args.out_dir == "runs/x"
            resumed = build_parser().parse_args([command, "--resume", "runs/x"])
            assert resumed.resume == "runs/x"

    def test_shared_backbone_flag_consistent_across_subcommands(self):
        table1 = build_parser().parse_args(["table1", "--backbone", "mixer"])
        inspect = build_parser().parse_args(["inspect", "--backbone", "mixer"])
        assert table1.backbone == inspect.backbone == "mixer"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "runs/t1"])
        assert args.target == "runs/t1"
        assert args.depth == 4
        assert args.top == 8

    def test_inspect_defaults(self):
        args = build_parser().parse_args(["inspect"])
        assert args.method == "meta_lora_tr"

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inspect", "--method", "qlora"])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile"])
        assert args.method == "meta_lora_tr"
        assert args.precision is None  # resolved env-aware at compile time
        assert args.describe is False

    def test_compile_rejects_unknown_precision(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "--precision", "f16"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_figures_runs(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "Fig. 3" in out

    def test_inspect_runs(self, capsys):
        assert main(["inspect", "--method", "lora"]) == 0
        out = capsys.readouterr().out
        assert "trainable" in out
        assert "LoRALinear" in out

    def test_inspect_original_has_no_adapters(self, capsys):
        assert main(["inspect", "--method", "original"]) == 0
        out = capsys.readouterr().out
        assert "trainable=0" in out

    def test_compile_describe_lists_steps(self, capsys):
        assert main(
            ["compile", "--method", "lora", "--precision", "f32", "--describe"]
        ) == 0
        out = capsys.readouterr().out
        assert "precision: f32" in out
        assert "fusion eliminated" in out
        # The listing resolved per-step output dtypes from the dummy run.
        assert "float32(" in out
        assert "0: %" in out

    def test_report_renders_saved_records(self, capsys, tmp_path):
        from repro.eval.protocol import Table1Row
        from repro.eval.reporting import record_from_rows, save_record

        rows = {
            "lora": Table1Row("lora", {5: 0.8, 10: 0.7}),
            "meta_lora_tr": Table1Row("meta_lora_tr", {5: 0.9, 10: 0.8}),
        }
        record = record_from_rows("resnet", [0], [rows], ks=(5, 10))
        save_record(record, tmp_path)
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table I — resnet" in out
        assert "| Meta-LoRA TR | 90.00 | 80.00 |" in out

    def test_report_empty_dir_fails_gracefully(self, capsys, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path)]) == 1

    def test_table1_command_drives_protocol(self, capsys, monkeypatch):
        from repro.eval.protocol import Table1Row
        import repro.cli as cli

        def fake_run(config, seed):
            return {
                m: Table1Row(m, {k: 0.5 for k in config.ks})
                for m in config.methods
            }

        monkeypatch.setattr(cli, "run_table1", fake_run)
        assert main(["table1", "--seeds", "0", "1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Backbone: resnet" in out
        assert "significance" in out

    @pytest.mark.parametrize("jobs", ["0", "-2"])
    def test_table1_rejects_bad_jobs(self, capsys, jobs):
        assert main(["table1", "--jobs", jobs]) == 2
        err = capsys.readouterr().err
        assert "jobs must be >= 1" in err

    def test_trace_renders_exported_spans(self, capsys, tmp_path):
        from repro.obs import Tracer, write_trace

        tracer = Tracer(enabled=True)
        with tracer.span("table1.grid", jobs=2):
            with tracer.span("table1.cell", key="(0, 'lora')"):
                pass
        write_trace(tmp_path / "trace.jsonl", tracer.drain())
        assert main(["trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out
        assert "table1.grid" in out
        assert "table1.cell" in out

    def test_trace_without_export_fails_gracefully(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path)]) == 2
        assert "--out-dir" in capsys.readouterr().err

    def test_table1_partial_report_on_failures(self, capsys, monkeypatch):
        import repro.runtime as runtime
        from repro.eval.protocol import Table1Row
        from repro.runtime.pool import CellFailure, CellResult
        from repro.runtime.table1 import Table1GridResult

        def fake_grid(config, seeds, **kwargs):
            assert kwargs["strict"] is False
            rows = {
                m: Table1Row(m, {k: 0.5 for k in config.ks})
                for m in config.methods
                if m != "meta_lora_tr"
            }
            failed = CellResult(
                key=(0, "meta_lora_tr"),
                value=None,
                failure=CellFailure(
                    key=(0, "meta_lora_tr"),
                    error_type="FaultInjected",
                    message="boom",
                    traceback="",
                ),
            )
            return Table1GridResult(
                config=config,
                seeds=tuple(seeds),
                rows_by_seed=[rows],
                cell_results=[failed],
            )

        monkeypatch.setattr(runtime, "run_table1_grid", fake_grid)
        assert main(["table1", "--max-retries", "1"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "partial results" in out
        assert "1 cell(s) failed" in out

    def test_robustness_command_drives_grid(self, capsys, monkeypatch):
        import itertools

        import repro.runtime as runtime
        from repro.eval.robustness import RobustnessCell
        from repro.runtime.robustness import RobustnessGridResult

        def fake_grid(config, seeds, **kwargs):
            assert kwargs["strict"] is False
            cells = {
                (seed, method, corruption, severity): RobustnessCell(
                    method=method,
                    corruption=corruption,
                    severity=severity,
                    accuracy_by_k={k: 0.5 for k in config.table1.ks},
                )
                for seed, method, corruption, severity in itertools.product(
                    seeds,
                    config.table1.methods,
                    config.corruptions,
                    config.severities,
                )
            }
            return RobustnessGridResult(
                config=config, seeds=tuple(seeds), cells=cells
            )

        monkeypatch.setattr(runtime, "run_robustness_grid", fake_grid)
        assert main(
            ["robustness", "--smoke", "--corruptions", "contrast",
             "--severities", "0", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "running 10 cells" in out  # 1 seed x 5 methods x 1 x 2
        assert "contrast:" in out
        assert "slope" in out

    def test_robustness_partial_report_on_failures(self, capsys, monkeypatch):
        import repro.runtime as runtime
        from repro.runtime.pool import CellFailure, CellResult
        from repro.runtime.robustness import RobustnessGridResult

        def fake_grid(config, seeds, **kwargs):
            key = (0, "lora", "contrast", 3)
            failed = CellResult(
                key=key,
                value=None,
                failure=CellFailure(
                    key=key,
                    error_type="FaultInjected",
                    message="boom",
                    traceback="",
                ),
            )
            return RobustnessGridResult(
                config=config,
                seeds=tuple(seeds),
                cells={},
                cell_results=[failed],
            )

        monkeypatch.setattr(runtime, "run_robustness_grid", fake_grid)
        assert main(
            ["robustness", "--smoke", "--out-dir", "runs/rob"]
        ) == 1
        out = capsys.readouterr().out
        assert "partial results" in out
        assert "1 cell(s) failed" in out
        assert "--resume runs/rob" in out
