"""The robustness bench record: round-trip, pins, and validator teeth.

One real (tiny) ``run_robustness_bench`` drives everything: the record
must validate after a JSON round-trip, its three bit-identity pins must
be asserted in-process (the record only exists if they held), and every
validator branch must reject a targeted mutation of the good record.
"""

import json

import pytest

from repro.bench import (
    format_bench_record,
    run_robustness_bench,
    validate_bench_record,
    write_bench_records,
)
from repro.errors import ConfigError

pytestmark = pytest.mark.bench_smoke

#: The smallest grid that satisfies the headline contract: the static
#: baseline plus one meta method, one corruption, the clean rung + one
#: corrupted rung.
BENCH_KWARGS = dict(
    scale="tiny",
    repeats=1,
    jobs=2,
    methods=("lora", "meta_lora_cp"),
    corruptions=("contrast",),
    severities=(0, 3),
)


@pytest.fixture(scope="module")
def record():
    return json.loads(json.dumps(run_robustness_bench(**BENCH_KWARGS)))


class TestRobustnessBench:
    def test_record_round_trips_and_pins_hold(self, record):
        validate_bench_record(record)
        assert record["kind"] == "robustness"
        assert record["severity0_bit_identical"] is True
        assert record["parallel"]["cells_equal"] is True
        assert record["parallel"]["jobs"] >= 2
        assert record["resume"]["cells_equal"] is True
        assert record["resume"]["restored_cells"] >= 1
        grid = record["grid"]
        assert len(record["cells"]) == (
            len(grid["seeds"]) * len(grid["methods"])
            * len(grid["corruptions"]) * len(grid["severities"])
        )
        assert record["summary"]["headline_delta"] == (
            record["headline"]["corrupted_delta"]
        )

    def test_stream_section_covers_every_step(self, record):
        stream = record["stream"]
        assert stream["steps"] >= 2
        for entry in stream["methods"].values():
            assert len(entry["steps"]) == stream["steps"]
            assert all(step["refit_latency_s"] >= 0 for step in entry["steps"])

    def test_format_is_human_readable(self, record):
        text = format_bench_record(record)
        assert "robustness bench" in text
        assert "headline: MetaLoRA vs lora" in text
        assert "severity-0 == clean Table I: True" in text
        assert "streaming drift" in text

    def test_severity_zero_required(self):
        with pytest.raises(ConfigError, match="severity 0"):
            run_robustness_bench(**{**BENCH_KWARGS, "severities": (1, 3)})

    def test_headline_needs_baseline_and_meta(self):
        with pytest.raises(ConfigError, match="meta method"):
            run_robustness_bench(**{**BENCH_KWARGS, "methods": ("original", "lora")})

    def test_robustness_suite_is_opt_in(self, tmp_path, record, monkeypatch):
        import repro.bench as bench_module

        seen = {}

        def stub(scale, repeats, jobs):
            seen.update(scale=scale, repeats=repeats, jobs=jobs)
            return record

        # Default suites must not run it (the full default grid is heavy);
        # selecting it must write the record with the parallel pin's jobs
        # floor applied.
        assert "robustness" not in bench_module._DEFAULT_SUITES
        monkeypatch.setitem(bench_module._BENCH_SUITES, "robustness", stub)
        paths = write_bench_records(
            str(tmp_path), scale="tiny", repeats=1, jobs=1,
            suites=("robustness",),
        )
        assert [p.rsplit("/", 1)[-1] for p in paths] == ["BENCH_robustness.json"]
        assert seen == {"scale": "tiny", "repeats": 1, "jobs": 2}
        with open(paths[0], encoding="utf-8") as handle:
            validate_bench_record(json.load(handle))


class TestValidatorTeeth:
    def test_validate_rejects_corrupt_records(self, record):
        def corrupted(mutate):
            clone = json.loads(json.dumps(record))
            mutate(clone)
            return clone

        for mutate, match in (
            (lambda r: r["grid"].update(methods=["lora"]), ">= 2 methods"),
            (lambda r: r["grid"].update(corruptions=[]), "corruptions"),
            (lambda r: r["grid"].update(severities=[1, 3]), "include 0"),
            (lambda r: r["grid"].update(severities=[0, 3, 3]), "distinct"),
            (lambda r: r["cells"].pop(), "cover the full grid"),
            (lambda r: r["cells"].append(dict(r["cells"][0])), "duplicate cell"),
            (
                lambda r: r["cells"][0].update(severity=5),
                "outside the declared grid",
            ),
            (
                lambda r: r["cells"][0]["accuracy_by_k"].popitem(),
                "cover grid.ks exactly",
            ),
            (
                lambda r: r["cells"][0].update(
                    accuracy_by_k={k: 1.5 for k in r["cells"][0]["accuracy_by_k"]}
                ),
                r"\[0, 1\]",
            ),
            (
                lambda r: r.update(severity0_bit_identical=False),
                "severity0_bit_identical",
            ),
            (lambda r: r["parallel"].update(jobs=1), "parallel.jobs"),
            (
                lambda r: r["parallel"].update(cells_equal=False),
                "parallel.cells_equal",
            ),
            (
                lambda r: r["resume"].update(restored_cells=0),
                "resume.restored_cells",
            ),
            (lambda r: r["slopes"].pop("lora"), "one entry per method"),
            (
                lambda r: r["slopes"]["lora"].update(mean=float("nan")),
                "mean must be finite",
            ),
            (
                lambda r: r["headline"].update(baseline="nope"),
                "headline.baseline",
            ),
            (
                lambda r: r["headline"].update(meta_methods=[]),
                "meta_methods",
            ),
            (
                lambda r: r["stream"]["methods"]["lora"]["steps"].pop(),
                "every step",
            ),
            (
                lambda r: r["stream"]["methods"]["lora"]["steps"][0].update(
                    accuracy=2.0
                ),
                "accuracy must be in",
            ),
            (
                lambda r: r["summary"].update(headline_delta=0.123),
                "headline_delta",
            ),
        ):
            with pytest.raises(ValueError, match=match):
                validate_bench_record(corrupted(mutate))
