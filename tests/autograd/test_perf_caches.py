"""Tests for the einsum plan cache and the conv2d patch cache."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import conv_ops, ops
from repro.perf import FLAGS, perf_overrides, reference_mode


@pytest.fixture(autouse=True)
def fresh_caches():
    ops.clear_einsum_plan_cache()
    conv_ops.clear_conv_caches()
    yield
    ops.clear_einsum_plan_cache()
    conv_ops.clear_conv_caches()


def tr_einsum(a, b, c):
    out = ops.einsum("ntpr,roq,nqp->nto", a, b, c)
    out.sum().backward()
    return out.data, a.grad, b.grad, c.grad


class TestEinsumPlanCache:
    def make_operands(self, rng, n=2, t=3, r=2, o=4):
        return (
            Tensor(rng.normal(size=(n, t, r, r)), requires_grad=True),
            Tensor(rng.normal(size=(r, o, r)), requires_grad=True),
            Tensor(rng.normal(size=(n, r, r)), requires_grad=True),
        )

    def test_repeat_call_hits_cache(self, rng):
        tr_einsum(*self.make_operands(rng))
        misses_after_first = ops.einsum_plan_cache_stats()["misses"]
        tr_einsum(*self.make_operands(rng))
        stats = ops.einsum_plan_cache_stats()
        assert stats["misses"] == misses_after_first  # no new plan built
        assert stats["hits"] > 0

    def test_new_shapes_miss(self, rng):
        tr_einsum(*self.make_operands(rng))
        before = ops.einsum_plan_cache_stats()["misses"]
        tr_einsum(*self.make_operands(rng, t=5))
        assert ops.einsum_plan_cache_stats()["misses"] > before

    def test_clear_resets_stats(self, rng):
        tr_einsum(*self.make_operands(rng))
        ops.clear_einsum_plan_cache()
        assert ops.einsum_plan_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_cached_plans_bit_identical_to_reference(self, rng):
        """Memoization alone (no reordering) must not change a single bit."""
        operands = self.make_operands(rng)
        with perf_overrides(einsum_plan_cache=False, einsum_optimize=False):
            reference = tr_einsum(*(Tensor(t.data, requires_grad=True) for t in operands))
        with perf_overrides(einsum_plan_cache=True, einsum_optimize=False):
            tr_einsum(*(Tensor(t.data, requires_grad=True) for t in operands))  # warm
            cached = tr_einsum(*(Tensor(t.data, requires_grad=True) for t in operands))
        for ref, got in zip(reference, cached):
            np.testing.assert_array_equal(ref, got)

    def test_optimized_contraction_matches_reference(self, rng):
        operands = self.make_operands(rng, n=3, t=4, r=3, o=5)
        with reference_mode():
            reference = tr_einsum(*(Tensor(t.data, requires_grad=True) for t in operands))
        optimized = tr_einsum(*(Tensor(t.data, requires_grad=True) for t in operands))
        for ref, got in zip(reference, optimized):
            np.testing.assert_allclose(ref, got, atol=1e-12)


class TestConvPatchCache:
    def paired_convs(self, x, w1, w2):
        a = conv_ops.conv2d(x, w1, None, stride=1, padding=1)
        b = conv_ops.conv2d(x, w2, None, stride=1, padding=1)
        (a.sum() + b.sum()).backward()
        return a.data, b.data, w1.grad, w2.grad

    def make_inputs(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w1 = Tensor(rng.normal(size=(3, 3, 3, 4)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(3, 3, 3, 2)), requires_grad=True)
        return x, w1, w2

    def test_same_input_second_conv_hits(self, rng):
        self.paired_convs(*self.make_inputs(rng))
        stats = conv_ops.conv_patch_cache_stats()
        assert stats["hits"] >= 1

    def test_cached_matches_reference(self, rng):
        x, w1, w2 = self.make_inputs(rng)
        with reference_mode():
            reference = self.paired_convs(
                Tensor(x.data),
                Tensor(w1.data, requires_grad=True),
                Tensor(w2.data, requires_grad=True),
            )
        cached = self.paired_convs(x, w1, w2)
        for ref, got in zip(reference, cached):
            np.testing.assert_array_equal(ref, got)

    def test_inplace_mutation_invalidates_fingerprint(self, rng):
        """Gradient checkers perturb x.data in place — the cache must notice."""
        x, w1, w2 = self.make_inputs(rng)
        self.paired_convs(x, w1, w2)
        x.data[0, 0, 0, 0] += 1.0
        w1.zero_grad()
        w2.zero_grad()
        mutated = self.paired_convs(x, w1, w2)
        with reference_mode():
            reference = self.paired_convs(
                Tensor(x.data.copy()),
                Tensor(w1.data, requires_grad=True),
                Tensor(w2.data, requires_grad=True),
            )
        for ref, got in zip(reference, mutated):
            np.testing.assert_array_equal(ref, got)

    def test_capacity_bounded(self, rng):
        for __ in range(2 * conv_ops._PATCH_CACHE_CAPACITY):
            x = Tensor(rng.normal(size=(1, 2, 6, 6)))
            w = Tensor(rng.normal(size=(3, 3, 2, 2)), requires_grad=True)
            conv_ops.conv2d(x, w, None, stride=1, padding=1).sum().backward()
        stats = conv_ops.conv_patch_cache_stats()
        assert stats["size"] <= conv_ops._PATCH_CACHE_CAPACITY


class TestPerfFlags:
    def test_overrides_restore_on_exit(self):
        original = FLAGS.einsum_plan_cache
        with perf_overrides(einsum_plan_cache=not original):
            assert FLAGS.einsum_plan_cache is (not original)
        assert FLAGS.einsum_plan_cache is original

    def test_reference_mode_disables_everything(self):
        with reference_mode():
            assert not FLAGS.einsum_plan_cache
            assert not FLAGS.einsum_optimize
            assert not FLAGS.conv_patches_cache
            assert not FLAGS.conv_pad_workspace
            assert not FLAGS.batched_seeds

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="not_a_flag"):
            with perf_overrides(not_a_flag=True):
                pass
