"""Tests for losses, Trainer and the episodic MetaTrainer."""

import numpy as np
import pytest

from repro.autograd import Tensor, tensor
from repro.data import TaskDistribution, generate_task_data
from repro.errors import ShapeError, TrainingError
from repro.nn import Linear, ReLU, Sequential
from repro.train import Adam, MetaTrainer, SGD, Trainer, cross_entropy, mse_loss


class Flatten(Sequential):
    def forward(self, x):
        return x.reshape(x.shape[0], -1)


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.data == pytest.approx(np.log(10), rel=1e-5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -100.0, dtype=np.float32)
        logits[0, 1] = logits[1, 2] = 100.0
        loss = cross_entropy(tensor(logits), np.array([1, 2]))
        assert float(loss.data) < 1e-5

    def test_cross_entropy_gradient_direction(self):
        logits = tensor(np.zeros((1, 3)), requires_grad=True)
        cross_entropy(logits, np.array([0])).backward()
        assert logits.grad[0, 0] < 0  # pushes the true class up
        assert logits.grad[0, 1] > 0

    def test_cross_entropy_validation(self):
        with pytest.raises(ShapeError):
            cross_entropy(tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=np.int64))
        with pytest.raises(ShapeError):
            cross_entropy(tensor(np.zeros((2, 3))), np.zeros(3, dtype=np.int64))
        with pytest.raises(ShapeError):
            cross_entropy(tensor(np.zeros((2, 3))), np.array([0, 5]))

    def test_mse(self):
        pred = tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.data == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(pred.grad, [1.0, 2.0])


class TestTrainer:
    def _toy_problem(self, rng, n=128):
        x = rng.normal(size=(n, 8)).astype(np.float32)
        w = rng.normal(size=(8, 3)).astype(np.float32)
        y = (x @ w).argmax(axis=1)
        return x, y

    def test_fit_reduces_loss(self, rng):
        x, y = self._toy_problem(rng)
        model = Sequential(Linear(8, 16, rng=rng), ReLU(), Linear(16, 3, rng=rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        result = trainer.fit(x, y, epochs=10, batch_size=16, rng=rng)
        assert result.losses[-1] < result.losses[0] * 0.6
        assert result.accuracies[-1] > 0.8

    def test_evaluate_accuracy(self, rng):
        x, y = self._toy_problem(rng, n=32)
        model = Sequential(Linear(8, 3, rng=rng))
        acc = Trainer(model, SGD(model.parameters(), lr=0.1)).evaluate(x, y)
        assert 0.0 <= acc <= 1.0

    def test_schedule_applied(self, rng):
        x, y = self._toy_problem(rng, n=16)
        model = Sequential(Linear(8, 3, rng=rng))
        opt = SGD(model.parameters(), lr=1.0)
        trainer = Trainer(model, opt, schedule=lambda step: 0.123)
        trainer.train_step(x, y)
        assert opt.lr == 0.123

    def test_grad_clip_bounds_norm(self, rng):
        x, y = self._toy_problem(rng, n=16)
        model = Sequential(Linear(8, 3, rng=rng))
        model[0].weight.data[...] *= 100  # force huge gradients
        opt = SGD(model.parameters(), lr=1e-9)
        trainer = Trainer(model, opt, grad_clip=1.0)
        trainer.train_step(x, y)
        total = sum(float((p.grad**2).sum()) for p in model.parameters())
        assert np.sqrt(total) <= 1.0 + 1e-4

    def test_final_loss_requires_steps(self):
        from repro.train.trainer import TrainResult

        with pytest.raises(TrainingError):
            TrainResult().final_loss

    def test_fit_validation(self, rng):
        x, y = self._toy_problem(rng, n=8)
        model = Sequential(Linear(8, 3, rng=rng))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        with pytest.raises(TrainingError):
            trainer.fit(x, y, epochs=0, batch_size=4, rng=rng)


class TestTrainEval:
    """The ``train_eval`` knob: what the per-epoch train re-score costs,
    never what the training trajectory is."""

    def _fit(self, train_eval, n=600, epochs=2):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, 8)).astype(np.float32)
        w = rng.normal(size=(8, 3)).astype(np.float32)
        y = (x @ w).argmax(axis=1)
        model = Sequential(Linear(8, 3, rng=np.random.default_rng(1)))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        result = trainer.fit(
            x,
            y,
            epochs=epochs,
            batch_size=32,
            rng=np.random.default_rng(2),
            train_eval=train_eval,
        )
        return result, model

    def test_off_skips_train_accuracies(self):
        result, _ = self._fit("off")
        assert result.accuracies == []
        assert len(result.losses) == 2

    def test_subsampled_caps_the_scored_set(self):
        # n=600 > cap=256: the subsampled score differs from the full one
        # (different sample set) but both are real accuracies.
        full, _ = self._fit("full")
        sub, _ = self._fit("subsampled")
        assert len(full.accuracies) == len(sub.accuracies) == 2
        assert all(0.0 <= a <= 1.0 for a in sub.accuracies)

    def test_subsampled_is_exact_below_the_cap(self):
        full, _ = self._fit("full", n=100)
        sub, _ = self._fit("subsampled", n=100)
        assert full.accuracies == sub.accuracies

    def test_trajectory_identical_across_settings(self):
        # The subsample indices never touch `rng`, so losses (and final
        # weights) are bit-identical whatever the diagnostic costs.
        results = {mode: self._fit(mode) for mode in ("off", "subsampled", "full")}
        losses = {mode: result.losses for mode, (result, _) in results.items()}
        assert losses["off"] == losses["subsampled"] == losses["full"]
        weights = {
            mode: model[0].weight.data.copy()
            for mode, (_, model) in results.items()
        }
        assert np.array_equal(weights["off"], weights["subsampled"])
        assert np.array_equal(weights["off"], weights["full"])

    def test_invalid_value_rejected(self):
        with pytest.raises(TrainingError, match="train_eval"):
            self._fit("sometimes")

    def test_evaluate_restores_prior_mode(self, rng):
        x = rng.normal(size=(8, 8)).astype(np.float32)
        y = np.zeros(8, dtype=np.int64)
        model = Sequential(Linear(8, 3, rng=rng))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        model.eval()
        trainer.evaluate(x, y)
        assert model.training is False  # no silent flip back to training
        model.train()
        trainer.evaluate(x, y)
        assert model.training is True


class TestMetaTrainer:
    def _task_sets(self, rng):
        tasks = TaskDistribution(3, seed=0)
        return [
            generate_task_data(t, 24, 4, 16, rng) for t in tasks.shifted_tasks()
        ]

    def test_episodes_logged(self, rng):
        from repro.models import resnet_small

        model = resnet_small(4, rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
        meta = MetaTrainer(trainer, self._task_sets(rng))
        log = meta.run(episodes=5, batch_size=8, rng=rng)
        assert len(log.losses) == 5
        assert set(log.task_ids) <= {1, 2}

    def test_validation(self, rng):
        from repro.models import resnet_small

        model = resnet_small(4, rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
        with pytest.raises(TrainingError):
            MetaTrainer(trainer, [])
        meta = MetaTrainer(trainer, self._task_sets(rng))
        with pytest.raises(TrainingError):
            meta.run(episodes=0, batch_size=4, rng=rng)
