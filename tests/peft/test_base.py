"""Tests for adapter attachment, lookup and merging via ``peft.attach``."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import AdapterError
from repro.models import resnet_small
from repro.nn import Conv2d, Linear, ReLU, Sequential
from repro.peft import (
    ConvLoRA,
    LoRALinear,
    MetaLoRACPLinear,
    attach,
    get_module,
    iter_adapters,
    merge_adapters,
    set_module,
)


def small_net(rng):
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))


class TestModuleSurgery:
    def test_get_module_by_path(self, rng):
        net = small_net(rng)
        assert isinstance(get_module(net, "0"), Linear)

    def test_get_module_nested(self, rng):
        model = resnet_small(3, rng)
        assert isinstance(get_module(model, "blocks.0.conv1"), Conv2d)

    def test_get_module_missing_raises(self, rng):
        with pytest.raises(AdapterError, match="no child"):
            get_module(small_net(rng), "9")

    def test_set_module_replaces_and_keeps_sequential_consistent(self, rng):
        net = small_net(rng)
        replacement = Linear(4, 8, rng=rng)
        set_module(net, "0", replacement)
        assert net[0] is replacement
        out = net(Tensor(rng.normal(size=(2, 4)).astype(np.float32)))
        assert out.shape == (2, 3)


class TestAttachment:
    def test_attaches_to_all_targets(self, rng):
        net = small_net(rng)
        result = attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,))
        assert set(result.adapters) == {"0", "2"}

    def test_base_frozen_adapters_trainable(self, rng):
        net = small_net(rng)
        attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,))
        trainable = {name for name, p in net.named_parameters() if p.requires_grad}
        assert all("lora" in name for name in trainable)
        assert trainable  # something is trainable

    def test_skip_list(self, rng):
        net = small_net(rng)
        result = attach(
            net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,), skip=("2",)
        )
        assert set(result.adapters) == {"0"}

    def test_no_targets_raises(self, rng):
        net = Sequential(ReLU())
        with pytest.raises(AdapterError, match="no layers"):
            attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,))

    def test_double_attach_raises(self, rng):
        net = small_net(rng)
        attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,))
        with pytest.raises(AdapterError):
            attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(LoRALinear,))

    def test_resnet_full_attach(self, rng):
        model = resnet_small(3, rng)

        def factory(layer):
            if isinstance(layer, Conv2d):
                return ConvLoRA(layer, 2, rng=rng)
            return LoRALinear(layer, 2, rng=rng)

        result = attach(model, factory, targets=(Conv2d, Linear))
        conv_count = sum(
            1 for a in result.adapters.values() if isinstance(a, ConvLoRA)
        )
        assert conv_count == 9  # stem + 6 block convs + 2 projection shortcuts
        assert "head" in result.adapters
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 3)


class TestIterAndMerge:
    def test_iter_adapters_finds_all(self, rng):
        net = small_net(rng)
        attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,))
        assert len(list(iter_adapters(net))) == 2

    def test_merge_restores_plain_layers_same_output(self, rng):
        net = small_net(rng)
        attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,))
        for __, adapter in iter_adapters(net):
            adapter.lora_b.data[...] = rng.normal(size=adapter.lora_b.shape).astype(
                np.float32
            )
        x = Tensor(rng.normal(size=(5, 4)).astype(np.float32))
        before = net(x).data.copy()
        merge_adapters(net)
        assert not list(iter_adapters(net))
        assert np.allclose(net(x).data, before, atol=1e-5)

    def test_merge_rejects_meta_adapters(self, rng):
        net = small_net(rng)
        attach(net, lambda m: MetaLoRACPLinear(m, 2, rng=rng), targets=(Linear,))
        with pytest.raises(AdapterError, match="meta"):
            merge_adapters(net)

    def test_merged_inference_cost_is_base_cost(self, rng):
        net = small_net(rng)
        base_params = net.parameter_count()
        attach(net, lambda m: LoRALinear(m, 2, rng=rng), targets=(Linear,))
        merge_adapters(net)
        assert net.parameter_count() == base_params

    def test_inject_adapters_shim_is_gone(self):
        import repro.peft

        assert not hasattr(repro.peft, "inject_adapters")
        assert not hasattr(repro.peft.base, "inject_adapters")
