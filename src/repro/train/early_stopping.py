"""Early stopping on a monitored metric."""

from __future__ import annotations

from repro.errors import TrainingError


class EarlyStopping:
    """Stop when a monitored value fails to improve for ``patience`` rounds.

    >>> stopper = EarlyStopping(patience=2, mode="max")
    >>> [stopper.update(v) for v in (0.5, 0.6, 0.59, 0.58)]
    [False, False, False, True]
    """

    def __init__(
        self, patience: int, mode: str = "max", min_delta: float = 0.0
    ) -> None:
        if patience <= 0:
            raise TrainingError(f"patience must be positive, got {patience}")
        if mode not in ("max", "min"):
            raise TrainingError(f"mode must be 'max' or 'min', got {mode!r}")
        if min_delta < 0:
            raise TrainingError(f"min_delta must be non-negative, got {min_delta}")
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.best: float | None = None
        self.stale_rounds = 0

    def update(self, value: float) -> bool:
        """Record a new metric value; True means training should stop."""
        improved = self.best is None or (
            value > self.best + self.min_delta
            if self.mode == "max"
            else value < self.best - self.min_delta
        )
        if improved:
            self.best = value
            self.stale_rounds = 0
        else:
            self.stale_rounds += 1
        return self.stale_rounds >= self.patience

    @property
    def should_stop(self) -> bool:
        return self.stale_rounds >= self.patience
